// A workload trace compiled once against a device power model into the
// structure-of-arrays form the hot slot loop walks: per-slot idle time,
// effective active duration (RUN transitions absorbed, Section 3.3.2),
// run current on the bus, and the precomputed active charge Ild,a * Ta.
//
// Compilation happens once; the compiled trace is immutable and shared
// read-only across sweep points and lifetime passes, instead of the
// reference loop re-deriving the same three values per slot per run.
// The per-slot arithmetic is the reference loop's own (same expression,
// evaluated once), so runs over the compiled form stay bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "dpm/power_states.hpp"
#include "workload/trace.hpp"

namespace fcdpm::hot {

class CompiledTrace {
 public:
  /// Compile `trace` against `device`. The trace is validated (the Trace
  /// constructor enforces the slot contract) and copied; the device's
  /// bus voltage and RUN-transition delays are baked into the arrays.
  CompiledTrace(wl::Trace trace, const dpm::DevicePowerModel& device);

  [[nodiscard]] const wl::Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t size() const noexcept { return idle_.size(); }
  [[nodiscard]] bool empty() const noexcept { return idle_.empty(); }

  /// Idle period Ti of slot k.
  [[nodiscard]] Seconds idle(std::size_t k) const noexcept {
    return Seconds(idle_[k]);
  }
  /// Effective active duration Ta' = tSR + Ta + tRS of slot k.
  [[nodiscard]] Seconds active_eff(std::size_t k) const noexcept {
    return Seconds(active_eff_[k]);
  }
  /// Active-phase bus current Ild,a = P / VF of slot k.
  [[nodiscard]] Ampere run_current(std::size_t k) const noexcept {
    return Ampere(run_current_[k]);
  }
  /// Precomputed active-phase charge Ild,a * Ta' of slot k.
  [[nodiscard]] Coulomb active_charge(std::size_t k) const noexcept {
    return Coulomb(active_charge_[k]);
  }

  /// Total charge the device consumes over the whole trace (idle phases
  /// excluded — those depend on the DPM policy's layout).
  [[nodiscard]] Coulomb total_active_charge() const noexcept {
    return total_active_charge_;
  }

  /// True when `device` matches the model this trace was compiled with
  /// (exact comparison on every value baked into the arrays). The hot
  /// engine refuses to run a compiled trace against a different device.
  [[nodiscard]] bool compatible_with(
      const dpm::DevicePowerModel& device) const noexcept;

 private:
  wl::Trace trace_;
  std::vector<double> idle_;
  std::vector<double> active_eff_;
  std::vector<double> run_current_;
  std::vector<double> active_charge_;
  Coulomb total_active_charge_{0.0};
  double bus_voltage_ = 0.0;
  double standby_to_run_ = 0.0;
  double run_to_standby_ = 0.0;
};

}  // namespace fcdpm::hot
