// Lifetime measurement over the hot engine: sim::measure_lifetime with
// every pass (including the crossing re-run) routed through
// hot::simulate via the PassEngine hook. Bit-identical to the reference
// measurement — the steady-state signature comparison and the
// crossing-pass re-run contract both hold, because each pass is.
#pragma once

#include "hot/compiled_trace.hpp"
#include "sim/lifetime.hpp"

namespace fcdpm::hot {

/// sim::measure_lifetime(trace.trace(), ...) with passes executed by
/// hot::simulate over `trace`. Any engine/engine_ctx already set in
/// `options` is overwritten.
[[nodiscard]] sim::LifetimeResult measure_lifetime(
    const CompiledTrace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, power::HybridPowerSource& hybrid,
    sim::LifetimeOptions options = {});

}  // namespace fcdpm::hot
