// fcdpm::hot — the single-run hot-path engine.
//
// hot::simulate runs a CompiledTrace through an allocation-free slot
// loop: the hybrid source's segment integration is mirrored on a local
// register-resident lane (HybridLane), the DPM layout goes through
// plan_idle_into() into inline storage, and the FC policy is dispatched
// once per run (devirtualized for the four shipped policies) instead of
// per segment. The arithmetic is the reference loop's own, expression
// for expression, so results are bit-identical — sim::simulate stays
// the differential oracle (tests/hot holds every path to that).
//
// Configurations the lane cannot mirror (fault injection, segment
// recording, a tracing/metering observer, non-paper source or storage
// types) transparently fall back to the reference loop, so calling
// hot::simulate is always safe; eligibility only picks the loop.
#pragma once

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "hot/compiled_trace.hpp"
#include "power/hybrid.hpp"
#include "sim/slot_simulator.hpp"

namespace fcdpm::hot {

/// True when (hybrid, options) can take the allocation-free lane: no
/// fault injector, no segment recording, observer absent or
/// profiler-only, and the hybrid is the paper configuration
/// (LinearFuelSource + SuperCapacitor).
[[nodiscard]] bool lane_eligible(const power::HybridPowerSource& hybrid,
                                 const sim::SimulationOptions& options);

/// Simulate `trace` through the hot lane when eligible, else delegate
/// to sim::simulate(trace.trace(), ...). Bit-identical to the reference
/// in either case. The trace must have been compiled against the DPM
/// policy's device model (checked).
[[nodiscard]] sim::SimulationResult simulate(
    const CompiledTrace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, power::HybridPowerSource& hybrid,
    const sim::SimulationOptions& options = {});

}  // namespace fcdpm::hot
