#include "hot/polarization_table.hpp"

#include "common/contracts.hpp"

namespace fcdpm::hot {

PolarizationTable::PolarizationTable(const power::FuelSource& source,
                                     std::size_t samples) {
  FCDPM_EXPECTS(samples >= 2, "polarization table needs at least 2 samples");
  min_ = source.min_output().value();
  max_ = source.max_output().value();
  FCDPM_EXPECTS(min_ < max_, "fuel source range is degenerate");

  const double step = (max_ - min_) / static_cast<double>(samples - 1);
  inv_step_ = 1.0 / step;
  table_.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    // Pin the last sample to max_ exactly so the clamp never reads past
    // the sampled range.
    const double x = (i + 1 == samples) ? max_
                                        : min_ + static_cast<double>(i) * step;
    table_.push_back(source.fuel_current(Ampere(x)).value());
  }
}

}  // namespace fcdpm::hot
