#include "hot/compiled_trace.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::hot {

CompiledTrace::CompiledTrace(wl::Trace trace,
                             const dpm::DevicePowerModel& device)
    : trace_(std::move(trace)) {
  device.validate();
  bus_voltage_ = device.bus_voltage.value();
  standby_to_run_ = device.standby_to_run_delay.value();
  run_to_standby_ = device.run_to_standby_delay.value();

  const std::size_t n = trace_.size();
  idle_.reserve(n);
  active_eff_.reserve(n);
  run_current_.reserve(n);
  active_charge_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const wl::TaskSlot& slot = trace_[k];
    // Exactly the reference loop's per-slot derivations, evaluated once.
    const Ampere run_current = slot.active_power / device.bus_voltage;
    const Seconds active_eff =
        device.standby_to_run_delay + slot.active + device.run_to_standby_delay;
    idle_.push_back(slot.idle.value());
    active_eff_.push_back(active_eff.value());
    run_current_.push_back(run_current.value());
    const Coulomb charge = run_current * active_eff;
    active_charge_.push_back(charge.value());
    total_active_charge_ += charge;
  }
}

bool CompiledTrace::compatible_with(
    const dpm::DevicePowerModel& device) const noexcept {
  return device.bus_voltage.value() == bus_voltage_ &&
         device.standby_to_run_delay.value() == standby_to_run_ &&
         device.run_to_standby_delay.value() == run_to_standby_;
}

}  // namespace fcdpm::hot
