// Reserve-once storage for the hot loop: a vector that commits to its
// capacity up front and treats growth past it as a contract violation
// instead of a reallocation. This is what lets the steady-state slot
// loop claim "zero heap allocations" as a checkable property (the
// new-counter assertion in bench/perf_simulator) rather than a hope.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace fcdpm::hot {

template <typename T>
class FixedCapacityBuffer {
 public:
  /// One allocation, here, at construction; never again.
  explicit FixedCapacityBuffer(std::size_t capacity) : capacity_(capacity) {
    data_.reserve(capacity);
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  void push_back(const T& value) {
    FCDPM_EXPECTS(data_.size() < capacity_,
                  "FixedCapacityBuffer overflow: capacity " +
                      std::to_string(capacity_) + " exhausted");
    data_.push_back(value);
  }

  [[nodiscard]] const T& operator[](std::size_t k) const { return data_[k]; }
  [[nodiscard]] T& operator[](std::size_t k) { return data_[k]; }

  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  void clear() noexcept { data_.clear(); }

  /// Move the contents out (e.g. into SimulationResult::slot_records)
  /// without copying; the buffer is empty afterwards.
  [[nodiscard]] std::vector<T> take() noexcept { return std::move(data_); }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
};

}  // namespace fcdpm::hot
