// Runtime companion of FaultSchedule: tracks which faults are active at
// the current simulated time, hands one-shot brownouts to the storage
// layer exactly once, provides the deterministic sensor-noise stream,
// and owns the run's RobustnessStats.
//
// Threading model mirrors obs::Context — the simulators and the hybrid
// source hold a non-owning `FaultInjector*` that defaults to nullptr;
// every hook is a pointer compare, so a run without an injector is
// bit-identical to a build without the subsystem.
//
// `advance_to` must be called with non-decreasing simulated time (the
// hybrid source's accumulated segment clock); it samples each event's
// activity window at segment boundaries, which matches the simulators'
// piecewise-constant segment model.
#pragma once

#include <random>
#include <vector>

#include "fault/fault.hpp"
#include "fault/schedule.hpp"

namespace fcdpm::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  /// Back to t = 0: clears activation state, stats, pending brownouts
  /// and reseeds the noise stream. Called by the simulators unless the
  /// run continues a previous pass (lifetime multi-pass).
  void reset();

  /// Move the fault clock to `now` (clamped to be non-decreasing) and
  /// recompute the combined active set. Counts newly entered windows,
  /// arms brownouts whose start was crossed, and accrues degraded time
  /// for the elapsed interval when it began with faults active.
  const ActiveFaults& advance_to(Seconds now);

  [[nodiscard]] const ActiveFaults& active() const noexcept {
    return active_;
  }
  [[nodiscard]] bool any_active() const noexcept { return active_.any(); }

  /// Combined stored-charge fraction the storage layer must drop for
  /// brownouts armed since the last call; returns 0 when none are
  /// pending and clears the pending state (each brownout fires once).
  [[nodiscard]] double consume_brownout() noexcept;

  /// One draw from the deterministic noise stream: normal(0, sigma),
  /// or exactly 0 when sigma <= 0 (no engine state consumed, so a
  /// schedule without sensor noise perturbs nothing).
  [[nodiscard]] double noise(double sigma);

  /// Report the storage fraction after a segment; drives the recovery
  /// timer (time from the last fault clearing until the buffer is back
  /// at its pre-fault level).
  void note_storage(Seconds now, double fraction);

  [[nodiscard]] RobustnessStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RobustnessStats& stats() const noexcept {
    return stats_;
  }

  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }

 private:
  FaultSchedule schedule_;
  ActiveFaults active_;
  RobustnessStats stats_;
  std::vector<bool> entered_;     ///< per event: window-entry counted
  double pending_brownout_ = 0.0; ///< combined lost fraction to consume
  Seconds last_time_{0.0};
  bool was_active_ = false;
  std::mt19937_64 noise_engine_;

  // Recovery accounting: storage fraction snapshotted when a fault
  // episode begins, and the instant the last fault cleared.
  double last_fraction_ = -1.0;
  double prefault_fraction_ = -1.0;
  bool recovering_ = false;
  Seconds recovering_since_{0.0};
};

}  // namespace fcdpm::fault
