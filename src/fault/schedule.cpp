#include "fault/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/random.hpp"
#include "common/text.hpp"

namespace fcdpm::fault {

namespace {

/// Kind-specific default magnitude when the spec omits "xM".
double default_magnitude(FaultKind kind) {
  switch (kind) {
    case FaultKind::StackDegradation:
      return 0.8;  // 80 % stack efficiency remains
    case FaultKind::FuelStarvation:
      return 0.5;  // half the output range remains
    case FaultKind::DcdcEfficiencyDrop:
      return 0.85;
    case FaultKind::ConverterDropout:
      return 1.0;  // unused
    case FaultKind::StorageFade:
      return 0.7;
    case FaultKind::Brownout:
      return 0.5;  // half the stored charge lost
    case FaultKind::SensorNoise:
      return 0.2;
    case FaultKind::LoadSpike:
      return 1.5;
  }
  return 1.0;
}

[[noreturn]] void bad_token(const std::string& token,
                            const std::string& why) {
  throw PreconditionError("malformed fault spec token '" + token +
                          "': " + why);
}

FaultEvent parse_token(const std::string& raw) {
  const std::string token{trim(raw)};
  const std::size_t at = token.find('@');
  if (at == std::string::npos) {
    bad_token(token, "expected kind@start[:duration][xmagnitude]");
  }

  FaultEvent event;
  if (!parse_fault_kind(token.substr(0, at), event.kind)) {
    bad_token(token, "unknown fault kind '" + token.substr(0, at) + "'");
  }

  std::string rest = token.substr(at + 1);
  event.magnitude = default_magnitude(event.kind);
  const std::size_t x = rest.find('x');
  if (x != std::string::npos) {
    if (!parse_double(rest.substr(x + 1), event.magnitude)) {
      bad_token(token, "non-numeric magnitude");
    }
    rest = rest.substr(0, x);
  }

  double start = 0.0;
  double duration = 0.0;
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    if (!parse_double(rest.substr(colon + 1), duration)) {
      bad_token(token, "non-numeric duration");
    }
    rest = rest.substr(0, colon);
  }
  if (!parse_double(rest, start)) {
    bad_token(token, "non-numeric start time");
  }
  event.start = Seconds(start);
  event.duration = Seconds(duration);
  return event;
}

}  // namespace

void FaultSchedule::add(FaultEvent event) {
  event.validate();
  const auto at = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) {
        return a.start < b.start;
      });
  events_.insert(at, event);
}

FaultSchedule FaultSchedule::parse(const std::string& spec) {
  FaultSchedule schedule;
  std::string normalized = spec;
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string& token : split(normalized, ',')) {
    if (trim(token).empty()) {
      continue;
    }
    schedule.add(parse_token(token));
  }
  return schedule;
}

std::string FaultSchedule::to_spec() const {
  std::string out;
  for (const FaultEvent& event : events_) {
    if (!out.empty()) {
      out += ',';
    }
    out += to_string(event.kind);
    out += '@';
    out += format_fixed(event.start.value(), 6);
    if (event.duration.value() > 0.0) {
      out += ':';
      out += format_fixed(event.duration.value(), 6);
    }
    out += 'x';
    out += format_fixed(event.magnitude, 6);
  }
  return out;
}

FaultSchedule FaultSchedule::load(std::istream& in,
                                  const std::string& name) {
  const CsvDocument doc = read_csv(in, /*has_header=*/true);
  const std::size_t kind_col = doc.column("kind");
  const std::size_t start_col = doc.column("start_s");
  const std::size_t duration_col = doc.column("duration_s");
  const std::size_t magnitude_col = doc.column("magnitude");

  const auto where = [&](std::size_t row) {
    const std::size_t line = doc.line_of(row);
    return name + (line > 0 ? " line " + std::to_string(line)
                            : " row " + std::to_string(row));
  };

  FaultSchedule schedule;
  Seconds previous_start{0.0};
  // Open brownout window from an earlier row: [start, end) plus the row
  // index that opened it, for a two-line overlap message.
  double brownout_end = -1.0;
  std::size_t brownout_row = 0;
  for (std::size_t k = 0; k < doc.rows.size(); ++k) {
    const CsvRow& row = doc.rows[k];
    const std::size_t needed =
        std::max({kind_col, start_col, duration_col, magnitude_col}) + 1;
    if (row.size() < needed) {
      throw CsvError(where(k) + ": fault row has too few fields");
    }

    FaultEvent event;
    if (!parse_fault_kind(row[kind_col], event.kind)) {
      throw CsvError(where(k) + ": unknown fault kind '" + row[kind_col] +
                     "'");
    }
    double start = 0.0;
    double duration = 0.0;
    double magnitude = 0.0;
    if (!parse_double(row[start_col], start) ||
        !parse_double(row[duration_col], duration) ||
        !parse_double(row[magnitude_col], magnitude)) {
      throw CsvError(where(k) + ": non-numeric fault field");
    }
    if (!std::isfinite(start) || !std::isfinite(duration) ||
        !std::isfinite(magnitude)) {
      throw CsvError(where(k) + ": non-finite fault field");
    }
    if (k > 0 && Seconds(start) < previous_start) {
      throw CsvError(where(k) +
                     ": fault start times must be non-decreasing");
    }
    previous_start = Seconds(start);

    // Brownout rows carry the cap governor's worst case, so they get
    // stricter checks than FaultEvent::validate applies: a magnitude of
    // zero is a typo (no charge lost = no brownout), a negative
    // duration is nonsense, and two overlapping brownout windows would
    // double-charge the loss.
    if (event.kind == FaultKind::Brownout) {
      if (magnitude <= 0.0) {
        throw CsvError(where(k) +
                       ": brownout magnitude must be positive (fraction "
                       "of stored charge lost)");
      }
      if (duration < 0.0) {
        throw CsvError(where(k) + ": brownout duration must not be negative");
      }
      if (start < brownout_end) {
        throw CsvError(where(k) + ": brownout window overlaps the one at " +
                       where(brownout_row));
      }
      if (start + duration > brownout_end) {
        brownout_end = start + duration;
        brownout_row = k;
      }
    }

    event.start = Seconds(start);
    event.duration = Seconds(duration);
    event.magnitude = magnitude;
    try {
      schedule.add(event);
    } catch (const PreconditionError& error) {
      throw CsvError(where(k) + ": " + error.what());
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CsvError("cannot open fault schedule file: " + path);
  }
  return load(in, path);
}

void FaultSchedule::save(std::ostream& out) const {
  CsvDocument doc;
  doc.header = {"kind", "start_s", "duration_s", "magnitude"};
  doc.rows.reserve(events_.size());
  for (const FaultEvent& event : events_) {
    doc.rows.push_back({to_string(event.kind),
                        format_fixed(event.start.value(), 6),
                        format_fixed(event.duration.value(), 6),
                        format_fixed(event.magnitude, 6)});
  }
  write_csv(out, doc);
}

void FaultSchedule::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw CsvError("cannot create fault schedule file: " + path);
  }
  save(out);
}

FaultSchedule FaultSchedule::random_storm(std::uint64_t seed,
                                          std::size_t count,
                                          Seconds horizon) {
  FCDPM_EXPECTS(horizon.value() > 0.0, "storm horizon must be positive");

  Rng rng(seed);
  FaultSchedule schedule;
  schedule.set_noise_seed(seed);
  for (std::size_t k = 0; k < count; ++k) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(rng.uniform_int(0, 7));
    event.start = Seconds(rng.uniform(0.0, horizon.value()));
    // A few percent of the horizon each; some permanent (duration 0).
    event.duration = rng.chance(0.15)
                         ? Seconds(0.0)
                         : Seconds(rng.uniform(0.01, 0.08) *
                                   horizon.value());
    switch (event.kind) {
      case FaultKind::StackDegradation:
      case FaultKind::DcdcEfficiencyDrop:
        event.magnitude = rng.uniform(0.6, 0.95);
        break;
      case FaultKind::FuelStarvation:
      case FaultKind::StorageFade:
        event.magnitude = rng.uniform(0.4, 0.9);
        break;
      case FaultKind::Brownout:
        event.magnitude = rng.uniform(0.2, 0.8);
        break;
      case FaultKind::SensorNoise:
        event.magnitude = rng.uniform(0.05, 0.5);
        break;
      case FaultKind::LoadSpike:
        event.magnitude = rng.uniform(1.1, 2.0);
        break;
      case FaultKind::ConverterDropout:
        event.magnitude = 1.0;
        break;
    }
    schedule.add(event);
  }
  return schedule;
}

}  // namespace fcdpm::fault
