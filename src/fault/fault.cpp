#include "fault/fault.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::StackDegradation:
      return "stack_degradation";
    case FaultKind::FuelStarvation:
      return "fuel_starvation";
    case FaultKind::DcdcEfficiencyDrop:
      return "dcdc_drop";
    case FaultKind::ConverterDropout:
      return "converter_dropout";
    case FaultKind::StorageFade:
      return "storage_fade";
    case FaultKind::Brownout:
      return "brownout";
    case FaultKind::SensorNoise:
      return "sensor_noise";
    case FaultKind::LoadSpike:
      return "load_spike";
  }
  return "?";
}

bool parse_fault_kind(const std::string& name, FaultKind& out) {
  constexpr FaultKind kAll[] = {
      FaultKind::StackDegradation, FaultKind::FuelStarvation,
      FaultKind::DcdcEfficiencyDrop, FaultKind::ConverterDropout,
      FaultKind::StorageFade, FaultKind::Brownout,
      FaultKind::SensorNoise, FaultKind::LoadSpike,
  };
  for (const FaultKind kind : kAll) {
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool FaultEvent::active_at(Seconds t) const noexcept {
  if (kind == FaultKind::Brownout) {
    return false;
  }
  if (t < start) {
    return false;
  }
  return duration.value() <= 0.0 || t < start + duration;
}

void FaultEvent::validate() const {
  FCDPM_EXPECTS(std::isfinite(start.value()) &&
                    std::isfinite(duration.value()) &&
                    std::isfinite(magnitude),
                std::string("fault event has a non-finite field (") +
                    to_string(kind) + ")");
  FCDPM_EXPECTS(start.value() >= 0.0, "fault start must be non-negative");
  switch (kind) {
    case FaultKind::StackDegradation:
    case FaultKind::FuelStarvation:
    case FaultKind::DcdcEfficiencyDrop:
    case FaultKind::StorageFade:
      FCDPM_EXPECTS(magnitude > 0.0 && magnitude <= 1.0,
                    std::string(to_string(kind)) +
                        " magnitude must be a remaining fraction in (0, 1]");
      break;
    case FaultKind::Brownout:
      FCDPM_EXPECTS(magnitude >= 0.0 && magnitude <= 1.0,
                    "brownout magnitude must be a lost fraction in [0, 1]");
      break;
    case FaultKind::SensorNoise:
      FCDPM_EXPECTS(magnitude >= 0.0,
                    "sensor noise sigma must be non-negative");
      break;
    case FaultKind::LoadSpike:
      FCDPM_EXPECTS(magnitude >= 1.0,
                    "load spike magnitude must be a multiplier >= 1");
      break;
    case FaultKind::ConverterDropout:
      break;
  }
}

}  // namespace fcdpm::fault
