#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace fcdpm::fault {

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)) {
  reset();
}

void FaultInjector::reset() {
  active_ = ActiveFaults{};
  stats_ = RobustnessStats{};
  entered_.assign(schedule_.size(), false);
  pending_brownout_ = 0.0;
  last_time_ = Seconds(0.0);
  was_active_ = false;
  noise_engine_.seed(schedule_.noise_seed());
  last_fraction_ = -1.0;
  prefault_fraction_ = -1.0;
  recovering_ = false;
  recovering_since_ = Seconds(0.0);

  // Faults scheduled exactly at t = 0 take effect from the first
  // segment, so establish the active set before any time elapses.
  (void)advance_to(Seconds(0.0));
}

const ActiveFaults& FaultInjector::advance_to(Seconds now) {
  now = std::max(now, last_time_);

  // Degraded time accrues over the elapsed interval when it began with
  // faults active (piecewise-constant sampling at segment boundaries,
  // matching the simulators' segment model).
  if (was_active_) {
    stats_.degraded_time += now - last_time_;
  }

  ActiveFaults combined;
  const std::vector<FaultEvent>& events = schedule_.events();
  for (std::size_t k = 0; k < events.size(); ++k) {
    const FaultEvent& event = events[k];
    if (now >= event.start && !entered_[k]) {
      entered_[k] = true;
      if (event.kind == FaultKind::Brownout) {
        // Arm the one-shot: compound lost fractions (losing 50 % twice
        // leaves 25 %, not 0 %).
        pending_brownout_ =
            1.0 - (1.0 - pending_brownout_) * (1.0 - event.magnitude);
        ++stats_.brownouts;
      } else {
        ++stats_.activations;
        if (event.kind == FaultKind::ConverterDropout) {
          ++stats_.dropouts;
        }
      }
    }
    if (!event.active_at(now)) {
      continue;
    }
    switch (event.kind) {
      case FaultKind::StackDegradation:
      case FaultKind::DcdcEfficiencyDrop:
        combined.fuel_penalty /= event.magnitude;
        break;
      case FaultKind::FuelStarvation:
        combined.fc_output_derate *= event.magnitude;
        break;
      case FaultKind::ConverterDropout:
        combined.fc_dropout = true;
        break;
      case FaultKind::StorageFade:
        combined.storage_derate *= event.magnitude;
        break;
      case FaultKind::SensorNoise:
        // Independent noise sources add in variance.
        combined.sensor_noise_sigma =
            std::sqrt(combined.sensor_noise_sigma *
                          combined.sensor_noise_sigma +
                      event.magnitude * event.magnitude);
        break;
      case FaultKind::LoadSpike:
        combined.load_scale *= event.magnitude;
        break;
      case FaultKind::Brownout:
        break;  // one-shot, never "active"
    }
  }
  active_ = combined;

  const bool now_active = active_.any();
  if (was_active_ && !now_active) {
    // Last fault cleared: start the recovery clock if we know what
    // level the buffer held before the episode.
    if (prefault_fraction_ >= 0.0) {
      recovering_ = true;
      recovering_since_ = now;
    }
  } else if (!was_active_ && now_active) {
    // New episode: snapshot the pre-fault level once and cancel any
    // recovery still in progress.
    if (prefault_fraction_ < 0.0) {
      prefault_fraction_ = last_fraction_;
    }
    recovering_ = false;
  }
  was_active_ = now_active;
  last_time_ = now;
  return active_;
}

double FaultInjector::consume_brownout() noexcept {
  const double fraction = pending_brownout_;
  pending_brownout_ = 0.0;
  return fraction;
}

double FaultInjector::noise(double sigma) {
  if (sigma <= 0.0) {
    return 0.0;
  }
  std::normal_distribution<double> dist(0.0, sigma);
  return dist(noise_engine_);
}

void FaultInjector::note_storage(Seconds now, double fraction) {
  last_fraction_ = fraction;
  if (recovering_ && prefault_fraction_ >= 0.0 &&
      fraction >= prefault_fraction_) {
    stats_.recovery_time += std::max(now, recovering_since_) -
                            recovering_since_;
    recovering_ = false;
    prefault_fraction_ = -1.0;
  }
}

}  // namespace fcdpm::fault
