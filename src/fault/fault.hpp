// Typed fault events for the hybrid-source simulation stack.
//
// The paper's FC-DPM assumes an always-available, non-degrading fuel
// cell; real hybrid sources do neither (see PAPERS.md: Shi et al. on
// health-aware multi-stack management, Chrétien et al. on
// post-prognostics commitment). `fcdpm::fault` models the failure modes
// the rest of the stack must degrade gracefully under:
//
//   fuelcell  — StackDegradation (efficiency loss: more fuel per amp),
//               FuelStarvation   (the stack cannot deliver full output)
//   power     — DcdcEfficiencyDrop (converter loss inflates fuel burn),
//               ConverterDropout   (the FC contributes nothing at all)
//   storage   — StorageFade (usable capacity derated),
//               Brownout    (a one-shot loss of stored charge)
//   dpm/wl    — SensorNoise (predictor inputs perturbed),
//               LoadSpike   (the device draws more than the trace says)
//
// Events are activated purely by simulated time (or generated up front
// from a seeded RNG, see FaultSchedule::random_storm), so every faulted
// run is bit-reproducible. Like `obs`, this layer is a side-car: every
// hook is a nullptr-checked pointer and the no-fault path stays
// bit-identical to a build without the subsystem.
#pragma once

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace fcdpm::fault {

enum class FaultKind {
  StackDegradation,   ///< magnitude = remaining stack efficiency (0, 1]
  FuelStarvation,     ///< magnitude = remaining max-output fraction (0, 1]
  DcdcEfficiencyDrop, ///< magnitude = remaining converter efficiency (0, 1]
  ConverterDropout,   ///< magnitude unused; FC output forced to zero
  StorageFade,        ///< magnitude = remaining usable capacity (0, 1]
  Brownout,           ///< one-shot; magnitude = stored-charge fraction lost [0, 1]
  SensorNoise,        ///< magnitude = relative noise sigma on predictions
  LoadSpike,          ///< magnitude = load-current multiplier >= 1
};

/// Spec-token / CSV name of a kind ("stack_degradation", ...).
[[nodiscard]] const char* to_string(FaultKind kind);

/// Inverse of to_string; returns false when `name` is unknown.
[[nodiscard]] bool parse_fault_kind(const std::string& name, FaultKind& out);

/// One scheduled fault. `duration <= 0` means permanent from `start`.
/// Brownout is instantaneous: it fires once when simulated time crosses
/// `start` and its duration is ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::ConverterDropout;
  Seconds start{0.0};
  Seconds duration{0.0};
  double magnitude = 1.0;

  /// True while `t` lies inside the activity window (brownouts are
  /// never "active"; they are consumed as one-shots).
  [[nodiscard]] bool active_at(Seconds t) const noexcept;

  /// Throws PreconditionError on a non-finite or out-of-range field.
  void validate() const;
};

/// Aggregate effect of every currently active fault, as the power and
/// policy layers consume it. Overlapping faults of the same kind
/// combine multiplicatively (two independent derates compound).
struct ActiveFaults {
  double fc_output_derate = 1.0;   ///< scales the FC's max output
  double fuel_penalty = 1.0;       ///< multiplies fuel burned (>= 1)
  bool fc_dropout = false;         ///< FC contributes nothing
  double storage_derate = 1.0;     ///< scales usable buffer capacity
  double sensor_noise_sigma = 0.0; ///< relative sigma on predictions
  double load_scale = 1.0;         ///< multiplies the device current

  [[nodiscard]] bool any() const noexcept {
    return fc_output_derate < 1.0 || fuel_penalty > 1.0 || fc_dropout ||
           storage_derate < 1.0 || sensor_noise_sigma > 0.0 ||
           load_scale != 1.0;
  }
};

/// Robustness accounting of one faulted run. The injector owns an
/// instance; the hybrid source and the FC policies increment the parts
/// they observe, and the simulator copies the result into
/// SimulationResult::robustness. Everything is also mirrored into the
/// obs metrics registry when one is attached (names under "fault.").
struct RobustnessStats {
  std::size_t activations = 0;      ///< fault windows entered
  std::size_t dropouts = 0;         ///< ConverterDropout activations
  std::size_t brownouts = 0;        ///< Brownout one-shots consumed
  std::size_t fc_clamped_segments = 0;  ///< segments where faults cut IF
  std::size_t reprojections = 0;    ///< policy re-projected constraints
  std::size_t fallbacks = 0;        ///< policy fell back to safe flat IF
  std::size_t solver_failures = 0;  ///< checked solves that failed
  /// Slots the cap governor throttled while this injector was attached
  /// (a capped slot rode through a shortfall instead of failing it).
  std::size_t capped_slots = 0;
  Coulomb brownout_lost{0.0};       ///< charge dumped by brownouts
  Seconds degraded_time{0.0};       ///< simulated time with faults active
  /// Time from the last fault clearing until the buffer recovered to
  /// its pre-fault level (accumulated across fault episodes).
  Seconds recovery_time{0.0};
};

}  // namespace fcdpm::fault
