#include "telemetry/progress.hpp"

#include <cstdio>

namespace fcdpm::telemetry {

namespace {

std::string fmt(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string fmt1(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

std::string snapshot_to_json(const SweepSnapshot& snap) {
  std::string out = "{\"schema\":\"fcdpm.sweep_progress.v1\"";
  out += ",\"seq\":" + std::to_string(snap.seq);
  out += ",\"elapsed_s\":" + fmt(snap.elapsed_seconds);
  out += ",\"total_points\":" + std::to_string(snap.total_points);
  out += ",\"done\":" + std::to_string(snap.done);
  out += ",\"retried\":" + std::to_string(snap.retried);
  out += ",\"quarantined\":" + std::to_string(snap.quarantined);
  out += ",\"cache_hits\":" + std::to_string(snap.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(snap.cache_misses);
  out += ",\"cache_hit_rate\":" + fmt(snap.cache_hit_rate());
  out += ",\"hot_dispatches\":" + std::to_string(snap.hot_dispatches);
  out += ",\"reference_dispatches\":" +
         std::to_string(snap.reference_dispatches);
  // Gated like capping/auditing: batched-off streams keep their bytes.
  if (snap.batched_dispatches > 0) {
    out += ",\"batched_dispatches\":" +
           std::to_string(snap.batched_dispatches);
  }
  out += ",\"heartbeats\":" + std::to_string(snap.heartbeats);
  out += ",\"slots\":" + std::to_string(snap.slots);
  // Emitted only once capping is live so cap-off streams stay
  // byte-identical to pre-cap builds.
  if (snap.capped_slots > 0) {
    out += ",\"capped_slots\":" + std::to_string(snap.capped_slots);
  }
  // Same gating for auditing: audit-off streams keep their bytes.
  if (snap.audited_slots > 0) {
    out += ",\"audited_slots\":" + std::to_string(snap.audited_slots);
    out += ",\"audit_violations\":" + std::to_string(snap.audit_violations);
    out += ",\"engine_fallbacks\":" + std::to_string(snap.engine_fallbacks);
  }
  out += ",\"points_per_s\":" + fmt(snap.throughput_points_per_s);
  out += ",\"eta_s\":" + fmt(snap.eta_seconds);
  out += ",\"wall_p50_us\":" + fmt(snap.wall_p50_us);
  out += ",\"wall_p95_us\":" + fmt(snap.wall_p95_us);
  out += ",\"wall_p99_us\":" + fmt(snap.wall_p99_us);
  out += ",\"wall_max_us\":" + fmt(snap.wall_max_us);
  out += ",\"sim_p50_s\":" + fmt(snap.sim_p50_s);
  out += ",\"sim_p95_s\":" + fmt(snap.sim_p95_s);
  out += ",\"sim_p99_s\":" + fmt(snap.sim_p99_s);
  out += ",\"sim_max_s\":" + fmt(snap.sim_max_s);
  out += ",\"worker_skew\":" + fmt(snap.worker_skew);
  out += ",\"workers\":[";
  for (std::size_t i = 0; i < snap.workers.size(); ++i) {
    const WorkerSnapshot& w = snap.workers[i];
    if (i != 0) {
      out += ',';
    }
    out += "{\"worker\":" + std::to_string(w.worker);
    out += ",\"done\":" + std::to_string(w.done);
    out += ",\"retried\":" + std::to_string(w.retried);
    out += ",\"quarantined\":" + std::to_string(w.quarantined);
    out += ",\"cache_hits\":" + std::to_string(w.cache_hits);
    out += ",\"cache_misses\":" + std::to_string(w.cache_misses);
    out += ",\"hot_dispatches\":" + std::to_string(w.hot_dispatches);
    out += ",\"reference_dispatches\":" +
           std::to_string(w.reference_dispatches);
    if (w.batched_dispatches > 0) {
      out += ",\"batched_dispatches\":" +
             std::to_string(w.batched_dispatches);
    }
    out += ",\"heartbeats\":" + std::to_string(w.heartbeats);
    out += ",\"slots\":" + std::to_string(w.slots);
    if (w.capped_slots > 0) {
      out += ",\"capped_slots\":" + std::to_string(w.capped_slots);
    }
    if (w.audited_slots > 0) {
      out += ",\"audited_slots\":" + std::to_string(w.audited_slots);
      out += ",\"audit_violations\":" + std::to_string(w.audit_violations);
      out += ",\"engine_fallbacks\":" + std::to_string(w.engine_fallbacks);
    }
    out += ",\"busy_s\":" + fmt(w.busy_seconds) + "}";
  }
  out += "]}";
  return out;
}

std::string progress_line(const SweepSnapshot& snap) {
  const double pct =
      snap.total_points > 0
          ? 100.0 * static_cast<double>(snap.settled()) /
                static_cast<double>(snap.total_points)
          : 0.0;
  std::string out = "sweep " + std::to_string(snap.settled()) + "/" +
                    std::to_string(snap.total_points) + " (" + fmt1(pct) +
                    "%)  " + fmt1(snap.throughput_points_per_s) + " pt/s";
  if (snap.eta_seconds > 0.0) {
    out += "  eta " + fmt1(snap.eta_seconds) + "s";
  }
  out += "  p95 " + fmt1(snap.wall_p95_us) + "us";
  if (snap.cache_hits + snap.cache_misses > 0) {
    out += "  cache " + fmt1(100.0 * snap.cache_hit_rate()) + "%";
  }
  if (snap.capped_slots > 0) {
    out += "  capped " + std::to_string(snap.capped_slots);
  }
  if (snap.audit_violations > 0) {
    out += "  audit-violations " + std::to_string(snap.audit_violations);
  }
  if (snap.engine_fallbacks > 0) {
    out += "  fallbacks " + std::to_string(snap.engine_fallbacks);
  }
  if (snap.retried > 0) {
    out += "  retried " + std::to_string(snap.retried);
  }
  if (snap.quarantined > 0) {
    out += "  quarantined " + std::to_string(snap.quarantined);
  }
  return out;
}

}  // namespace fcdpm::telemetry
