#include "telemetry/sweep_telemetry.hpp"

#include <algorithm>
#include <utility>

namespace fcdpm::telemetry {

namespace {

/// Approximate quantile over a merged bucket array; clamped to the
/// exact observed maximum so p99/max never invert.
double merged_quantile(
    const std::array<std::uint64_t, AtomicHistogram::kBuckets>& buckets,
    std::uint64_t count, double max_value, double q) {
  if (count == 0) {
    return 0.0;
  }
  if (q >= 1.0) {
    return max_value;
  }
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < buckets.size(); ++k) {
    cumulative += static_cast<double>(buckets[k]);
    if (cumulative >= target) {
      return std::min(AtomicHistogram::bucket_representative(k), max_value);
    }
  }
  return max_value;
}

struct MergedHistogram {
  std::array<std::uint64_t, AtomicHistogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  double max = 0.0;

  void add(const AtomicHistogram& h) {
    count += h.count();
    max = std::max(max, h.max());
    for (std::size_t k = 0; k < buckets.size(); ++k) {
      buckets[k] += h.bucket(k);
    }
  }
  [[nodiscard]] double quantile(double q) const {
    return merged_quantile(buckets, count, max, q);
  }
};

}  // namespace

SweepTelemetry::SweepTelemetry(const TelemetryConfig& config)
    : config_(config),
      start_(std::chrono::steady_clock::now()),
      shards_(config.workers) {
  if (config.record_lanes) {
    lanes_.emplace(shards_.size(), config.total_points);
  }
}

std::uint64_t SweepTelemetry::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

SweepSnapshot SweepTelemetry::snapshot() const {
  SweepSnapshot snap;
  snap.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.elapsed_seconds = static_cast<double>(now_ns()) * 1e-9;
  snap.total_points = config_.total_points;
  snap.workers.reserve(shards_.size());

  MergedHistogram wall;
  MergedHistogram sim;
  std::uint64_t max_done = 0;
  for (std::size_t w = 0; w < shards_.size(); ++w) {
    const WorkerShard& shard = shards_.shard(w);
    WorkerSnapshot row;
    row.worker = w;
    row.done = shard.points_done.load(std::memory_order_relaxed);
    row.retried = shard.points_retried.load(std::memory_order_relaxed);
    row.quarantined =
        shard.points_quarantined.load(std::memory_order_relaxed);
    row.cache_hits = shard.cache_hits.load(std::memory_order_relaxed);
    row.cache_misses = shard.cache_misses.load(std::memory_order_relaxed);
    row.hot_dispatches =
        shard.hot_dispatches.load(std::memory_order_relaxed);
    row.reference_dispatches =
        shard.reference_dispatches.load(std::memory_order_relaxed);
    row.batched_dispatches =
        shard.batched_dispatches.load(std::memory_order_relaxed);
    row.heartbeats = shard.heartbeats.load(std::memory_order_relaxed);
    row.slots = shard.slots.load(std::memory_order_relaxed);
    row.capped_slots = shard.capped_slots.load(std::memory_order_relaxed);
    row.audited_slots = shard.audited_slots.load(std::memory_order_relaxed);
    row.audit_violations =
        shard.audit_violations.load(std::memory_order_relaxed);
    row.engine_fallbacks =
        shard.engine_fallbacks.load(std::memory_order_relaxed);
    row.busy_seconds =
        static_cast<double>(shard.busy_ns.load(std::memory_order_relaxed)) *
        1e-9;

    snap.done += row.done;
    snap.retried += row.retried;
    snap.quarantined += row.quarantined;
    snap.cache_hits += row.cache_hits;
    snap.cache_misses += row.cache_misses;
    snap.hot_dispatches += row.hot_dispatches;
    snap.reference_dispatches += row.reference_dispatches;
    snap.batched_dispatches += row.batched_dispatches;
    snap.heartbeats += row.heartbeats;
    snap.slots += row.slots;
    snap.capped_slots += row.capped_slots;
    snap.audited_slots += row.audited_slots;
    snap.audit_violations += row.audit_violations;
    snap.engine_fallbacks += row.engine_fallbacks;
    max_done = std::max(max_done, row.done);

    wall.add(shard.wall_us);
    sim.add(shard.sim_s);
    snap.workers.push_back(std::move(row));
  }

  if (snap.elapsed_seconds > 0.0) {
    snap.throughput_points_per_s =
        static_cast<double>(snap.done) / snap.elapsed_seconds;
  }
  const std::uint64_t settled = snap.settled();
  if (snap.throughput_points_per_s > 0.0 &&
      settled < snap.total_points) {
    snap.eta_seconds =
        static_cast<double>(snap.total_points - settled) /
        snap.throughput_points_per_s;
  }

  snap.wall_p50_us = wall.quantile(0.50);
  snap.wall_p95_us = wall.quantile(0.95);
  snap.wall_p99_us = wall.quantile(0.99);
  snap.wall_max_us = wall.max;
  snap.sim_p50_s = sim.quantile(0.50);
  snap.sim_p95_s = sim.quantile(0.95);
  snap.sim_p99_s = sim.quantile(0.99);
  snap.sim_max_s = sim.max;

  if (snap.done > 0 && !snap.workers.empty()) {
    const double mean = static_cast<double>(snap.done) /
                        static_cast<double>(snap.workers.size());
    snap.worker_skew = static_cast<double>(max_done) / mean;
  }
  return snap;
}

// --- Sampler -----------------------------------------------------------------

Sampler::Sampler(const SweepTelemetry& telemetry,
                 std::chrono::milliseconds period, Callback callback)
    : telemetry_(&telemetry), callback_(std::move(callback)) {
  thread_ = std::thread([this, period] { loop(period); });
}

Sampler::~Sampler() { stop(); }

void Sampler::loop(std::chrono::milliseconds period) {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, period, [this] { return stopping_; })) {
      return;
    }
    // Sample outside the lock so stop() is never delayed by a slow
    // callback (it still joins the in-flight emission).
    lock.unlock();
    callback_(telemetry_->snapshot());
    emitted_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

void Sampler::stop() {
  {
    const std::lock_guard lock(mutex_);
    if (stopping_ && !thread_.joinable()) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace fcdpm::telemetry
