#include "telemetry/bench_history.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace_sink.hpp"  // obs::json_escape

namespace fcdpm::telemetry {

namespace {

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Stringify an env value (numbers without a spurious ".0").
std::string env_to_string(const json::Value& v) {
  switch (v.kind()) {
    case json::Kind::String:
      return v.as_string();
    case json::Kind::Bool:
      return v.as_bool() ? "true" : "false";
    case json::Kind::Number: {
      const double n = v.as_number();
      if (n == static_cast<double>(static_cast<long long>(n))) {
        return std::to_string(static_cast<long long>(n));
      }
      return format_double(n);
    }
    default:
      return {};
  }
}

void capture_env(const json::Value& bench, HistoryRow& row) {
  const json::Value* env = bench.find("env");
  if (env == nullptr || !env->is_object()) {
    return;
  }
  for (const auto& [key, value] : env->members()) {
    row.env.emplace_back(key, env_to_string(value));
  }
}

void add_metric(const json::Value& bench, const char* path, const char* name,
                HistoryRow& row) {
  if (const auto n = bench.number_at(path)) {
    row.metrics.emplace_back(name, *n);
  }
}

}  // namespace

bool make_history_row(const json::Value& bench,
                      const std::string& source_name, HistoryRow& out,
                      std::string& error) {
  out = HistoryRow{};
  out.source = source_name;
  capture_env(bench, out);

  const std::string schema = bench.string_at("schema");
  if (schema == "fcdpm.bench.core.v1") {
    out.kind = "core";
    add_metric(bench, "timing.single_run.hot_us", "hot_us", out);
    add_metric(bench, "timing.single_run.speedup", "single_run_speedup", out);
    add_metric(bench, "timing.lifetime.hot_ms", "hot_ms", out);
    add_metric(bench, "timing.lifetime.speedup", "lifetime_speedup", out);
    return true;
  }
  if (schema == "fcdpm.bench.batch.v1") {
    out.kind = "batch";
    add_metric(bench, "timing.jobs1.speedup", "speedup_jobs1", out);
    add_metric(bench, "timing.jobsN.speedup", "speedup_jobsN", out);
    add_metric(bench, "timing.jobs1.devices_per_s", "devices_per_s", out);
    return true;
  }
  if (bench.at_path("points_per_s") != nullptr) {
    out.kind = "sweep";
    add_metric(bench, "wall_s", "wall_s", out);
    add_metric(bench, "points_per_s", "points_per_s", out);
    add_metric(bench, "speedup", "speedup", out);
    add_metric(bench, "cache.hit_rate", "cache_hit_rate", out);
    return true;
  }
  error = schema.empty()
              ? "unrecognized bench document (no schema, no sweep fields)"
              : "unrecognized bench schema: " + schema;
  return false;
}

std::string history_row_to_json(const HistoryRow& row) {
  std::string out = "{\"schema\":\"";
  out += kHistorySchema;
  out += "\",\"kind\":\"" + obs::json_escape(row.kind.c_str()) + "\"";
  out += ",\"timestamp\":\"" + obs::json_escape(row.timestamp.c_str()) + "\"";
  out += ",\"git_sha\":\"" + obs::json_escape(row.git_sha.c_str()) + "\"";
  out += ",\"source\":\"" + obs::json_escape(row.source.c_str()) + "\"";
  out += ",\"env\":{";
  for (std::size_t i = 0; i < row.env.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\"" + obs::json_escape(row.env[i].first.c_str()) + "\":\"" +
           obs::json_escape(row.env[i].second.c_str()) + "\"";
  }
  out += "},\"metrics\":{";
  for (std::size_t i = 0; i < row.metrics.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    out += "\"" + obs::json_escape(row.metrics[i].first.c_str()) +
           "\":" + format_double(row.metrics[i].second);
  }
  out += "}}";
  return out;
}

bool parse_history_row(const std::string& line, HistoryRow& out) {
  const json::ParseResult parsed = json::parse(line);
  if (!parsed.ok || !parsed.value.is_object()) {
    return false;
  }
  const json::Value& doc = parsed.value;
  if (doc.string_at("schema") != kHistorySchema) {
    return false;
  }
  out = HistoryRow{};
  out.kind = doc.string_at("kind");
  out.timestamp = doc.string_at("timestamp");
  out.git_sha = doc.string_at("git_sha");
  out.source = doc.string_at("source");
  if (const json::Value* env = doc.find("env");
      env != nullptr && env->is_object()) {
    for (const auto& [key, value] : env->members()) {
      if (value.is_string()) {
        out.env.emplace_back(key, value.as_string());
      }
    }
  }
  const json::Value* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return false;
  }
  for (const auto& [key, value] : metrics->members()) {
    if (!value.is_number()) {
      return false;
    }
    out.metrics.emplace_back(key, value.as_number());
  }
  return !out.kind.empty();
}

std::vector<HistoryRow> load_history(const std::string& path,
                                     std::size_t* skipped) {
  std::vector<HistoryRow> rows;
  std::size_t bad = 0;
  std::ifstream in(path);
  std::string line;
  while (in.good() && std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    HistoryRow row;
    if (parse_history_row(line, row)) {
      rows.push_back(std::move(row));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) {
    *skipped = bad;
  }
  return rows;
}

bool append_history(const std::string& path, const HistoryRow& row) {
  std::ofstream out(path, std::ios::app);
  if (!out.good()) {
    return false;
  }
  out << history_row_to_json(row) << '\n';
  out.flush();
  return out.good();
}

bool metric_direction(const std::string& name, Direction& out) {
  static constexpr const char* kHigher[] = {
      "points_per_s", "speedup",       "single_run_speedup",
      "lifetime_speedup", "cache_hit_rate", "speedup_jobs1",
      "speedup_jobsN", "devices_per_s"};
  static constexpr const char* kLower[] = {"wall_s", "hot_us", "hot_ms"};
  for (const char* metric : kHigher) {
    if (name == metric) {
      out = Direction::HigherIsBetter;
      return true;
    }
  }
  for (const char* metric : kLower) {
    if (name == metric) {
      out = Direction::LowerIsBetter;
      return true;
    }
  }
  return false;
}

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

CheckResult check_regression(const std::vector<HistoryRow>& history,
                             const HistoryRow& row,
                             const CheckOptions& options) {
  CheckResult result;

  // Trailing window of same-kind rows, most recent last.
  std::vector<const HistoryRow*> window;
  for (const HistoryRow& past : history) {
    if (past.kind == row.kind) {
      window.push_back(&past);
    }
  }
  if (window.size() > options.window) {
    window.erase(window.begin(),
                 window.end() - static_cast<std::ptrdiff_t>(options.window));
  }

  for (const auto& [name, value] : row.metrics) {
    if (!options.metrics.empty() &&
        std::find(options.metrics.begin(), options.metrics.end(), name) ==
            options.metrics.end()) {
      continue;
    }
    Direction direction{};
    if (!metric_direction(name, direction)) {
      continue;  // recorded, never gated
    }
    std::vector<double> samples;
    for (const HistoryRow* past : window) {
      if (const double* v = past->metric(name)) {
        samples.push_back(*v);
      }
    }
    if (samples.empty()) {
      continue;  // first run of this metric: nothing to compare against
    }
    MetricCheck check;
    check.name = name;
    check.value = value;
    check.samples = samples.size();
    check.baseline = median(std::move(samples));
    check.direction = direction;
    if (direction == Direction::HigherIsBetter) {
      check.regressed = value < check.baseline * (1.0 - options.tolerance);
    } else {
      check.regressed = value > check.baseline * (1.0 + options.tolerance);
    }
    result.ok = result.ok && !check.regressed;
    result.checks.push_back(std::move(check));
  }
  return result;
}

}  // namespace fcdpm::telemetry
