#include "telemetry/lanes.hpp"

#include <algorithm>
#include <string>

#include "obs/trace_sink.hpp"

namespace fcdpm::telemetry {

LaneRecorder::LaneRecorder(std::size_t workers, std::size_t expected_points)
    : lanes_(workers > 0 ? workers : 1) {
  for (std::vector<PointLane>& lane : lanes_) {
    lane.reserve(expected_points);
  }
}

void emit_lanes(const LaneRecorder& recorder, std::size_t total_points,
                obs::TraceSink& sink, int base_track) {
  const double ns = 1e-9;

  // One named track per worker — even an idle worker gets its (empty)
  // lane, so the file always shows the true worker count.
  for (std::size_t w = 0; w < recorder.workers(); ++w) {
    const int track = base_track + 1 + static_cast<int>(w);
    const std::string name = "sweep worker " + std::to_string(w);
    sink.track_name(track, name.c_str());

    for (const PointLane& lane : recorder.lane(w)) {
      obs::TraceEvent begin;
      begin.kind = obs::EventKind::SpanBegin;
      begin.category = "sweep";
      begin.name = "point";
      begin.track = track;
      begin.time = Seconds(static_cast<double>(lane.start_ns) * ns);
      begin.arg_count = 4;
      begin.args[0] = {"index", static_cast<double>(lane.point_index)};
      begin.args[1] = {"attempt", static_cast<double>(lane.attempt)};
      begin.args[2] = {"cache_hits", static_cast<double>(lane.cache_hits)};
      begin.args[3] = {"hot", lane.hot ? 1.0 : 0.0};
      sink.event(begin);

      obs::TraceEvent end;
      end.kind = obs::EventKind::SpanEnd;
      end.category = "sweep";
      end.name = "point";
      end.track = track;
      end.time = Seconds(static_cast<double>(lane.end_ns) * ns);
      sink.event(end);

      if (!lane.ok) {
        obs::TraceEvent failed;
        failed.kind = obs::EventKind::Instant;
        failed.category = "sweep";
        failed.name = "point.failed";
        failed.track = track;
        failed.time = Seconds(static_cast<double>(lane.end_ns) * ns);
        failed.arg_count = 1;
        failed.args[0] = {"index", static_cast<double>(lane.point_index)};
        sink.event(failed);
      }
    }
  }

  // Counter tracks, one sample per completion in wall order.
  std::vector<PointLane> completions;
  for (std::size_t w = 0; w < recorder.workers(); ++w) {
    const std::vector<PointLane>& lane = recorder.lane(w);
    completions.insert(completions.end(), lane.begin(), lane.end());
  }
  std::sort(completions.begin(), completions.end(),
            [](const PointLane& a, const PointLane& b) {
              return a.end_ns != b.end_ns ? a.end_ns < b.end_ns
                                          : a.point_index < b.point_index;
            });

  std::uint64_t settled = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  sink.track_name(base_track, "sweep counters");
  for (const PointLane& lane : completions) {
    // A retried attempt is not settled; its cache traffic still counts.
    if (lane.ok || lane.quarantined) {
      ++settled;
    }
    hits += lane.cache_hits;
    misses += lane.cache_misses;

    const Seconds t(static_cast<double>(lane.end_ns) * ns);
    obs::TraceEvent depth;
    depth.kind = obs::EventKind::Counter;
    depth.category = "sweep";
    depth.name = "sweep.queue_depth";
    depth.track = base_track;
    depth.time = t;
    depth.arg_count = 1;
    depth.args[0] = {"value",
                     static_cast<double>(total_points > settled
                                             ? total_points - settled
                                             : 0)};
    sink.event(depth);

    const double total = static_cast<double>(hits + misses);
    obs::TraceEvent rate;
    rate.kind = obs::EventKind::Counter;
    rate.category = "sweep";
    rate.name = "sweep.cache_hit_rate";
    rate.track = base_track;
    rate.time = t;
    rate.arg_count = 1;
    rate.args[0] = {"value",
                    total > 0.0 ? static_cast<double>(hits) / total : 0.0};
    sink.event(rate);
  }
  sink.flush();
}

}  // namespace fcdpm::telemetry
