#include "telemetry/json.hpp"

#include <cstdlib>

namespace fcdpm::telemetry::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) {
    return nullptr;
  }
  for (const Member& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const Value* Value::at_path(std::string_view path) const noexcept {
  const Value* current = this;
  while (!path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view key =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    current = current->find(key);
    if (current == nullptr) {
      return nullptr;
    }
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
  }
  return current;
}

std::optional<double> Value::number_at(std::string_view path) const noexcept {
  const Value* v = at_path(path);
  if (v == nullptr || !v->is_number()) {
    return std::nullopt;
  }
  return v->as_number();
}

std::string Value::string_at(std::string_view path) const {
  const Value* v = at_path(path);
  return v != nullptr && v->is_string() ? v->as_string() : std::string{};
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      result.error_byte = pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing content after document";
      result.error_byte = pos_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() noexcept {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool fail(const char* message) {
    error_ = message;
    return false;
  }

  bool expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (at_end()) {
      return fail("unexpected end of input");
    }
    switch (peek()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) {
          return false;
        }
        out = Value::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!expect_literal("true")) {
          return false;
        }
        out = Value::make_bool(true);
        return true;
      case 'f':
        if (!expect_literal("false")) {
          return false;
        }
        out = Value::make_bool(false);
        return true;
      case 'n':
        if (!expect_literal("null")) {
          return false;
        }
        out = Value::make_null();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    std::vector<Value::Member> members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      out = Value::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_ws();
      if (at_end() || peek() != ':') {
        return fail("expected ':' after key");
      }
      ++pos_;
      skip_ws();
      Value value;
      if (!parse_value(value)) {
        return false;
      }
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) {
        return fail("unterminated object");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        out = Value::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    std::vector<Value> items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      out = Value::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      Value value;
      if (!parse_value(value)) {
        return false;
      }
      items.push_back(std::move(value));
      skip_ws();
      if (at_end()) {
        return fail("unterminated array");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        out = Value::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (at_end()) {
        return fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) {
        return fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) {
              return fail("truncated \\u escape");
            }
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("invalid \\u escape");
            }
          }
          // BMP only (surrogate pairs never appear in this repo's
          // machine-written output); encode as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') {
      ++pos_;
    }
    while (!at_end()) {
      const char c = peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      return fail("invalid number");
    }
    out = Value::make_number(number);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

}  // namespace fcdpm::telemetry::json
