// Per-worker Perfetto track lanes for sweep execution.
//
// Workers append one `PointLane` per completed grid-point attempt to
// their own pre-reserved vector (no locks, no cross-worker sharing);
// after the sweep, `emit_lanes` replays the records into an
// obs::TraceSink on one thread: one named track per worker (span per
// point, wall-clock timeline) plus counter tracks for the solve-cache
// hit rate and the remaining-queue depth. Emission is entirely
// post-hoc, so the trace sink — which is not thread-safe — is never
// touched from a worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcdpm::obs {
class TraceSink;
}  // namespace fcdpm::obs

namespace fcdpm::telemetry {

/// One executed grid-point attempt, stamped on the sweep's wall-clock
/// timebase (nanoseconds since SweepTelemetry construction).
struct PointLane {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t point_index = 0;
  std::uint32_t attempt = 1;
  std::uint32_t cache_hits = 0;    ///< this attempt's tap delta
  std::uint32_t cache_misses = 0;
  bool ok = true;
  /// Failed final attempt: the point will not run again. Lets the
  /// queue-depth counter settle failed points too.
  bool quarantined = false;
  bool hot = false;  ///< the hot lane actually ran this attempt
};

class LaneRecorder {
 public:
  /// Pre-reserves `expected_points` records per worker so the record
  /// path does not allocate in the steady state.
  LaneRecorder(std::size_t workers, std::size_t expected_points);

  LaneRecorder(const LaneRecorder&) = delete;
  LaneRecorder& operator=(const LaneRecorder&) = delete;

  /// Called by worker `worker` only (single writer per lane).
  void record(std::size_t worker, const PointLane& lane) {
    lanes_[worker].push_back(lane);
  }

  [[nodiscard]] std::size_t workers() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] const std::vector<PointLane>& lane(
      std::size_t worker) const noexcept {
    return lanes_[worker];
  }

 private:
  std::vector<std::vector<PointLane>> lanes_;
};

/// Replay the recorded lanes into `sink` (single-threaded):
///   track base_track + 1 + w  — named "sweep worker w", one span per
///                               point attempt with index/hits/misses
///                               args;
///   track base_track          — counter samples "sweep.queue_depth"
///                               (grid points not yet settled) and
///                               "sweep.cache_hit_rate" (cumulative),
///                               one sample per point completion in
///                               wall order.
/// Event times are wall seconds since the sweep started (the sweep's
/// trace file holds only telemetry events, so the simulated-time axis
/// is not mixed in).
void emit_lanes(const LaneRecorder& recorder, std::size_t total_points,
                obs::TraceSink& sink, int base_track = 0);

}  // namespace fcdpm::telemetry
