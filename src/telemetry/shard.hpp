// Per-worker telemetry shards for sweep-scale engines.
//
// Each worker of a sweep owns exactly one `WorkerShard`: a cache-line-
// aligned block of relaxed-atomic counters and fixed-bucket latency
// histograms. Workers write their own shard lock-free on the hot path
// (a handful of relaxed increments per *grid point*, never per slot);
// the snapshot aggregator (sweep_telemetry.hpp) reads every shard from
// another thread and merges them into a `SweepSnapshot`. Because every
// field only ever increases, any interleaving of reads yields totals
// that are monotone across successive snapshots.
//
// Telemetry is derived observation only: nothing in this file is ever
// consulted by the simulation, so results stay bit-identical with
// telemetry on or off (bench/perf_tracing_overhead.cpp holds the
// attached-shards overhead under the repo-wide 2 % budget).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcdpm::telemetry {

/// Destructive-interference granularity. 64 is right for every
/// mainstream x86/ARM part this repo targets; std::hardware_destructive_
/// interference_size is deliberately avoided (libstdc++ warns that its
/// value is ABI-fragile).
inline constexpr std::size_t kCacheLine = 64;

/// Lock-free fixed-bucket histogram for nonnegative samples.
///
/// Bucket k holds samples in [2^(k-1), 2^k) (bucket 0 holds [0, 1)), so
/// 32 buckets span 1 .. ~2^30 in the caller's unit — microseconds cover
/// point latencies from sub-microsecond to ~18 minutes. Quantiles are
/// approximate (geometric bucket midpoints, clamped to the exact
/// observed max); count/sum/max are exact.
class AtomicHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  /// Relaxed, wait-free on the fast path (one fetch_add per field; max
  /// uses a CAS loop that almost always exits on the first compare).
  void observe(double value) noexcept {
    if (!(value >= 0.0)) {  // negative or NaN: clamp into bucket 0
      value = 0.0;
    }
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    // Nonnegative IEEE doubles order the same as their bit patterns.
    const std::uint64_t bits = double_bits(value);
    std::uint64_t seen = max_bits_.load(std::memory_order_relaxed);
    while (bits > seen && !max_bits_.compare_exchange_weak(
                              seen, bits, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return bits_double(max_bits_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t k) const noexcept {
    return buckets_[k].load(std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(double value) noexcept {
    if (value < 1.0) {
      return 0;
    }
    const int e = std::ilogb(value);  // >= 0 here
    const std::size_t index = static_cast<std::size_t>(e) + 1;
    return index < kBuckets ? index : kBuckets - 1;
  }

  /// Geometric midpoint of bucket k (the inverse of bucket_of).
  [[nodiscard]] static double bucket_representative(std::size_t k) noexcept {
    if (k == 0) {
      return 0.5;
    }
    return std::ldexp(1.5, static_cast<int>(k) - 1);
  }

 private:
  [[nodiscard]] static std::uint64_t double_bits(double v) noexcept {
    return std::bit_cast<std::uint64_t>(v);
  }
  [[nodiscard]] static double bits_double(std::uint64_t bits) noexcept {
    return std::bit_cast<double>(bits);
  }

  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> max_bits_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// One worker's private counters. Writers: exactly one worker thread
/// (plus the resilience layer's end-of-point accounting on that same
/// thread). Readers: the aggregator, concurrently, relaxed.
struct alignas(kCacheLine) WorkerShard {
  std::atomic<std::uint64_t> points_done{0};      ///< completed ok
  std::atomic<std::uint64_t> points_retried{0};   ///< failed, will re-run
  std::atomic<std::uint64_t> points_quarantined{0};
  std::atomic<std::uint64_t> cache_hits{0};    ///< via the per-worker tap
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> hot_dispatches{0};  ///< hot lane actually ran
  std::atomic<std::uint64_t> reference_dispatches{0};
  std::atomic<std::uint64_t> batched_dispatches{0};  ///< batch lane ran
  std::atomic<std::uint64_t> heartbeats{0};  ///< watchdog-token slot beats
  std::atomic<std::uint64_t> busy_ns{0};     ///< wall time inside points
  std::atomic<std::uint64_t> slots{0};       ///< simulated slots executed
  std::atomic<std::uint64_t> capped_slots{0};  ///< governor-throttled slots
  std::atomic<std::uint64_t> audited_slots{0};  ///< auditor-sampled slots
  std::atomic<std::uint64_t> audit_violations{0};
  std::atomic<std::uint64_t> engine_fallbacks{0};  ///< hot runs self-healed
  AtomicHistogram wall_us;  ///< per-point wall latency, microseconds
  AtomicHistogram sim_s;    ///< per-point simulated duration, seconds
};

static_assert(alignof(WorkerShard) == kCacheLine);
static_assert(sizeof(WorkerShard) % kCacheLine == 0,
              "shards must not share cache lines");

/// The fixed shard array for one sweep; sized once, never reallocated,
/// so shard references stay valid for the sweep's lifetime.
class ShardSet {
 public:
  explicit ShardSet(std::size_t workers)
      : shards_(workers > 0 ? workers : 1) {}

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] WorkerShard& shard(std::size_t worker) noexcept {
    return shards_[worker];
  }
  [[nodiscard]] const WorkerShard& shard(std::size_t worker) const noexcept {
    return shards_[worker];
  }

 private:
  std::vector<WorkerShard> shards_;
};

}  // namespace fcdpm::telemetry
