// Minimal recursive-descent JSON reader for the bench-history ledger.
//
// The repo *writes* JSON in several places (report/, obs/) but until
// now never read it back; bench_history must parse its own BENCH_*.json
// outputs and BENCH_HISTORY.jsonl rows. This is a deliberately small
// reader for that machine-written subset: full JSON values, UTF-8
// passed through opaquely, \uXXXX unescaped only for the BMP. Objects
// preserve insertion order (a vector of pairs) so round-trips are
// stable and duplicate keys keep first-wins lookup semantics.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fcdpm::telemetry::json {

enum class Kind { Null, Bool, Number, String, Array, Object };

class Value {
 public:
  using Member = std::pair<std::string, Value>;

  Value() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::String;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return members_;
  }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  /// Dotted-path lookup, e.g. `at_path("timing.single_run.speedup")`.
  [[nodiscard]] const Value* at_path(std::string_view path) const noexcept;

  /// Convenience: number at a dotted path, or nullopt when the path is
  /// missing or not a number.
  [[nodiscard]] std::optional<double> number_at(
      std::string_view path) const noexcept;
  /// Convenience: string at a dotted path, or empty when missing.
  [[nodiscard]] std::string string_at(std::string_view path) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b) {
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
  }
  static Value make_number(double n) {
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
  }
  static Value make_string(std::string s) {
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
  }
  static Value make_array(std::vector<Value> items) {
    Value v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
  }
  static Value make_object(std::vector<Member> members) {
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
  }

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

struct ParseResult {
  bool ok = false;
  Value value;
  std::string error;       ///< empty on success
  std::size_t error_byte = 0;  ///< byte offset of the failure
};

/// Parse one complete JSON document; trailing whitespace is allowed,
/// any other trailing content is an error.
[[nodiscard]] ParseResult parse(std::string_view text);

}  // namespace fcdpm::telemetry::json
