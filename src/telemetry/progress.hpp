// Snapshot serialization: the JSONL progress stream written by
// `fcdpm_cli sweep --progress-out`, and the one-line human progress
// string for stderr.
#pragma once

#include <string>

#include "telemetry/sweep_telemetry.hpp"

namespace fcdpm::telemetry {

/// One self-contained JSON object (no trailing newline) per snapshot.
/// Schema "fcdpm.sweep_progress.v1": every field present on every
/// line, numbers via %.12g (these are derived rates/latencies, not
/// simulation results), per-worker rows under "workers".
[[nodiscard]] std::string snapshot_to_json(const SweepSnapshot& snap);

/// Compact single-line progress string for a terminal, e.g.
///   `sweep 42/360 (11.7%)  123.4 pt/s  eta 2.6s  p95 812us  cache 87.5%`.
/// No trailing newline; the caller decides between '\r' and '\n'.
[[nodiscard]] std::string progress_line(const SweepSnapshot& snap);

}  // namespace fcdpm::telemetry
