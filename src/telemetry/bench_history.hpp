// Bench-history regression ledger.
//
// Every BENCH_*.json the repo produces is a single-run artifact: it
// says how fast *this* build is, not whether the number drifted. The
// ledger (BENCH_HISTORY.jsonl) gives benches a memory — one
// schema-versioned row appended per bench run (git SHA, env capture,
// headline metrics) — and `check_regression` compares a fresh row
// against the median of the trailing window, direction-aware, so CI
// fails when a headline metric regresses past tolerance instead of
// silently recording the decay.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace fcdpm::telemetry {

/// Schema tag written into every ledger row.
inline constexpr const char* kHistorySchema = "fcdpm.bench_history.v1";

/// One ledger row. `env` and `metrics` preserve insertion order so a
/// row serializes deterministically.
struct HistoryRow {
  std::string kind;       ///< "core", "sweep", ... (bench family)
  std::string timestamp;  ///< ISO-8601 UTC, supplied by the caller
  std::string git_sha;    ///< empty when unknown
  std::string source;     ///< bench JSON filename the row came from
  std::vector<std::pair<std::string, std::string>> env;
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] const double* metric(const std::string& name) const noexcept {
    for (const auto& [key, value] : metrics) {
      if (key == name) {
        return &value;
      }
    }
    return nullptr;
  }
};

/// Build a ledger row from a parsed BENCH_*.json document. Kind is
/// detected from the document's "schema" field ("fcdpm.bench.core.v1"
/// -> "core"); documents without one but with sweep headline fields
/// ("points_per_s") are "sweep". Returns false (with `error` set) when
/// the document matches no known bench family.
[[nodiscard]] bool make_history_row(const json::Value& bench,
                                    const std::string& source_name,
                                    HistoryRow& out, std::string& error);

/// One JSON object, no trailing newline.
[[nodiscard]] std::string history_row_to_json(const HistoryRow& row);

/// Parse one ledger line. Unknown schema versions and malformed lines
/// return false.
[[nodiscard]] bool parse_history_row(const std::string& line, HistoryRow& out);

/// Load every well-formed row of a ledger file; rows that fail to parse
/// are counted in `skipped` (a ledger survives a torn tail the same way
/// the resilience journal does). A missing file is an empty history.
[[nodiscard]] std::vector<HistoryRow> load_history(const std::string& path,
                                                   std::size_t* skipped =
                                                       nullptr);

/// Append one row to the ledger (plain O_APPEND-style write; the row is
/// a single line so concurrent CI jobs at worst interleave whole rows).
/// Returns false when the file cannot be opened or written.
[[nodiscard]] bool append_history(const std::string& path,
                                  const HistoryRow& row);

/// Metric directions the checker understands. Metrics not listed here
/// are recorded but never gated.
enum class Direction { HigherIsBetter, LowerIsBetter };

/// Direction for a known headline metric; false for unknown names.
[[nodiscard]] bool metric_direction(const std::string& name, Direction& out);

struct CheckOptions {
  /// Fractional tolerance: a higher-is-better metric regresses when
  /// value < baseline * (1 - tolerance); lower-is-better when
  /// value > baseline * (1 + tolerance).
  double tolerance = 0.15;
  /// Baseline = median over at most this many most-recent rows of the
  /// same kind.
  std::size_t window = 8;
  /// When non-empty, only these metrics are gated.
  std::vector<std::string> metrics;
};

struct MetricCheck {
  std::string name;
  double value = 0.0;
  double baseline = 0.0;  ///< median of the trailing window
  std::size_t samples = 0;
  Direction direction = Direction::HigherIsBetter;
  bool regressed = false;
};

struct CheckResult {
  bool ok = true;  ///< no gated metric regressed
  /// One entry per gated metric that had >= 1 baseline sample.
  std::vector<MetricCheck> checks;
};

/// Compare `row` against the trailing window of same-kind rows in
/// `history`. A metric with no history samples is not gated (first run
/// always passes).
[[nodiscard]] CheckResult check_regression(
    const std::vector<HistoryRow>& history, const HistoryRow& row,
    const CheckOptions& options);

}  // namespace fcdpm::telemetry
