// Sweep-scale live telemetry: the shard owner, the snapshot
// aggregator, and the opt-in sampler thread.
//
// A `SweepTelemetry` is created by the caller (the CLI, a bench, a
// test) with the resolved worker count and the grid size, handed to
// `par::run_sweep` / `resilience::run_resilient_sweep` via their
// options, and read — concurrently, at any time — through
// `snapshot()`. Snapshots are *derived, never consulted*: the engines
// write shards and otherwise behave bit-identically to a telemetry-off
// run (tests/par/test_sweep.cpp holds them to it).
//
// Monotonicity: every shard field only increases, and a snapshot reads
// each field exactly once, so for any two snapshots taken in order,
// every total in the later one is >= the earlier one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "telemetry/lanes.hpp"
#include "telemetry/shard.hpp"

namespace fcdpm::telemetry {

/// One worker's slice of a snapshot.
struct WorkerSnapshot {
  std::size_t worker = 0;
  std::uint64_t done = 0;
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_dispatches = 0;
  std::uint64_t reference_dispatches = 0;
  std::uint64_t batched_dispatches = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t slots = 0;
  std::uint64_t capped_slots = 0;
  std::uint64_t audited_slots = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t engine_fallbacks = 0;
  double busy_seconds = 0.0;
};

/// A merged, monotonic view of every shard at one instant.
struct SweepSnapshot {
  std::uint64_t seq = 0;          ///< 1, 2, ... per SweepTelemetry
  double elapsed_seconds = 0.0;   ///< wall time since construction
  std::size_t total_points = 0;   ///< grid size (constant)
  std::uint64_t done = 0;
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_dispatches = 0;
  std::uint64_t reference_dispatches = 0;
  std::uint64_t batched_dispatches = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t slots = 0;
  std::uint64_t capped_slots = 0;
  std::uint64_t audited_slots = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t engine_fallbacks = 0;
  double throughput_points_per_s = 0.0;
  /// Remaining points / throughput; 0 when done or unknown.
  double eta_seconds = 0.0;
  /// Per-point wall latency quantiles (microseconds; approximate,
  /// max exact).
  double wall_p50_us = 0.0;
  double wall_p95_us = 0.0;
  double wall_p99_us = 0.0;
  double wall_max_us = 0.0;
  /// Per-point simulated duration quantiles (seconds).
  double sim_p50_s = 0.0;
  double sim_p95_s = 0.0;
  double sim_p99_s = 0.0;
  double sim_max_s = 0.0;
  /// max(done per worker) / mean(done per worker); 1 = perfectly even,
  /// equals worker count when one worker did everything. 1 when idle.
  double worker_skew = 1.0;
  std::vector<WorkerSnapshot> workers;

  [[nodiscard]] double cache_hit_rate() const noexcept {
    const double total =
        static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  /// done + quarantined: grid points that will not run again.
  [[nodiscard]] std::uint64_t settled() const noexcept {
    return done + quarantined;
  }
};

struct TelemetryConfig {
  /// Shard count; must be >= the worker-pool thread count the sweep
  /// resolves (par::WorkerPool::resolve gives the exact number).
  std::size_t workers = 1;
  /// Grid size, for ETA and the progress denominator.
  std::size_t total_points = 0;
  /// Record per-point lane events for Perfetto track emission
  /// (allocates one pre-reserved vector per worker up front; the
  /// record path itself stays allocation-free until the reserve is
  /// exhausted).
  bool record_lanes = false;
};

/// Owner of the shard set (and optional lane recorder) for one sweep.
/// The wall clock starts at construction — construct immediately
/// before running the sweep.
class SweepTelemetry {
 public:
  explicit SweepTelemetry(const TelemetryConfig& config);

  SweepTelemetry(const SweepTelemetry&) = delete;
  SweepTelemetry& operator=(const SweepTelemetry&) = delete;

  [[nodiscard]] ShardSet& shards() noexcept { return shards_; }
  [[nodiscard]] const ShardSet& shards() const noexcept { return shards_; }
  /// nullptr when lane recording is off.
  [[nodiscard]] LaneRecorder* lanes() noexcept {
    return lanes_.has_value() ? &*lanes_ : nullptr;
  }
  [[nodiscard]] const LaneRecorder* lanes() const noexcept {
    return lanes_.has_value() ? &*lanes_ : nullptr;
  }

  [[nodiscard]] std::size_t total_points() const noexcept {
    return config_.total_points;
  }
  /// Wall nanoseconds since construction (the lane/event timebase).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Merge every shard into a monotonic snapshot. Thread-safe with
  /// respect to concurrent shard writers; callable from any thread
  /// (the sampler and the final on-demand pull share seq numbering).
  [[nodiscard]] SweepSnapshot snapshot() const;

 private:
  TelemetryConfig config_;
  std::chrono::steady_clock::time_point start_;
  ShardSet shards_;
  std::optional<LaneRecorder> lanes_;
  mutable std::atomic<std::uint64_t> seq_{0};
};

/// Opt-in background sampler: calls `callback` with a fresh snapshot
/// every `period` until stopped. The callback runs on the sampler
/// thread — keep it to serialization + I/O. stop() (and the
/// destructor) joins; after stop() returns no further callback runs,
/// so a final on-demand snapshot() from the caller cannot interleave.
class Sampler {
 public:
  using Callback = std::function<void(const SweepSnapshot&)>;

  Sampler(const SweepTelemetry& telemetry, std::chrono::milliseconds period,
          Callback callback);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Emissions so far (for reports/tests).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  void loop(std::chrono::milliseconds period);

  const SweepTelemetry* telemetry_;
  Callback callback_;
  std::atomic<std::uint64_t> emitted_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace fcdpm::telemetry
