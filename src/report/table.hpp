// Plain-text / markdown tables for the bench harness output: each bench
// binary prints the same rows the paper's table or figure reports.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace fcdpm::report {

/// A titled table of string cells. Rows are padded to the header width.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

  /// Append a row; it may have at most as many cells as there are
  /// columns (missing cells render empty).
  void add_row(std::vector<std::string> cells);

  /// Render with aligned ASCII columns.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as a GitHub-markdown table.
  [[nodiscard]] std::string to_markdown() const;

  /// Render as CSV (title as a '#' comment line).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Cell formatting helpers (thin wrappers over common/text).
[[nodiscard]] std::string cell(double value, int decimals = 3);
[[nodiscard]] std::string percent_cell(double fraction, int decimals = 1);

std::ostream& operator<<(std::ostream& out, const Table& table);

}  // namespace fcdpm::report
