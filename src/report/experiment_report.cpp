#include "report/experiment_report.hpp"

#include <sstream>

#include "common/text.hpp"

namespace fcdpm::report {

ReportBuilder& ReportBuilder::title(const std::string& text) {
  blocks_.push_back("# " + text);
  return *this;
}

ReportBuilder& ReportBuilder::section(const std::string& text) {
  blocks_.push_back("## " + text);
  return *this;
}

ReportBuilder& ReportBuilder::paragraph(const std::string& text) {
  blocks_.push_back(text);
  return *this;
}

ReportBuilder& ReportBuilder::bullet(const std::string& text) {
  if (!blocks_.empty() && blocks_.back().rfind("- ", 0) == 0) {
    blocks_.back() += "\n- " + text;
  } else {
    blocks_.push_back("- " + text);
  }
  return *this;
}

ReportBuilder& ReportBuilder::table(const Table& table) {
  blocks_.push_back(table.to_markdown());
  return *this;
}

std::string ReportBuilder::markdown() const {
  std::ostringstream out;
  for (std::size_t k = 0; k < blocks_.size(); ++k) {
    if (k != 0) {
      out << "\n";
    }
    out << blocks_[k] << "\n";
  }
  return out.str();
}

Table comparison_table(const std::string& title,
                       const sim::PolicyComparison& c) {
  Table table(title, {"DPM policy", "Conv-DPM", "ASAP-DPM", "FC-DPM"});
  table.add_row({"fuel (A-s)", cell(c.conv.fuel().value(), 1),
                 cell(c.asap.fuel().value(), 1),
                 cell(c.fcdpm.fuel().value(), 1)});
  table.add_row(
      {"compared to Conv-DPM", "100%",
       percent_cell(sim::normalized_fuel(c.asap, c.conv)),
       percent_cell(sim::normalized_fuel(c.fcdpm, c.conv))});
  return table;
}

std::string reproduction_report(const sim::PolicyComparison& experiment1,
                                const sim::PolicyComparison& experiment2) {
  ReportBuilder builder;
  builder.title(
      "fcdpm reproduction report — Zhuo et al., DAC 2007, \"Dynamic "
      "Power Management with Hybrid Power Sources\"");

  builder.section("Experiment 1 — DVD camcorder MPEG trace (Table 2)");
  builder.table(comparison_table("Normalized fuel consumption of Exp. 1",
                                 experiment1));
  builder.paragraph(
      "Paper's row: 100% / 40.8% / 30.8%. FC-DPM saves " +
      format_percent(
          sim::fuel_saving(experiment1.fcdpm, experiment1.asap)) +
      " fuel over ASAP-DPM (paper: 24.4%), a " +
      format_fixed(
          sim::lifetime_extension(experiment1.fcdpm, experiment1.asap),
          2) +
      "x lifetime extension (paper: 1.32x).");

  builder.section("Experiment 2 — synthetic workload (Table 3)");
  builder.table(comparison_table("Normalized fuel consumption of Exp. 2",
                                 experiment2));
  builder.paragraph(
      "Paper's row: 100% / 49.1% / 41.5%. FC-DPM saves " +
      format_percent(
          sim::fuel_saving(experiment2.fcdpm, experiment2.asap)) +
      " over ASAP-DPM (paper: 15.5%) — smaller than Experiment 1's "
      "saving, as the paper observes.");

  builder.section("Provenance");
  builder.bullet("Traces are synthesized to the paper's published "
                 "statistics (the measured trace is not public).");
  builder.bullet("Fuel model: Ifc = 0.32*IF/(0.45 - 0.13*IF), the "
                 "paper's measured characterization.");
  builder.bullet("Regenerate with: `for b in build/bench/*; do $b; "
                 "done`.");
  return builder.markdown();
}

}  // namespace fcdpm::report
