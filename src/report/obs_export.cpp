#include "report/obs_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "obs/trace_sink.hpp"

namespace fcdpm::report {

namespace {

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string format_count(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace

CsvDocument metrics_to_csv(const obs::MetricsRegistry& metrics) {
  CsvDocument doc;
  doc.header = {"name", "type", "count", "value",
                "min",  "max",  "p50",   "p95",   "p99"};
  for (const obs::MetricRow& row : metrics.rows()) {
    doc.rows.push_back({row.name, row.type, format_count(row.count),
                        format_double(row.value), format_double(row.min),
                        format_double(row.max), format_double(row.p50),
                        format_double(row.p95), format_double(row.p99)});
  }
  return doc;
}

std::string metrics_to_json(const obs::MetricsRegistry& metrics) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const obs::MetricRow& row : metrics.rows()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"" + obs::json_escape(row.name.c_str()) +
           "\",\"type\":\"" + row.type +
           "\",\"count\":" + format_count(row.count) +
           ",\"value\":" + format_double(row.value) +
           ",\"min\":" + format_double(row.min) +
           ",\"max\":" + format_double(row.max) +
           ",\"p50\":" + format_double(row.p50) +
           ",\"p95\":" + format_double(row.p95) +
           ",\"p99\":" + format_double(row.p99) + "}";
  }
  out += "]}\n";
  return out;
}

void write_metrics_file(const std::string& path,
                        const obs::MetricsRegistry& metrics) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_file_atomic(path, metrics_to_json(metrics));
    return;
  }
  write_csv_file(path, metrics_to_csv(metrics));
}

CsvDocument profile_to_csv(const obs::Profiler& profiler) {
  using Entry = std::pair<std::string, obs::Profiler::ScopeStats>;
  std::vector<Entry> entries(profiler.scopes().begin(),
                             profiler.scopes().end());
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.second.total > b.second.total;
            });

  CsvDocument doc;
  doc.header = {"scope", "calls", "total_ms", "mean_us", "min_us", "max_us"};
  for (const Entry& entry : entries) {
    const obs::Profiler::ScopeStats& stats = entry.second;
    const double total_us =
        static_cast<double>(stats.total.count()) / 1e3;
    const double calls = static_cast<double>(stats.calls);
    doc.rows.push_back(
        {entry.first, format_count(stats.calls),
         format_double(total_us / 1e3),
         format_double(stats.calls == 0 ? 0.0 : total_us / calls),
         format_double(static_cast<double>(stats.min.count()) / 1e3),
         format_double(static_cast<double>(stats.max.count()) / 1e3)});
  }
  return doc;
}

}  // namespace fcdpm::report
