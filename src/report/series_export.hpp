// Figure exports: render StepSeries profiles as aligned CSV (for
// re-plotting) and as coarse ASCII strip charts (for eyeballing a bench
// run in the terminal, like the paper's Figure 7 panels).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/recorder.hpp"

namespace fcdpm::report {

/// CSV with a shared time grid: time_s, then one column per series,
/// sampled at every change point of any series.
[[nodiscard]] std::string series_to_csv(
    const std::vector<const sim::StepSeries*>& series);

/// ASCII strip chart of one series: `width` character columns covering
/// [t0, t1], `height` rows covering [0, y_max]. Each column shows the
/// series value at the column's start time.
[[nodiscard]] std::string ascii_chart(const sim::StepSeries& series,
                                      Seconds t0, Seconds t1, double y_max,
                                      int width = 100, int height = 12);

}  // namespace fcdpm::report
