#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/text.hpp"

namespace fcdpm::report {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  FCDPM_EXPECTS(!columns_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FCDPM_EXPECTS(cells.size() <= columns_.size(),
                "row has more cells than the table has columns");
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << title_ << '\n';

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) {
        out << "  ";
      }
      out << pad_right(c < cells.size() ? cells[c] : "", widths[c]);
    }
    out << '\n';
  };

  emit_row(columns_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  out << "### " << title_ << "\n\n|";
  for (const std::string& column : columns_) {
    out << ' ' << column << " |";
  }
  out << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << "---|";
  }
  out << '\n';
  for (const auto& row : rows_) {
    out << '|';
    for (const std::string& cellText : row) {
      out << ' ' << cellText << " |";
    }
    out << '\n';
  }
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  out << "# " << title_ << '\n';
  out << format_csv_row(columns_) << '\n';
  for (const auto& row : rows_) {
    out << format_csv_row(row) << '\n';
  }
  return out.str();
}

std::string cell(double value, int decimals) {
  return format_fixed(value, decimals);
}

std::string percent_cell(double fraction, int decimals) {
  return format_percent(fraction, decimals);
}

std::ostream& operator<<(std::ostream& out, const Table& table) {
  return out << table.to_ascii();
}

}  // namespace fcdpm::report
