// Standalone SVG rendering of the figure data — publication-style plots
// of step series (Figure 7 current profiles) and sampled curves
// (Figures 2/3) with axes, ticks and labels, no external dependencies.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/recorder.hpp"

namespace fcdpm::report {

/// One (x, y) curve for the generic line plot.
struct SvgSeries {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Plot geometry and labeling.
struct SvgOptions {
  int width = 720;
  int height = 360;
  std::string title;
  std::string x_label;
  std::string y_label;
  /// Axis ranges; when lo == hi the range is derived from the data.
  double x_min = 0.0;
  double x_max = 0.0;
  double y_min = 0.0;
  double y_max = 0.0;
};

/// Render polyline series (each in a distinct stroke) as a complete SVG
/// document. Requires at least one series with >= 2 points, and every
/// series' xs/ys sizes to match.
[[nodiscard]] std::string render_line_svg(
    const std::vector<SvgSeries>& series, const SvgOptions& options);

/// Render step series (piecewise-constant, like Figure 7's current
/// profiles) over [t0, t1].
[[nodiscard]] std::string render_step_svg(
    const std::vector<const sim::StepSeries*>& series, Seconds t0,
    Seconds t1, const SvgOptions& options);

/// Write an SVG document to a file; throws CsvError-style runtime_error
/// on I/O failure.
void write_svg_file(const std::string& path, const std::string& svg);

}  // namespace fcdpm::report
