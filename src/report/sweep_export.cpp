#include "report/sweep_export.hpp"

#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "obs/trace_sink.hpp"

namespace fcdpm::report {

namespace {

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

std::string sweep_bench_to_json(const SweepBenchReport& bench) {
  std::string out = "{";
  out += "\"trace\":\"" + obs::json_escape(bench.trace_name.c_str()) + "\"";
  out += ",\"points\":" + std::to_string(bench.points);
  out += ",\"jobs\":" + std::to_string(bench.jobs);
  out += ",\"wall_s\":" + format_double(bench.wall_seconds);
  out += ",\"points_per_s\":" + format_double(bench.points_per_second);
  out += ",\"cache\":{\"hits\":" + std::to_string(bench.cache_hits) +
         ",\"misses\":" + std::to_string(bench.cache_misses) +
         ",\"hit_rate\":" + format_double(bench.cache_hit_rate) + "}";
  out += ",\"serial_wall_s\":" + format_double(bench.serial_wall_seconds);
  out += ",\"speedup\":" + format_double(bench.speedup);
  out += ",\"bit_identical_to_serial\":" +
         std::to_string(bench.bit_identical_to_serial);
  out += "}\n";
  return out;
}

void write_sweep_bench_file(const std::string& path,
                            const SweepBenchReport& bench) {
  std::ofstream out(path);
  if (!out) {
    throw CsvError("cannot create sweep bench file: " + path);
  }
  out << sweep_bench_to_json(bench);
}

}  // namespace fcdpm::report
