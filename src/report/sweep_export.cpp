#include "report/sweep_export.hpp"

#include <cstdio>

#include "common/atomic_file.hpp"
#include "obs/trace_sink.hpp"

namespace fcdpm::report {

namespace {

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

/// Exact round-trip form for result values (17 significant digits
/// reproduce any IEEE binary64 bit pattern).
std::string format_exact(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string point_row_to_json(const SweepPointRow& row) {
  std::string out = "{";
  out += "\"policy\":\"" + obs::json_escape(row.policy.c_str()) + "\"";
  out += ",\"rho\":" + format_exact(row.rho);
  out += ",\"capacity\":" + format_exact(row.capacity);
  out += ",\"storm_seed\":" + std::to_string(row.storm_seed);
  out += ",\"ok\":";
  out += row.ok ? "true" : "false";
  if (!row.error.empty()) {
    out += ",\"error\":\"" + obs::json_escape(row.error.c_str()) + "\"";
  }
  out += ",\"attempts\":" + std::to_string(row.attempts);
  out += ",\"replayed\":";
  out += row.replayed ? "true" : "false";
  if (row.ok) {
    out += ",\"fuel\":" + format_exact(row.fuel);
    out += ",\"bled\":" + format_exact(row.bled);
    out += ",\"unserved\":" + format_exact(row.unserved);
    out += ",\"duration\":" + format_exact(row.duration);
    out += ",\"storage_end\":" + format_exact(row.storage_end);
    out += ",\"latency\":" + format_exact(row.latency);
    out += ",\"slots\":" + std::to_string(row.slots);
    out += ",\"sleeps\":" + std::to_string(row.sleeps);
    if (row.cap_enabled) {
      out += ",\"capped_slots\":" + std::to_string(row.capped_slots);
      out += ",\"cap_violations\":" + std::to_string(row.cap_violations);
      out += ",\"cap_deferred_j\":" + format_exact(row.cap_deferred_j);
      out += ",\"cap_deferred_s\":" + format_exact(row.cap_deferred_s);
    }
    if (row.stacks_enabled) {
      out += ",\"stacks\":" + std::to_string(row.stacks);
      out += ",\"distribution\":\"" +
             obs::json_escape(row.distribution.c_str()) + "\"";
      out += ",\"stack_startups\":" + std::to_string(row.stack_startups);
      out += ",\"stack_max_wear\":" + format_exact(row.stack_max_wear);
      out += ",\"stack_fuel\":[";
      for (std::size_t k = 0; k < row.stack_fuel.size(); ++k) {
        if (k != 0) {
          out += ',';
        }
        out += format_exact(row.stack_fuel[k]);
      }
      out += "]";
    }
    if (row.audit_enabled) {
      out += ",\"audit_slots\":" + std::to_string(row.audit_slots);
      out += ",\"audit_checks\":" + std::to_string(row.audit_checks);
      out += ",\"audit_violations\":" + std::to_string(row.audit_violations);
      out += ",\"engine_fallbacks\":" + std::to_string(row.engine_fallbacks);
      if (!row.audit_first.empty()) {
        out += ",\"audit_first\":\"" +
               obs::json_escape(row.audit_first.c_str()) + "\"";
      }
    }
  }
  out += "}";
  return out;
}

std::string resilience_to_json(const SweepResilienceReport& r) {
  std::string out = "{";
  out += "\"scheduled\":" + std::to_string(r.scheduled);
  out += ",\"replayed\":" + std::to_string(r.replayed);
  out += ",\"retries\":" + std::to_string(r.retries);
  out += ",\"quarantined\":" + std::to_string(r.quarantined);
  out += ",\"rounds\":" + std::to_string(r.rounds);
  out += ",\"spot_checks\":" + std::to_string(r.spot_checks);
  out += ",\"torn_tail_recovered\":";
  out += r.torn_tail_recovered ? "true" : "false";
  out += ",\"torn_bytes_dropped\":" + std::to_string(r.torn_bytes_dropped);
  out += ",\"watchdog_stalls\":" + std::to_string(r.watchdog_stalls);
  out += ",\"max_retries\":" + std::to_string(r.max_retries);
  out +=
      ",\"point_deadline_slots\":" + std::to_string(r.point_deadline_slots);
  if (r.cap_enabled) {
    out += ",\"capped_ok\":" + std::to_string(r.capped_ok);
  }
  out += "}";
  return out;
}

std::string telemetry_worker_to_json(const TelemetryWorkerRow& w) {
  std::string out = "{";
  out += "\"worker\":" + std::to_string(w.worker);
  out += ",\"done\":" + std::to_string(w.done);
  out += ",\"retried\":" + std::to_string(w.retried);
  out += ",\"quarantined\":" + std::to_string(w.quarantined);
  out += ",\"cache_hits\":" + std::to_string(w.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(w.cache_misses);
  out += ",\"hot_dispatches\":" + std::to_string(w.hot_dispatches);
  out += ",\"reference_dispatches\":" +
         std::to_string(w.reference_dispatches);
  if (w.batched_dispatches > 0) {
    out += ",\"batched_dispatches\":" +
           std::to_string(w.batched_dispatches);
  }
  out += ",\"heartbeats\":" + std::to_string(w.heartbeats);
  out += ",\"slots\":" + std::to_string(w.slots);
  if (w.capped_slots > 0) {
    out += ",\"capped_slots\":" + std::to_string(w.capped_slots);
  }
  if (w.audited_slots > 0) {
    out += ",\"audited_slots\":" + std::to_string(w.audited_slots);
    out += ",\"audit_violations\":" + std::to_string(w.audit_violations);
    out += ",\"engine_fallbacks\":" + std::to_string(w.engine_fallbacks);
  }
  out += ",\"busy_s\":" + format_double(w.busy_seconds);
  out += "}";
  return out;
}

std::string telemetry_to_json(const TelemetryReport& t) {
  std::string out = "{";
  out += "\"snapshots\":" + std::to_string(t.snapshots);
  out += ",\"done\":" + std::to_string(t.done);
  out += ",\"retried\":" + std::to_string(t.retried);
  out += ",\"quarantined\":" + std::to_string(t.quarantined);
  out += ",\"cache_hits\":" + std::to_string(t.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(t.cache_misses);
  out += ",\"hot_dispatches\":" + std::to_string(t.hot_dispatches);
  out += ",\"reference_dispatches\":" +
         std::to_string(t.reference_dispatches);
  if (t.batched_dispatches > 0) {
    out += ",\"batched_dispatches\":" +
           std::to_string(t.batched_dispatches);
  }
  out += ",\"heartbeats\":" + std::to_string(t.heartbeats);
  out += ",\"slots\":" + std::to_string(t.slots);
  if (t.capped_slots > 0) {
    out += ",\"capped_slots\":" + std::to_string(t.capped_slots);
  }
  if (t.audited_slots > 0) {
    out += ",\"audited_slots\":" + std::to_string(t.audited_slots);
    out += ",\"audit_violations\":" + std::to_string(t.audit_violations);
    out += ",\"engine_fallbacks\":" + std::to_string(t.engine_fallbacks);
  }
  out += ",\"points_per_s\":" + format_double(t.throughput_points_per_s);
  out += ",\"wall_p50_us\":" + format_double(t.wall_p50_us);
  out += ",\"wall_p95_us\":" + format_double(t.wall_p95_us);
  out += ",\"wall_p99_us\":" + format_double(t.wall_p99_us);
  out += ",\"wall_max_us\":" + format_double(t.wall_max_us);
  out += ",\"worker_skew\":" + format_double(t.worker_skew);
  out += ",\"workers\":[";
  for (std::size_t k = 0; k < t.workers.size(); ++k) {
    if (k != 0) {
      out += ',';
    }
    out += telemetry_worker_to_json(t.workers[k]);
  }
  out += "]}";
  return out;
}

}  // namespace

std::string sweep_bench_to_json(const SweepBenchReport& bench) {
  std::string out = "{";
  out += "\"trace\":\"" + obs::json_escape(bench.trace_name.c_str()) + "\"";
  out += ",\"points\":" + std::to_string(bench.points);
  out += ",\"jobs\":" + std::to_string(bench.jobs);
  out += ",\"wall_s\":" + format_double(bench.wall_seconds);
  out += ",\"points_per_s\":" + format_double(bench.points_per_second);
  out += ",\"cache\":{\"hits\":" + std::to_string(bench.cache_hits) +
         ",\"misses\":" + std::to_string(bench.cache_misses) +
         ",\"hit_rate\":" + format_double(bench.cache_hit_rate) + "}";
  out += ",\"serial_wall_s\":" + format_double(bench.serial_wall_seconds);
  out += ",\"speedup\":" + format_double(bench.speedup);
  out += ",\"bit_identical_to_serial\":" +
         std::to_string(bench.bit_identical_to_serial);
  if (bench.cap_enabled) {
    out += ",\"cap\":{\"capped_slots\":" + std::to_string(bench.capped_slots) +
           ",\"capped_points\":" + std::to_string(bench.capped_points) +
           ",\"violations\":" + std::to_string(bench.cap_violations) +
           ",\"deferred_j\":" + format_double(bench.cap_deferred_j) + "}";
  }
  if (bench.stacks_enabled) {
    out += ",\"stacks\":{\"points\":" + std::to_string(bench.stack_points) +
           ",\"startups\":" + std::to_string(bench.stack_startups) +
           ",\"max_wear\":" + format_exact(bench.stack_max_wear) + "}";
  }
  if (bench.batched_points > 0) {
    out += ",\"batch\":{\"points\":" + std::to_string(bench.batched_points) +
           ",\"merge_sets\":" + std::to_string(bench.batch_merge_sets) +
           ",\"merged_lane_slots\":" +
           std::to_string(bench.batch_merged_lane_slots) +
           ",\"splits\":" + std::to_string(bench.batch_splits) +
           ",\"journal_hits\":" + std::to_string(bench.batch_journal_hits) +
           "}";
  }
  if (bench.audit_enabled) {
    out += ",\"audit\":{\"mode\":\"" +
           obs::json_escape(bench.audit_mode.c_str()) + "\"" +
           ",\"audited_slots\":" + std::to_string(bench.audited_slots) +
           ",\"checks\":" + std::to_string(bench.audit_checks) +
           ",\"violations\":" + std::to_string(bench.audit_violations) +
           ",\"engine_fallbacks\":" + std::to_string(bench.engine_fallbacks) +
           ",\"fallback_points\":" + std::to_string(bench.fallback_points) +
           "}";
  }
  if (bench.resilience.enabled) {
    out += ",\"resilience\":" + resilience_to_json(bench.resilience);
  }
  if (bench.telemetry.enabled) {
    out += ",\"telemetry\":" + telemetry_to_json(bench.telemetry);
  }
  out += ",\"results\":[";
  for (std::size_t k = 0; k < bench.results.size(); ++k) {
    if (k != 0) {
      out += ',';
    }
    out += point_row_to_json(bench.results[k]);
  }
  out += "]}\n";
  return out;
}

void write_sweep_bench_file(const std::string& path,
                            const SweepBenchReport& bench) {
  write_file_atomic(path, sweep_bench_to_json(bench));
}

}  // namespace fcdpm::report
