#include "report/svg_export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "common/contracts.hpp"
#include "common/text.hpp"

namespace fcdpm::report {

namespace {

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 32;
constexpr int kMarginBottom = 48;

const char* stroke_for(std::size_t index) {
  // Color-blind-safe cycle (Okabe-Ito).
  static const char* kStrokes[] = {"#0072B2", "#D55E00", "#009E73",
                                   "#CC79A7", "#E69F00", "#56B4E9"};
  return kStrokes[index % std::size(kStrokes)];
}

struct Frame {
  double x_min, x_max, y_min, y_max;
  int width, height;

  [[nodiscard]] double px(double x) const {
    return kMarginLeft + (x - x_min) / (x_max - x_min) *
                             (width - kMarginLeft - kMarginRight);
  }
  [[nodiscard]] double py(double y) const {
    return height - kMarginBottom -
           (y - y_min) / (y_max - y_min) *
               (height - kMarginTop - kMarginBottom);
  }
};

/// "Nice" tick step covering the span with ~5 ticks.
double nice_step(double span) {
  const double raw = span / 5.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(raw)));
  const double residual = raw / magnitude;
  if (residual < 1.5) {
    return magnitude;
  }
  if (residual < 3.5) {
    return 2.0 * magnitude;
  }
  if (residual < 7.5) {
    return 5.0 * magnitude;
  }
  return 10.0 * magnitude;
}

void emit_frame(std::ostringstream& out, const Frame& frame,
                const SvgOptions& options) {
  out << "<rect x='" << kMarginLeft << "' y='" << kMarginTop
      << "' width='" << frame.width - kMarginLeft - kMarginRight
      << "' height='" << frame.height - kMarginTop - kMarginBottom
      << "' fill='white' stroke='#333'/>\n";

  if (!options.title.empty()) {
    out << "<text x='" << frame.width / 2 << "' y='20' font-size='14' "
           "text-anchor='middle' font-family='sans-serif'>"
        << options.title << "</text>\n";
  }
  out << "<text x='" << frame.width / 2 << "' y='" << frame.height - 10
      << "' font-size='12' text-anchor='middle' "
         "font-family='sans-serif'>"
      << options.x_label << "</text>\n";
  out << "<text x='14' y='" << frame.height / 2
      << "' font-size='12' text-anchor='middle' "
         "font-family='sans-serif' transform='rotate(-90 14 "
      << frame.height / 2 << ")'>" << options.y_label << "</text>\n";

  // Ticks.
  const double x_step = nice_step(frame.x_max - frame.x_min);
  for (double x = std::ceil(frame.x_min / x_step) * x_step;
       x <= frame.x_max + 1e-9; x += x_step) {
    const double px = frame.px(x);
    out << "<line x1='" << px << "' y1='"
        << frame.height - kMarginBottom << "' x2='" << px << "' y2='"
        << frame.height - kMarginBottom + 5 << "' stroke='#333'/>\n";
    out << "<text x='" << px << "' y='"
        << frame.height - kMarginBottom + 18
        << "' font-size='10' text-anchor='middle' "
           "font-family='sans-serif'>"
        << format_fixed(x, 3) << "</text>\n";
  }
  const double y_step = nice_step(frame.y_max - frame.y_min);
  for (double y = std::ceil(frame.y_min / y_step) * y_step;
       y <= frame.y_max + 1e-9; y += y_step) {
    const double py = frame.py(y);
    out << "<line x1='" << kMarginLeft - 5 << "' y1='" << py << "' x2='"
        << kMarginLeft << "' y2='" << py << "' stroke='#333'/>\n";
    out << "<text x='" << kMarginLeft - 8 << "' y='" << py + 3
        << "' font-size='10' text-anchor='end' "
           "font-family='sans-serif'>"
        << format_fixed(y, 3) << "</text>\n";
  }
}

void emit_legend(std::ostringstream& out,
                 const std::vector<std::string>& labels, int width) {
  double y = kMarginTop + 14;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k].empty()) {
      continue;
    }
    const int x = width - kMarginRight - 150;
    out << "<line x1='" << x << "' y1='" << y - 4 << "' x2='" << x + 22
        << "' y2='" << y - 4 << "' stroke='" << stroke_for(k)
        << "' stroke-width='2'/>\n";
    out << "<text x='" << x + 28 << "' y='" << y
        << "' font-size='11' font-family='sans-serif'>" << labels[k]
        << "</text>\n";
    y += 16;
  }
}

std::string document(int width, int height, const std::string& body) {
  std::ostringstream out;
  out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
      << "' height='" << height << "' viewBox='0 0 " << width << ' '
      << height << "'>\n"
      << body << "</svg>\n";
  return out.str();
}

}  // namespace

std::string render_line_svg(const std::vector<SvgSeries>& series,
                            const SvgOptions& options) {
  FCDPM_EXPECTS(!series.empty(), "need at least one series");
  for (const SvgSeries& s : series) {
    FCDPM_EXPECTS(s.xs.size() == s.ys.size(),
                  "series xs/ys sizes must match");
    FCDPM_EXPECTS(s.xs.size() >= 2, "series needs at least two points");
  }

  Frame frame{options.x_min, options.x_max, options.y_min, options.y_max,
              options.width, options.height};
  if (frame.x_min == frame.x_max || frame.y_min == frame.y_max) {
    frame.x_min = frame.y_min = 1e300;
    frame.x_max = frame.y_max = -1e300;
    for (const SvgSeries& s : series) {
      for (const double x : s.xs) {
        frame.x_min = std::min(frame.x_min, x);
        frame.x_max = std::max(frame.x_max, x);
      }
      for (const double y : s.ys) {
        frame.y_min = std::min(frame.y_min, y);
        frame.y_max = std::max(frame.y_max, y);
      }
    }
    if (frame.y_min == frame.y_max) {
      frame.y_max = frame.y_min + 1.0;
    }
  }

  std::ostringstream body;
  emit_frame(body, frame, options);

  std::vector<std::string> labels;
  for (std::size_t k = 0; k < series.size(); ++k) {
    const SvgSeries& s = series[k];
    body << "<polyline fill='none' stroke='" << stroke_for(k)
         << "' stroke-width='1.8' points='";
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      body << frame.px(s.xs[i]) << ',' << frame.py(s.ys[i]) << ' ';
    }
    body << "'/>\n";
    labels.push_back(s.label);
  }
  emit_legend(body, labels, options.width);
  return document(options.width, options.height, body.str());
}

std::string render_step_svg(
    const std::vector<const sim::StepSeries*>& series, Seconds t0,
    Seconds t1, const SvgOptions& options) {
  FCDPM_EXPECTS(!series.empty(), "need at least one series");
  FCDPM_EXPECTS(t0 < t1, "window is empty");

  std::vector<SvgSeries> lines;
  for (const sim::StepSeries* s : series) {
    FCDPM_EXPECTS(s != nullptr, "null series");
    SvgSeries line;
    line.label = s->name();
    const sim::StepSeries window = s->window(t0, t1);
    // Emit explicit step corners: (t, v_prev) then (t, v).
    double previous = window.points().empty()
                          ? 0.0
                          : window.points().front().value;
    for (const sim::StepPoint& p : window.points()) {
      const double t = t0.value() + p.time.value();
      if (!line.xs.empty()) {
        line.xs.push_back(t);
        line.ys.push_back(previous);
      }
      line.xs.push_back(t);
      line.ys.push_back(p.value);
      previous = p.value;
    }
    line.xs.push_back(t1.value());
    line.ys.push_back(previous);
    if (line.xs.size() < 2) {
      line.xs = {t0.value(), t1.value()};
      line.ys = {0.0, 0.0};
    }
    lines.push_back(std::move(line));
  }

  SvgOptions opts = options;
  if (opts.x_min == opts.x_max) {
    opts.x_min = t0.value();
    opts.x_max = t1.value();
  }
  return render_line_svg(lines, opts);
}

void write_svg_file(const std::string& path, const std::string& svg) {
  // Crash-safe: temp + atomic rename, like every other report writer.
  write_file_atomic(path, svg);
}

}  // namespace fcdpm::report
