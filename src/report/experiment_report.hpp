// Markdown report assembly: programmatically regenerate the
// reproduction summary (the tables of EXPERIMENTS.md) from live
// simulation results, so documentation can never drift from the code.
#pragma once

#include <string>
#include <vector>

#include "report/table.hpp"
#include "sim/experiments.hpp"

namespace fcdpm::report {

/// Small markdown document builder.
class ReportBuilder {
 public:
  ReportBuilder& title(const std::string& text);
  ReportBuilder& section(const std::string& text);
  ReportBuilder& paragraph(const std::string& text);
  ReportBuilder& bullet(const std::string& text);
  ReportBuilder& table(const Table& table);

  [[nodiscard]] std::string markdown() const;

 private:
  std::vector<std::string> blocks_;
};

/// Table 2/3-style normalized-fuel table from a policy comparison.
[[nodiscard]] Table comparison_table(const std::string& title,
                                     const sim::PolicyComparison& c);

/// The full reproduction report: runs nothing itself — callers pass the
/// comparisons (tests pass canned results; the generate_report example
/// passes live runs).
[[nodiscard]] std::string reproduction_report(
    const sim::PolicyComparison& experiment1,
    const sim::PolicyComparison& experiment2);

}  // namespace fcdpm::report
