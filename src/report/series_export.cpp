#include "report/series_export.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/contracts.hpp"
#include "common/text.hpp"

namespace fcdpm::report {

std::string series_to_csv(
    const std::vector<const sim::StepSeries*>& series) {
  FCDPM_EXPECTS(!series.empty(), "need at least one series");
  for (const sim::StepSeries* s : series) {
    FCDPM_EXPECTS(s != nullptr, "null series");
  }

  // Union of change points.
  std::set<double> times;
  for (const sim::StepSeries* s : series) {
    for (const sim::StepPoint& p : s->points()) {
      times.insert(p.time.value());
    }
  }

  std::ostringstream out;
  out << "time_s";
  for (const sim::StepSeries* s : series) {
    out << ',' << s->name() << '_' << s->unit();
  }
  out << '\n';

  for (const double t : times) {
    out << format_fixed(t, 6);
    for (const sim::StepSeries* s : series) {
      out << ',' << format_fixed(s->sample(Seconds(t)), 6);
    }
    out << '\n';
  }
  return out.str();
}

std::string ascii_chart(const sim::StepSeries& series, Seconds t0,
                        Seconds t1, double y_max, int width, int height) {
  FCDPM_EXPECTS(t0 < t1, "chart window is empty");
  FCDPM_EXPECTS(y_max > 0.0, "y_max must be positive");
  FCDPM_EXPECTS(width >= 10 && height >= 3, "chart too small");

  // Column c covers time t0 + c * (t1-t0)/width; row r (from the top)
  // covers value band [(height-1-r)/height, (height-r)/height] * y_max.
  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));

  const double span = (t1 - t0).value();
  for (int c = 0; c < width; ++c) {
    const Seconds t = t0 + Seconds(span * c / width);
    const double v = std::clamp(series.sample(t), 0.0, y_max);
    const int level = std::min(
        height - 1, static_cast<int>(v / y_max * height));
    // Fill from the bottom up to `level` for a solid profile look.
    for (int r = 0; r <= level; ++r) {
      const int row = height - 1 - r;
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] =
          (r == level) ? '#' : ':';
    }
  }

  std::ostringstream out;
  out << series.name() << " (" << series.unit() << "), y in [0, "
      << format_fixed(y_max, 3) << "], t in [" << format_fixed(t0.value(), 1)
      << ", " << format_fixed(t1.value(), 1) << "] s\n";
  for (const std::string& row : grid) {
    out << '|' << row << "|\n";
  }
  out << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  return out.str();
}

}  // namespace fcdpm::report
