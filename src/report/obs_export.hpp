// Export of an obs::MetricsRegistry snapshot: CSV (one row per
// instrument, for spreadsheets and the CLI's --metrics-out) and a JSON
// object (for dashboards). The registry itself stays dependency-free;
// serialization lives here with the other report writers.
#pragma once

#include <string>

#include "common/csv.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace fcdpm::report {

/// Columns, in this fixed order: name, type, count, value, min, max,
/// p50, p95, p99. `value` is the counter total / gauge last /
/// histogram mean. Rows are sorted by (type, name) — the ordering is
/// part of the export contract: two registries holding the same
/// instrument values serialize byte-identically regardless of the
/// order the instruments were created or updated in
/// (tests/report/test_obs_export.cpp holds it).
[[nodiscard]] CsvDocument metrics_to_csv(const obs::MetricsRegistry& metrics);

/// `{"metrics":[{"name":...,"type":...,...},...]}`, rows sorted by
/// (type, name) and keys in the same fixed order as the CSV columns —
/// byte-identical output for identical registry contents.
[[nodiscard]] std::string metrics_to_json(const obs::MetricsRegistry& metrics);

/// Write the CSV form to `path` (.json extension switches to JSON).
/// Throws CsvError when the file cannot be created.
void write_metrics_file(const std::string& path,
                        const obs::MetricsRegistry& metrics);

/// CSV of wall-clock profile scopes: name, calls, total_ms, mean_us,
/// min_us, max_us; longest total first.
[[nodiscard]] CsvDocument profile_to_csv(const obs::Profiler& profiler);

}  // namespace fcdpm::report
