// Machine-readable sweep benchmark report (BENCH_sweep.json): the perf
// trajectory's first artifact. Plain data in, one JSON object out — the
// report layer stays independent of fcdpm::par and fcdpm::resilience;
// the CLI fills this from par::SweepRunStats / resilience stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fcdpm::report {

/// One grid point's deterministic outcome. Doubles are serialized with
/// 17 significant digits, which round-trips IEEE binary64 exactly, so
/// two runs producing bitwise-equal results emit byte-equal rows.
struct SweepPointRow {
  std::string policy;
  double rho = 0.0;
  double capacity = 0.0;
  std::uint64_t storm_seed = 0;
  bool ok = true;
  /// Typed PointError kind for quarantined points; empty when ok.
  std::string error;
  std::size_t attempts = 1;
  /// Restored from a journal instead of re-simulated this run.
  bool replayed = false;
  double fuel = 0.0;
  double bled = 0.0;
  double unserved = 0.0;
  double duration = 0.0;
  double storage_end = 0.0;
  double latency = 0.0;
  std::size_t slots = 0;
  std::size_t sleeps = 0;
  /// Cap-governor fields; serialized only when `cap_enabled` so cap-off
  /// reports stay byte-identical to pre-cap builds.
  bool cap_enabled = false;
  std::size_t capped_slots = 0;
  std::size_t cap_violations = 0;
  double cap_deferred_j = 0.0;
  double cap_deferred_s = 0.0;
  /// Multi-stack fields; serialized only when `stacks_enabled` so
  /// single-stack reports stay byte-identical to pre-stacks builds.
  bool stacks_enabled = false;
  std::size_t stacks = 0;
  std::string distribution;
  std::size_t stack_startups = 0;
  double stack_max_wear = 0.0;
  std::vector<double> stack_fuel;  ///< per-stack fuel A-s
  /// Runtime-audit fields; serialized only when `audit_enabled` so
  /// audit-off reports stay byte-identical to pre-audit builds.
  bool audit_enabled = false;
  std::uint64_t audit_slots = 0;       ///< slots the auditor sampled
  std::uint64_t audit_checks = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t engine_fallbacks = 0;  ///< hot runs self-healed
  std::string audit_first;             ///< first violated check; empty = clean
};

/// Fault-tolerant execution accounting (`SweepReport::resilience`);
/// emitted only when the resilient runner was engaged.
struct SweepResilienceReport {
  bool enabled = false;
  std::size_t scheduled = 0;   ///< points simulated this run
  std::size_t replayed = 0;    ///< points restored from the journal
  std::size_t retries = 0;     ///< extra attempts beyond the first
  std::size_t quarantined = 0;
  std::size_t rounds = 0;      ///< scheduling rounds (retry backoff)
  std::size_t spot_checks = 0; ///< journal points re-verified bitwise
  bool torn_tail_recovered = false;
  std::size_t torn_bytes_dropped = 0;
  std::uint64_t watchdog_stalls = 0;
  std::size_t max_retries = 0;
  std::size_t point_deadline_slots = 0;
  /// Emit `capped_ok` (below) — true only when the cap governor ran.
  bool cap_enabled = false;
  std::size_t capped_ok = 0;  ///< ok points the governor throttled
};

/// One worker's telemetry totals (`TelemetryReport::workers`).
struct TelemetryWorkerRow {
  std::size_t worker = 0;
  std::uint64_t done = 0;
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_dispatches = 0;
  std::uint64_t reference_dispatches = 0;
  /// Batch-lane dispatches; serialized only when nonzero.
  std::uint64_t batched_dispatches = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t slots = 0;
  /// Governor-throttled slots; serialized only when nonzero (cap-off
  /// telemetry stays byte-identical).
  std::uint64_t capped_slots = 0;
  /// Audit counters; serialized only when audited_slots is nonzero.
  std::uint64_t audited_slots = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t engine_fallbacks = 0;
  double busy_seconds = 0.0;
};

/// Final telemetry snapshot of the sweep (`SweepBenchReport::telemetry`);
/// emitted only when the CLI ran with telemetry attached. Plain data —
/// the report layer stays independent of fcdpm::telemetry; the CLI
/// copies the final SweepSnapshot in.
struct TelemetryReport {
  bool enabled = false;
  std::uint64_t snapshots = 0;  ///< progress snapshots emitted (sampler+final)
  std::uint64_t done = 0;
  std::uint64_t retried = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_dispatches = 0;
  std::uint64_t reference_dispatches = 0;
  std::uint64_t batched_dispatches = 0;  ///< serialized only when nonzero
  std::uint64_t heartbeats = 0;
  std::uint64_t slots = 0;
  std::uint64_t capped_slots = 0;  ///< serialized only when nonzero
  /// Audit counters; serialized only when audited_slots is nonzero.
  std::uint64_t audited_slots = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t engine_fallbacks = 0;
  double throughput_points_per_s = 0.0;
  double wall_p50_us = 0.0;
  double wall_p95_us = 0.0;
  double wall_p99_us = 0.0;
  double wall_max_us = 0.0;
  double worker_skew = 0.0;
  std::vector<TelemetryWorkerRow> workers;
};

struct SweepBenchReport {
  std::string trace_name;
  std::size_t points = 0;
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  double points_per_second = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Wall-clock of the single-job reference run; 0 when none was taken.
  double serial_wall_seconds = 0.0;
  /// serial_wall_seconds / wall_seconds; 0 when no reference run.
  double speedup = 0.0;
  /// -1 = not checked, 0 = results diverged, 1 = bit-identical.
  int bit_identical_to_serial = -1;
  /// Sweep-level cap-governor rollup (`"cap":{...}`); emitted only when
  /// `cap_enabled` so cap-off reports keep their pre-cap bytes.
  bool cap_enabled = false;
  std::uint64_t capped_slots = 0;   ///< throttled slots across all points
  std::size_t capped_points = 0;    ///< ok points with >=1 capped slot
  std::uint64_t cap_violations = 0; ///< budget violations (zero by invariant)
  double cap_deferred_j = 0.0;      ///< total energy pushed past its slot
  /// Sweep-level multi-stack rollup (`"stacks":{...}`); emitted only
  /// when `stacks_enabled` so single-stack reports keep their bytes.
  bool stacks_enabled = false;
  std::size_t stack_points = 0;       ///< ok points run multi-stack
  std::uint64_t stack_startups = 0;   ///< per-stack startups, all points
  double stack_max_wear = 0.0;        ///< worst final wear seen
  /// Sweep-level batched-engine rollup (`"batch":{...}`); emitted only
  /// when `batched_points > 0` so non-batched reports keep their bytes.
  std::size_t batched_points = 0;   ///< points run inside batch tasks
  std::size_t batch_merge_sets = 0; ///< merge sets formed across tasks
  std::size_t batch_merged_lane_slots = 0;  ///< follower slots off leaders
  std::size_t batch_splits = 0;     ///< followers replayed onto own lanes
  std::uint64_t batch_journal_hits = 0;  ///< journal-served follower solves
  /// Sweep-level runtime-audit rollup (`"audit":{...}`); emitted only
  /// when `audit_enabled` so audit-off reports keep their bytes.
  bool audit_enabled = false;
  std::string audit_mode;              ///< "sample" | "strict"
  std::uint64_t audited_slots = 0;     ///< slots sampled across all points
  std::uint64_t audit_checks = 0;      ///< invariant checks evaluated
  std::uint64_t audit_violations = 0;  ///< checks that failed
  std::uint64_t engine_fallbacks = 0;  ///< hot runs replayed on reference
  std::size_t fallback_points = 0;     ///< ok points that self-healed
  /// Per-point deterministic results, grid order.
  std::vector<SweepPointRow> results;
  SweepResilienceReport resilience;
  TelemetryReport telemetry;
};

/// One JSON object, newline-terminated.
[[nodiscard]] std::string sweep_bench_to_json(const SweepBenchReport& bench);

/// Write the JSON form to `path` via temp file + atomic rename (a
/// killed run never leaves a truncated artifact). Throws CsvError when
/// the file cannot be created (same error channel as the other report
/// writers).
void write_sweep_bench_file(const std::string& path,
                            const SweepBenchReport& bench);

}  // namespace fcdpm::report
