// Machine-readable sweep benchmark report (BENCH_sweep.json): the perf
// trajectory's first artifact. Plain data in, one JSON object out — the
// report layer stays independent of fcdpm::par; the CLI fills this from
// par::SweepRunStats.
#pragma once

#include <cstdint>
#include <string>

namespace fcdpm::report {

struct SweepBenchReport {
  std::string trace_name;
  std::size_t points = 0;
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  double points_per_second = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  /// Wall-clock of the single-job reference run; 0 when none was taken.
  double serial_wall_seconds = 0.0;
  /// serial_wall_seconds / wall_seconds; 0 when no reference run.
  double speedup = 0.0;
  /// -1 = not checked, 0 = results diverged, 1 = bit-identical.
  int bit_identical_to_serial = -1;
};

/// One JSON object, newline-terminated.
[[nodiscard]] std::string sweep_bench_to_json(const SweepBenchReport& bench);

/// Write the JSON form to `path`. Throws CsvError when the file cannot
/// be created (same error channel as the other report writers).
void write_sweep_bench_file(const std::string& path,
                            const SweepBenchReport& bench);

}  // namespace fcdpm::report
