#include "resilience/watchdog.hpp"

#include "common/contracts.hpp"

namespace fcdpm::resilience {

Watchdog::Watchdog(std::size_t workers, WatchdogConfig config)
    : config_(config) {
  FCDPM_EXPECTS(workers > 0, "watchdog needs at least one worker slot");
  FCDPM_EXPECTS(config_.poll.count() > 0, "watchdog poll must be positive");
  FCDPM_EXPECTS(config_.stall_after.count() > 0,
                "watchdog stall window must be positive");
  slots_.reserve(workers);
  for (std::size_t k = 0; k < workers; ++k) {
    slots_.push_back(std::make_unique<Slot>());
  }
  thread_ = std::thread([this] { poll_loop(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::begin_work(std::size_t worker,
                          sim::CancellationToken* token) {
  FCDPM_EXPECTS(worker < slots_.size(), "watchdog worker index out of range");
  FCDPM_EXPECTS(token != nullptr, "watchdog needs a token to watch");
  Slot& slot = *slots_[worker];
  const std::lock_guard lock(slot.mutex);
  slot.token = token;
  slot.last_beat = token->heartbeat();
  slot.last_advance = std::chrono::steady_clock::now();
  slot.stalled = false;
}

void Watchdog::end_work(std::size_t worker) {
  FCDPM_EXPECTS(worker < slots_.size(), "watchdog worker index out of range");
  Slot& slot = *slots_[worker];
  const std::lock_guard lock(slot.mutex);
  slot.token = nullptr;
}

void Watchdog::poll_loop() {
  std::unique_lock stop_lock(stop_mutex_);
  while (!stopping_) {
    // Waiting on the condition variable keeps shutdown prompt: stop()
    // wakes the poll immediately instead of sleeping out the interval.
    stop_cv_.wait_for(stop_lock, config_.poll,
                      [this] { return stopping_; });
    if (stopping_) {
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (const std::unique_ptr<Slot>& owned : slots_) {
      Slot& slot = *owned;
      const std::lock_guard lock(slot.mutex);
      if (slot.token == nullptr || slot.stalled) {
        continue;
      }
      const std::uint64_t beat = slot.token->heartbeat();
      if (beat != slot.last_beat) {
        slot.last_beat = beat;
        slot.last_advance = now;
        continue;
      }
      if (now - slot.last_advance >= config_.stall_after) {
        slot.stalled = true;
        stalls_.fetch_add(1, std::memory_order_acq_rel);
        if (config_.cancel_on_stall) {
          slot.token->cancel();
        }
      }
    }
  }
}

void Watchdog::stop() {
  {
    const std::lock_guard lock(stop_mutex_);
    if (stopping_ && !thread_.joinable()) {
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace fcdpm::resilience
