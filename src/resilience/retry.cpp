#include "resilience/retry.hpp"

#include <cmath>
#include <string>

#include "audit/audit.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "core/slot_optimizer.hpp"

namespace fcdpm::resilience {

namespace {

/// splitmix64 finalizer: the standard cheap bijective mixer.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool finite_result(const sim::SimulationResult& r) noexcept {
  return std::isfinite(r.totals.fuel.value()) &&
         std::isfinite(r.totals.duration.value()) &&
         std::isfinite(r.totals.bled.value()) &&
         std::isfinite(r.totals.unserved.value()) &&
         std::isfinite(r.storage_end.value()) &&
         std::isfinite(r.latency_added.value());
}

}  // namespace

const char* to_string(PointErrorKind kind) noexcept {
  switch (kind) {
    case PointErrorKind::solver_diverged:
      return "solver_diverged";
    case PointErrorKind::non_finite_result:
      return "non_finite_result";
    case PointErrorKind::deadline_exceeded:
      return "deadline_exceeded";
    case PointErrorKind::contract_violation:
      return "contract_violation";
    case PointErrorKind::io_error:
      return "io_error";
    case PointErrorKind::power_undeliverable:
      return "power_undeliverable";
  }
  return "?";
}

std::size_t backoff_delay_rounds(std::uint64_t seed,
                                 std::size_t point_index,
                                 std::size_t attempt,
                                 std::size_t max_exponent) noexcept {
  const std::size_t exponent =
      attempt < max_exponent ? attempt : max_exponent;
  const std::size_t window = std::size_t{1} << exponent;
  const std::uint64_t draw =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(point_index) * 2654435761u
                         + attempt));
  return 1 + static_cast<std::size_t>(draw % window);
}

PointOutcome execute_point(const sim::ExperimentConfig& base,
                           const par::SweepPoint& point,
                           std::size_t point_index,
                           std::size_t storm_faults,
                           core::SlotSolveCache* cache,
                           const ExecutionContract& contract,
                           sim::CancellationToken* cancel) {
  PointOutcome out;
  if (point_index == contract.inject_fail_index) {
    out.error = {PointErrorKind::solver_diverged,
                 "injected permanent failure (test hook)"};
    return out;
  }
  try {
    out.result = par::run_point(base, point, storm_faults, cache, cancel,
                                contract.point_deadline_slots);
  } catch (const sim::DeadlineExceededError& error) {
    out.error = {PointErrorKind::deadline_exceeded, error.what()};
    return out;
  } catch (const sim::CancelledError& error) {
    // Cancellation reaches a point only through the watchdog declaring
    // it hung — same taxonomy bucket as a blown deadline.
    out.error = {PointErrorKind::deadline_exceeded, error.what()};
    return out;
  } catch (const CsvError& error) {
    out.error = {PointErrorKind::io_error, error.what()};
    return out;
  } catch (const PreconditionError& error) {
    out.error = {PointErrorKind::contract_violation, error.what()};
    return out;
  } catch (const InvariantError& error) {
    out.error = {PointErrorKind::contract_violation, error.what()};
    return out;
  } catch (const audit::AuditError& error) {
    // Only reference-engine strict violations escape run_point (hot-lane
    // violations self-heal onto the reference engine inside it); there
    // is no healthier engine to heal onto, so the point quarantines
    // under the contract taxonomy.
    out.error = {PointErrorKind::contract_violation,
                 std::string("audit: ") + error.what()};
    return out;
  } catch (const std::exception& error) {
    out.error = {PointErrorKind::contract_violation, error.what()};
    return out;
  }

  if (!finite_result(out.result.result)) {
    out.error = {PointErrorKind::non_finite_result,
                 "non-finite value in observable result"};
    return out;
  }
  if (out.result.result.robustness.has_value() &&
      out.result.result.robustness->solver_failures >
          contract.solver_failure_budget) {
    // core::classify(SolveStatus) buckets these as Numeric failures;
    // past the contract's budget the point counts as diverged.
    out.error = {
        PointErrorKind::solver_diverged,
        std::to_string(out.result.result.robustness->solver_failures) +
            " solver failures exceed budget of " +
            std::to_string(contract.solver_failure_budget) + " (" +
            core::to_string(core::SolveFailureKind::Numeric) + ")"};
    return out;
  }
  if (out.result.result.totals.unserved.value() >
      contract.unserved_budget_as) {
    out.error = {
        PointErrorKind::power_undeliverable,
        "unserved charge " +
            std::to_string(out.result.result.totals.unserved.value()) +
            " A-s exceeds budget of " +
            std::to_string(contract.unserved_budget_as) + " A-s"};
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace fcdpm::resilience
