// Crash-safe append-only result journal for sweep execution.
//
// Layout of a journal file:
//
//   <header JSON>\n                 -- written via temp + atomic rename
//   R <len:8 hex> <fnv64:16 hex> <payload JSON>\n    -- appended, fsync'd
//   R ...
//
// The header lands atomically before any record, so a journal is never
// observed half-created. Each record is one length-prefixed, checksummed
// JSONL line describing one completed grid point (ok result or typed
// quarantine error); the writer fsyncs after every append, so at most
// the record being written when the process dies can be torn. The
// loader verifies prefix, length, checksum and terminator record by
// record and *truncates* a torn tail instead of failing: a SIGKILL'd
// sweep resumes from exactly the points that fully committed.
//
// Doubles round-trip bit-exactly: they are serialized as C99 hexfloats
// ("0x1.9a6p+9") inside JSON strings.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "par/sweep.hpp"
#include "resilience/retry.hpp"
#include "sim/metrics.hpp"

namespace fcdpm::resilience {

/// Identity of the sweep a journal belongs to. The fingerprint hashes
/// the base config's observable inputs (trace contents, predictor
/// seeds, initial storage) and every grid point, so resuming with a
/// different grid or workload is rejected instead of silently merging
/// incompatible results.
struct JournalHeader {
  std::string trace_name;
  std::size_t points = 0;
  std::uint64_t fingerprint = 0;
};

/// One journaled grid point. `ok` records carry the observable result
/// fields (everything the sweep table, BENCH export and bit-identity
/// checks read); failed records carry the typed error instead.
struct JournalRecord {
  std::size_t index = 0;  ///< grid index (grid order is canonical)
  par::SweepPoint point;
  std::size_t attempts = 1;
  bool ok = true;
  PointError error;            ///< valid when !ok
  sim::SimulationResult result;  ///< observable fields only, when ok
};

/// Fingerprint of (base config, grid points, storm size);
/// order-sensitive over the points.
[[nodiscard]] std::uint64_t grid_fingerprint(
    const sim::ExperimentConfig& base,
    const std::vector<par::SweepPoint>& points, std::size_t storm_faults);

/// Append-only journal writer. Thread-safe: workers append completed
/// points concurrently; each append is serialized and fsync'd.
class Journal {
 public:
  /// Create a fresh journal at `path`: the header is staged in a temp
  /// file and atomically renamed into place, then the file is opened
  /// for record appends. Throws CsvError on I/O failure.
  [[nodiscard]] static Journal create(const std::string& path,
                                      const JournalHeader& header);

  /// Open an existing journal for appending (resume). The caller is
  /// expected to have load_journal()'d it first; a torn tail found
  /// there is physically truncated here before appending.
  [[nodiscard]] static Journal open_for_append(const std::string& path,
                                               std::size_t valid_bytes);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Serialize, length-prefix, checksum, append, fsync. Thread-safe.
  void append(const JournalRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  Journal(std::string path, int fd);

  void write_all(const std::string& bytes);

  std::string path_;
  int fd_ = -1;
  /// Serializes appends from worker threads (heap-held so the journal
  /// stays movable).
  std::unique_ptr<std::mutex> mutex_;
};

/// Result of loading a journal.
struct JournalLoad {
  JournalHeader header;
  std::vector<JournalRecord> records;  ///< valid records, file order
  bool torn_tail = false;   ///< trailing partial/corrupt record dropped
  std::size_t dropped_bytes = 0;  ///< bytes past the last valid record
  std::size_t valid_bytes = 0;    ///< offset of the first dropped byte
};

/// Load a journal, recovering from a torn tail (see file comment).
/// Throws CsvError when the file is missing or the header itself is
/// unreadable (a journal without a committed header never held data).
[[nodiscard]] JournalLoad load_journal(const std::string& path);

/// Serialization of one record (exposed for tests; the exact bytes
/// `append` writes, minus prefix/checksum framing).
[[nodiscard]] std::string record_to_json(const JournalRecord& record);

}  // namespace fcdpm::resilience
