#include "resilience/resilient_sweep.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "cap/stats.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "par/worker_pool.hpp"
#include "resilience/journal.hpp"
#include "resilience/watchdog.hpp"
#include "telemetry/sweep_telemetry.hpp"

namespace fcdpm::resilience {

namespace {

bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_point(const par::SweepPoint& a, const par::SweepPoint& b) noexcept {
  return a.policy == b.policy && same_bits(a.rho, b.rho) &&
         same_bits(a.capacity.value(), b.capacity.value()) &&
         a.storm_seed == b.storm_seed;
}

/// Bitwise equality over the journaled cap-governor block (absent on
/// cap-off runs; both sides must agree it is absent).
bool same_cap(const std::optional<cap::CapStats>& a,
              const std::optional<cap::CapStats>& b) {
  if (a.has_value() != b.has_value()) {
    return false;
  }
  if (!a.has_value()) {
    return true;
  }
  if (a->slots_seen != b->slots_seen ||
      a->slots_capped != b->slots_capped ||
      a->level_reductions != b->level_reductions ||
      a->level_restorations != b->level_restorations ||
      a->budget_violations != b->budget_violations ||
      !same_bits(a->energy_deferred.value(), b->energy_deferred.value()) ||
      !same_bits(a->time_deferred.value(), b->time_deferred.value()) ||
      a->time_at_level_s.size() != b->time_at_level_s.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a->time_at_level_s.size(); ++k) {
    if (!same_bits(a->time_at_level_s[k], b->time_at_level_s[k])) {
      return false;
    }
  }
  return true;
}

/// Equality over the journaled audit block (absent on audit-off runs;
/// both sides must agree it is absent). Counters are exact integers,
/// so this is also bitwise.
bool same_audit(const std::optional<audit::AuditStats>& a,
                const std::optional<audit::AuditStats>& b) {
  if (a.has_value() != b.has_value()) {
    return false;
  }
  if (!a.has_value()) {
    return true;
  }
  return a->mode == b->mode && a->slots_audited == b->slots_audited &&
         a->segments_audited == b->segments_audited &&
         a->checks_run == b->checks_run && a->violations == b->violations &&
         a->fuel_violations == b->fuel_violations &&
         a->storage_violations == b->storage_violations &&
         a->cap_violations == b->cap_violations &&
         a->stacks_violations == b->stacks_violations &&
         a->cache_violations == b->cache_violations &&
         a->engine_fallbacks == b->engine_fallbacks &&
         a->first_violation_slot == b->first_violation_slot &&
         a->first_violation == b->first_violation;
}

/// Bitwise equality over every observable (journaled) result field.
bool same_observable(const sim::SimulationResult& a,
                     const sim::SimulationResult& b) {
  return a.trace_name == b.trace_name && a.dpm_policy == b.dpm_policy &&
         a.fc_policy == b.fc_policy &&
         same_bits(a.totals.fuel.value(), b.totals.fuel.value()) &&
         same_bits(a.totals.delivered_energy.value(),
                   b.totals.delivered_energy.value()) &&
         same_bits(a.totals.load_energy.value(),
                   b.totals.load_energy.value()) &&
         same_bits(a.totals.bled.value(), b.totals.bled.value()) &&
         same_bits(a.totals.unserved.value(), b.totals.unserved.value()) &&
         same_bits(a.totals.duration.value(), b.totals.duration.value()) &&
         a.slots == b.slots && a.sleeps == b.sleeps &&
         same_bits(a.latency_added.value(), b.latency_added.value()) &&
         same_bits(a.storage_initial.value(), b.storage_initial.value()) &&
         same_bits(a.storage_end.value(), b.storage_end.value()) &&
         same_bits(a.storage_min.value(), b.storage_min.value()) &&
         same_bits(a.storage_max.value(), b.storage_max.value()) &&
         same_cap(a.cap, b.cap) && same_audit(a.audit, b.audit);
}

/// One scheduled unit of work: a grid point and which attempt this is.
struct BatchItem {
  std::size_t index = 0;
  std::size_t attempt = 1;
};

}  // namespace

ResilientSweepResult run_resilient_sweep(const sim::ExperimentConfig& base,
                                         const par::SweepGrid& grid,
                                         const ResilienceOptions& options) {
  const std::vector<par::SweepPoint> points = grid.points(base);
  const std::uint64_t fingerprint =
      grid_fingerprint(base, points, grid.storm_faults);
  const std::size_t max_attempts = 1 + options.contract.max_retries;

  ResilientSweepResult out;
  out.points.resize(points.size());
  out.stats.points = points.size();

  // --- resume: replay the journal, schedule only the remainder --------
  std::size_t journal_valid_bytes = 0;
  if (options.resume) {
    FCDPM_EXPECTS(!options.journal_path.empty(),
                  "--resume requires a journal path");
    const JournalLoad load = load_journal(options.journal_path);
    if (load.header.fingerprint != fingerprint ||
        load.header.points != points.size()) {
      throw CsvError("journal does not match this sweep (grid fingerprint "
                     "mismatch): " +
                     options.journal_path);
    }
    out.resilience.torn_tail_recovered = load.torn_tail;
    out.resilience.torn_bytes_dropped = load.dropped_bytes;
    journal_valid_bytes = load.valid_bytes;
    for (const JournalRecord& record : load.records) {
      if (record.index >= points.size() ||
          !same_point(record.point, points[record.index])) {
        throw CsvError("journal record does not match grid point " +
                       std::to_string(record.index) + ": " +
                       options.journal_path);
      }
      ResilientPoint& slot = out.points[record.index];
      slot.replayed = true;
      slot.attempts = record.attempts;
      slot.ok = record.ok;
      slot.result.point = points[record.index];
      if (record.ok) {
        slot.result.result = record.result;
      } else {
        slot.error = record.error;
      }
      ++out.resilience.replayed;
    }

    // Spot-check: re-simulate a deterministic sample of the replayed
    // points and hold the journal to bit-identity. Catches a journal
    // from a different build or a tampered record that still checksums.
    std::vector<std::size_t> replayed_ok;
    for (std::size_t k = 0; k < out.points.size(); ++k) {
      if (out.points[k].replayed && out.points[k].ok) {
        replayed_ok.push_back(k);
      }
    }
    const std::size_t checks =
        std::min(options.spot_checks, replayed_ok.size());
    for (std::size_t c = 0; c < checks; ++c) {
      const std::size_t k =
          replayed_ok[c * replayed_ok.size() / checks];  // evenly spaced
      const par::SweepPointResult fresh = par::run_point(
          base, points[k], grid.storm_faults, options.cache);
      if (!same_observable(fresh.result, out.points[k].result.result)) {
        throw CsvError("journal spot-check failed at grid point " +
                       std::to_string(k) +
                       ": replayed result is not bit-identical to "
                       "re-simulation: " +
                       options.journal_path);
      }
      ++out.resilience.spot_checks;
    }
  }

  // --- journal writer --------------------------------------------------
  std::optional<Journal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      journal.emplace(Journal::open_for_append(options.journal_path,
                                               journal_valid_bytes));
    } else {
      journal.emplace(Journal::create(
          options.journal_path,
          {base.trace.name(), points.size(), fingerprint}));
    }
  }

  // --- round-based schedule -------------------------------------------
  std::map<std::size_t, std::vector<std::size_t>> schedule;
  for (std::size_t k = 0; k < points.size(); ++k) {
    if (!out.points[k].replayed) {
      schedule[0].push_back(k);
      ++out.resilience.scheduled;
    }
  }

  const std::uint64_t hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;
  std::vector<std::size_t> attempts(points.size(), 0);

  const auto started = std::chrono::steady_clock::now();
  {
    par::WorkerPool pool(options.jobs);
    out.stats.jobs = pool.thread_count();

    std::vector<sim::CancellationToken> tokens(pool.thread_count());
    std::optional<Watchdog> watchdog;
    if (options.watchdog_stall.count() > 0) {
      watchdog.emplace(pool.thread_count(),
                       WatchdogConfig{options.watchdog_poll,
                                      options.watchdog_stall, true});
    }

    while (!schedule.empty()) {
      const auto head = schedule.begin();
      const std::size_t round = head->first;
      const std::vector<std::size_t> indices = std::move(head->second);
      schedule.erase(head);
      ++out.resilience.rounds;

      std::vector<BatchItem> batch;
      batch.reserve(indices.size());
      for (const std::size_t k : indices) {
        batch.push_back({k, attempts[k] + 1});
      }
      std::vector<PointOutcome> outcomes(batch.size());

      pool.run_indexed_on_workers(
          batch.size(), [&](std::size_t worker, std::size_t j) {
            const BatchItem item = batch[j];
            sim::CancellationToken& token = tokens[worker];
            token.reset();
            if (watchdog.has_value()) {
              watchdog->begin_work(worker, &token);
            }
            telemetry::SweepTelemetry* tel = options.telemetry;
            // Per-worker cache tap: attributes this attempt's traffic
            // to this worker's shard without touching the shared
            // counters' meaning (they still total everything).
            std::optional<par::SolveCacheTap> tap;
            if (tel != nullptr && options.cache != nullptr) {
              tap.emplace(*options.cache);
            }
            core::SlotSolveCache* attempt_cache =
                tap.has_value()
                    ? static_cast<core::SlotSolveCache*>(&*tap)
                    : static_cast<core::SlotSolveCache*>(options.cache);
            const std::uint64_t t0 = tel != nullptr ? tel->now_ns() : 0;
            outcomes[j] = execute_point(base, points[item.index],
                                        item.index, grid.storm_faults,
                                        attempt_cache, options.contract,
                                        &token);
            if (watchdog.has_value()) {
              watchdog->end_work(worker);
            }
            if (tel != nullptr) {
              const std::uint64_t t1 = tel->now_ns();
              telemetry::WorkerShard& shard = tel->shards().shard(worker);
              const PointOutcome& outcome = outcomes[j];
              const bool final_attempt = item.attempt >= max_attempts;
              if (outcome.ok) {
                shard.points_done.fetch_add(1, std::memory_order_relaxed);
              } else if (final_attempt) {
                shard.points_quarantined.fetch_add(1,
                                                   std::memory_order_relaxed);
              } else {
                shard.points_retried.fetch_add(1, std::memory_order_relaxed);
              }
              shard.busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
              // Heartbeats accumulated by this attempt's run (the token
              // is reset per attempt, so this is exactly one attempt's
              // slot beats).
              shard.heartbeats.fetch_add(token.heartbeat(),
                                         std::memory_order_relaxed);
              std::uint64_t point_hits = 0;
              std::uint64_t point_misses = 0;
              if (tap.has_value()) {
                point_hits = tap->hits();
                point_misses = tap->misses();
                shard.cache_hits.fetch_add(point_hits,
                                           std::memory_order_relaxed);
                shard.cache_misses.fetch_add(point_misses,
                                             std::memory_order_relaxed);
              }
              shard.wall_us.observe(static_cast<double>(t1 - t0) * 1e-3);
              if (outcome.ok) {
                // A failed attempt has no trustworthy result fields.
                shard.slots.fetch_add(outcome.result.result.slots,
                                      std::memory_order_relaxed);
                if (outcome.result.result.cap.has_value()) {
                  shard.capped_slots.fetch_add(
                      outcome.result.result.cap->slots_capped,
                      std::memory_order_relaxed);
                }
                if (outcome.result.result.audit.has_value()) {
                  const audit::AuditStats& a = *outcome.result.result.audit;
                  shard.audited_slots.fetch_add(a.slots_audited,
                                                std::memory_order_relaxed);
                  shard.audit_violations.fetch_add(
                      a.violations, std::memory_order_relaxed);
                  shard.engine_fallbacks.fetch_add(
                      a.engine_fallbacks, std::memory_order_relaxed);
                }
                shard.sim_s.observe(
                    outcome.result.result.totals.duration.value());
                if (outcome.result.ran_batched) {
                  shard.batched_dispatches.fetch_add(
                      1, std::memory_order_relaxed);
                } else if (outcome.result.ran_hot) {
                  shard.hot_dispatches.fetch_add(1,
                                                 std::memory_order_relaxed);
                } else {
                  shard.reference_dispatches.fetch_add(
                      1, std::memory_order_relaxed);
                }
              }
              if (telemetry::LaneRecorder* lanes = tel->lanes()) {
                telemetry::PointLane lane;
                lane.start_ns = t0;
                lane.end_ns = t1;
                lane.point_index = static_cast<std::uint32_t>(item.index);
                lane.attempt = static_cast<std::uint32_t>(item.attempt);
                lane.cache_hits = static_cast<std::uint32_t>(point_hits);
                lane.cache_misses = static_cast<std::uint32_t>(point_misses);
                lane.ok = outcome.ok;
                lane.quarantined = !outcome.ok && final_attempt;
                lane.hot = outcome.ok && outcome.result.ran_hot;
                lanes->record(worker, lane);
              }
            }
            // Journal a committed outcome immediately (ok, or the final
            // failed attempt): the record is fsync'd before any later
            // work depends on it, so a crash can only lose in-flight
            // points, never a completed one.
            if (journal.has_value() &&
                (outcomes[j].ok || item.attempt >= max_attempts)) {
              JournalRecord record;
              record.index = item.index;
              record.point = points[item.index];
              record.attempts = item.attempt;
              record.ok = outcomes[j].ok;
              if (outcomes[j].ok) {
                record.result = outcomes[j].result.result;
              } else {
                record.error = outcomes[j].error;
              }
              journal->append(record);
            }
          });

      // Serial post-pass in batch order: deterministic retry schedule.
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const BatchItem item = batch[j];
        attempts[item.index] = item.attempt;
        ResilientPoint& slot = out.points[item.index];
        slot.attempts = item.attempt;
        if (outcomes[j].ok) {
          slot.ok = true;
          slot.result = std::move(outcomes[j].result);
          continue;
        }
        if (item.attempt < max_attempts) {
          const std::size_t delay = backoff_delay_rounds(
              options.contract.backoff_seed, item.index, item.attempt,
              options.contract.max_backoff_exponent);
          schedule[round + delay].push_back(item.index);
          ++out.resilience.retries;
          continue;
        }
        slot.ok = false;
        slot.result.point = points[item.index];
        slot.error = std::move(outcomes[j].error);
      }
    }

    if (watchdog.has_value()) {
      watchdog->stop();
      out.resilience.watchdog_stalls = watchdog->stalls_detected();
    }
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  for (const ResilientPoint& point : out.points) {
    if (!point.ok) {
      ++out.resilience.quarantined;
    } else if (point.result.result.cap.has_value() &&
               point.result.result.cap->slots_capped > 0) {
      // Points that survived only by throttling — the governor's
      // headline number for brownout reports.
      ++out.resilience.capped_ok;
    }
  }

  if (options.cache != nullptr) {
    out.stats.cache_hits = options.cache->hits() - hits_before;
    out.stats.cache_misses = options.cache->misses() - misses_before;
  }

  if (options.observer != nullptr && options.observer->active()) {
    obs::Context& obs = *options.observer;
    // Shared end-of-sweep publication (par.sweep.* + par.cache.*): one
    // site for both runners, so the cache gauges always equal the
    // cache's own counters at sweep end.
    par::publish_sweep_stats(obs, out.stats, options.cache);
    obs.gauge("resilience.scheduled",
              static_cast<double>(out.resilience.scheduled));
    obs.gauge("resilience.replayed",
              static_cast<double>(out.resilience.replayed));
    obs.gauge("resilience.retries",
              static_cast<double>(out.resilience.retries));
    obs.gauge("resilience.quarantined",
              static_cast<double>(out.resilience.quarantined));
    obs.gauge("resilience.capped_ok",
              static_cast<double>(out.resilience.capped_ok));
    obs.gauge("resilience.rounds",
              static_cast<double>(out.resilience.rounds));
    obs.gauge("resilience.spot_checks",
              static_cast<double>(out.resilience.spot_checks));
    obs.gauge("resilience.watchdog_stalls",
              static_cast<double>(out.resilience.watchdog_stalls));
    obs.gauge("resilience.torn_bytes_dropped",
              static_cast<double>(out.resilience.torn_bytes_dropped));
  }
  return out;
}

}  // namespace fcdpm::resilience
