#include "resilience/resilient_sweep.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "par/worker_pool.hpp"
#include "resilience/journal.hpp"
#include "resilience/watchdog.hpp"

namespace fcdpm::resilience {

namespace {

bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_point(const par::SweepPoint& a, const par::SweepPoint& b) noexcept {
  return a.policy == b.policy && same_bits(a.rho, b.rho) &&
         same_bits(a.capacity.value(), b.capacity.value()) &&
         a.storm_seed == b.storm_seed;
}

/// Bitwise equality over every observable (journaled) result field.
bool same_observable(const sim::SimulationResult& a,
                     const sim::SimulationResult& b) {
  return a.trace_name == b.trace_name && a.dpm_policy == b.dpm_policy &&
         a.fc_policy == b.fc_policy &&
         same_bits(a.totals.fuel.value(), b.totals.fuel.value()) &&
         same_bits(a.totals.delivered_energy.value(),
                   b.totals.delivered_energy.value()) &&
         same_bits(a.totals.load_energy.value(),
                   b.totals.load_energy.value()) &&
         same_bits(a.totals.bled.value(), b.totals.bled.value()) &&
         same_bits(a.totals.unserved.value(), b.totals.unserved.value()) &&
         same_bits(a.totals.duration.value(), b.totals.duration.value()) &&
         a.slots == b.slots && a.sleeps == b.sleeps &&
         same_bits(a.latency_added.value(), b.latency_added.value()) &&
         same_bits(a.storage_initial.value(), b.storage_initial.value()) &&
         same_bits(a.storage_end.value(), b.storage_end.value()) &&
         same_bits(a.storage_min.value(), b.storage_min.value()) &&
         same_bits(a.storage_max.value(), b.storage_max.value());
}

/// One scheduled unit of work: a grid point and which attempt this is.
struct BatchItem {
  std::size_t index = 0;
  std::size_t attempt = 1;
};

}  // namespace

ResilientSweepResult run_resilient_sweep(const sim::ExperimentConfig& base,
                                         const par::SweepGrid& grid,
                                         const ResilienceOptions& options) {
  const std::vector<par::SweepPoint> points = grid.points(base);
  const std::uint64_t fingerprint =
      grid_fingerprint(base, points, grid.storm_faults);
  const std::size_t max_attempts = 1 + options.contract.max_retries;

  ResilientSweepResult out;
  out.points.resize(points.size());
  out.stats.points = points.size();

  // --- resume: replay the journal, schedule only the remainder --------
  std::size_t journal_valid_bytes = 0;
  if (options.resume) {
    FCDPM_EXPECTS(!options.journal_path.empty(),
                  "--resume requires a journal path");
    const JournalLoad load = load_journal(options.journal_path);
    if (load.header.fingerprint != fingerprint ||
        load.header.points != points.size()) {
      throw CsvError("journal does not match this sweep (grid fingerprint "
                     "mismatch): " +
                     options.journal_path);
    }
    out.resilience.torn_tail_recovered = load.torn_tail;
    out.resilience.torn_bytes_dropped = load.dropped_bytes;
    journal_valid_bytes = load.valid_bytes;
    for (const JournalRecord& record : load.records) {
      if (record.index >= points.size() ||
          !same_point(record.point, points[record.index])) {
        throw CsvError("journal record does not match grid point " +
                       std::to_string(record.index) + ": " +
                       options.journal_path);
      }
      ResilientPoint& slot = out.points[record.index];
      slot.replayed = true;
      slot.attempts = record.attempts;
      slot.ok = record.ok;
      slot.result.point = points[record.index];
      if (record.ok) {
        slot.result.result = record.result;
      } else {
        slot.error = record.error;
      }
      ++out.resilience.replayed;
    }

    // Spot-check: re-simulate a deterministic sample of the replayed
    // points and hold the journal to bit-identity. Catches a journal
    // from a different build or a tampered record that still checksums.
    std::vector<std::size_t> replayed_ok;
    for (std::size_t k = 0; k < out.points.size(); ++k) {
      if (out.points[k].replayed && out.points[k].ok) {
        replayed_ok.push_back(k);
      }
    }
    const std::size_t checks =
        std::min(options.spot_checks, replayed_ok.size());
    for (std::size_t c = 0; c < checks; ++c) {
      const std::size_t k =
          replayed_ok[c * replayed_ok.size() / checks];  // evenly spaced
      const par::SweepPointResult fresh = par::run_point(
          base, points[k], grid.storm_faults, options.cache);
      if (!same_observable(fresh.result, out.points[k].result.result)) {
        throw CsvError("journal spot-check failed at grid point " +
                       std::to_string(k) +
                       ": replayed result is not bit-identical to "
                       "re-simulation: " +
                       options.journal_path);
      }
      ++out.resilience.spot_checks;
    }
  }

  // --- journal writer --------------------------------------------------
  std::optional<Journal> journal;
  if (!options.journal_path.empty()) {
    if (options.resume) {
      journal.emplace(Journal::open_for_append(options.journal_path,
                                               journal_valid_bytes));
    } else {
      journal.emplace(Journal::create(
          options.journal_path,
          {base.trace.name(), points.size(), fingerprint}));
    }
  }

  // --- round-based schedule -------------------------------------------
  std::map<std::size_t, std::vector<std::size_t>> schedule;
  for (std::size_t k = 0; k < points.size(); ++k) {
    if (!out.points[k].replayed) {
      schedule[0].push_back(k);
      ++out.resilience.scheduled;
    }
  }

  const std::uint64_t hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;
  std::vector<std::size_t> attempts(points.size(), 0);

  const auto started = std::chrono::steady_clock::now();
  {
    par::WorkerPool pool(options.jobs);
    out.stats.jobs = pool.thread_count();

    std::vector<sim::CancellationToken> tokens(pool.thread_count());
    std::optional<Watchdog> watchdog;
    if (options.watchdog_stall.count() > 0) {
      watchdog.emplace(pool.thread_count(),
                       WatchdogConfig{options.watchdog_poll,
                                      options.watchdog_stall, true});
    }

    while (!schedule.empty()) {
      const auto head = schedule.begin();
      const std::size_t round = head->first;
      const std::vector<std::size_t> indices = std::move(head->second);
      schedule.erase(head);
      ++out.resilience.rounds;

      std::vector<BatchItem> batch;
      batch.reserve(indices.size());
      for (const std::size_t k : indices) {
        batch.push_back({k, attempts[k] + 1});
      }
      std::vector<PointOutcome> outcomes(batch.size());

      pool.run_indexed_on_workers(
          batch.size(), [&](std::size_t worker, std::size_t j) {
            const BatchItem item = batch[j];
            sim::CancellationToken& token = tokens[worker];
            token.reset();
            if (watchdog.has_value()) {
              watchdog->begin_work(worker, &token);
            }
            outcomes[j] = execute_point(base, points[item.index],
                                        item.index, grid.storm_faults,
                                        options.cache, options.contract,
                                        &token);
            if (watchdog.has_value()) {
              watchdog->end_work(worker);
            }
            // Journal a committed outcome immediately (ok, or the final
            // failed attempt): the record is fsync'd before any later
            // work depends on it, so a crash can only lose in-flight
            // points, never a completed one.
            if (journal.has_value() &&
                (outcomes[j].ok || item.attempt >= max_attempts)) {
              JournalRecord record;
              record.index = item.index;
              record.point = points[item.index];
              record.attempts = item.attempt;
              record.ok = outcomes[j].ok;
              if (outcomes[j].ok) {
                record.result = outcomes[j].result.result;
              } else {
                record.error = outcomes[j].error;
              }
              journal->append(record);
            }
          });

      // Serial post-pass in batch order: deterministic retry schedule.
      for (std::size_t j = 0; j < batch.size(); ++j) {
        const BatchItem item = batch[j];
        attempts[item.index] = item.attempt;
        ResilientPoint& slot = out.points[item.index];
        slot.attempts = item.attempt;
        if (outcomes[j].ok) {
          slot.ok = true;
          slot.result = std::move(outcomes[j].result);
          continue;
        }
        if (item.attempt < max_attempts) {
          const std::size_t delay = backoff_delay_rounds(
              options.contract.backoff_seed, item.index, item.attempt,
              options.contract.max_backoff_exponent);
          schedule[round + delay].push_back(item.index);
          ++out.resilience.retries;
          continue;
        }
        slot.ok = false;
        slot.result.point = points[item.index];
        slot.error = std::move(outcomes[j].error);
      }
    }

    if (watchdog.has_value()) {
      watchdog->stop();
      out.resilience.watchdog_stalls = watchdog->stalls_detected();
    }
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  for (const ResilientPoint& point : out.points) {
    if (!point.ok) {
      ++out.resilience.quarantined;
    }
  }

  if (options.cache != nullptr) {
    out.stats.cache_hits = options.cache->hits() - hits_before;
    out.stats.cache_misses = options.cache->misses() - misses_before;
  }

  if (options.observer != nullptr && options.observer->active()) {
    obs::Context& obs = *options.observer;
    obs.gauge("par.sweep.points", static_cast<double>(out.stats.points));
    obs.gauge("par.sweep.jobs", static_cast<double>(out.stats.jobs));
    obs.gauge("par.sweep.wall_s", out.stats.wall_seconds);
    obs.gauge("par.sweep.points_per_s", out.stats.points_per_second());
    obs.gauge("resilience.scheduled",
              static_cast<double>(out.resilience.scheduled));
    obs.gauge("resilience.replayed",
              static_cast<double>(out.resilience.replayed));
    obs.gauge("resilience.retries",
              static_cast<double>(out.resilience.retries));
    obs.gauge("resilience.quarantined",
              static_cast<double>(out.resilience.quarantined));
    obs.gauge("resilience.rounds",
              static_cast<double>(out.resilience.rounds));
    obs.gauge("resilience.spot_checks",
              static_cast<double>(out.resilience.spot_checks));
    obs.gauge("resilience.watchdog_stalls",
              static_cast<double>(out.resilience.watchdog_stalls));
    obs.gauge("resilience.torn_bytes_dropped",
              static_cast<double>(out.resilience.torn_bytes_dropped));
    if (options.cache != nullptr) {
      options.cache->publish(obs);
    }
  }
  return out;
}

}  // namespace fcdpm::resilience
