#include "resilience/journal.hpp"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "audit/audit.hpp"
#include "cap/stats.hpp"
#include "common/atomic_file.hpp"
#include "common/csv.hpp"
#include "obs/trace_sink.hpp"

namespace fcdpm::resilience {

namespace {

// --- framing ----------------------------------------------------------------
// "R " + 8-hex payload length + " " + 16-hex FNV-1a 64 + " " ... "\n"
constexpr std::size_t kLenDigits = 8;
constexpr std::size_t kSumDigits = 16;
constexpr std::size_t kPrefixBytes = 2 + kLenDigits + 1 + kSumDigits + 1;

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string to_hex(std::uint64_t value, std::size_t digits) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%0*llx", static_cast<int>(digits),
                static_cast<unsigned long long>(value));
  return buffer;
}

bool parse_hex(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) {
    return false;
  }
  out = 0;
  for (const char c : text) {
    out <<= 4;
    if (c >= '0' && c <= '9') {
      out |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      out |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  return true;
}

/// C99 hexfloat inside a JSON string: exact binary64 round-trip.
std::string hex_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

// --- minimal flat-JSON-object parser ----------------------------------------
// Journal payloads are flat objects of string / integer / bool values,
// emitted by record_to_json below; this parser accepts exactly that.

struct JsonField {
  enum class Kind { String, Integer, Bool } kind = Kind::String;
  std::string text;         // String
  std::uint64_t integer = 0;  // Integer (payloads never need signs)
  bool boolean = false;     // Bool
};

using JsonObject = std::vector<std::pair<std::string, JsonField>>;

class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonObject& out) {
    skip_space();
    if (!consume('{')) {
      return false;
    }
    skip_space();
    if (consume('}')) {
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) {
        return false;
      }
      skip_space();
      if (!consume(':')) {
        return false;
      }
      skip_space();
      JsonField field;
      if (!parse_value(field)) {
        return false;
      }
      out.emplace_back(std::move(key), std::move(field));
      skip_space();
      if (consume(',')) {
        skip_space();
        continue;
      }
      return consume('}');
    }
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          std::uint64_t code = 0;
          std::string hex(text_.substr(pos_, 4));
          for (char& h : hex) {
            h = static_cast<char>(std::tolower(h));
          }
          if (!parse_hex(hex, code)) {
            return false;
          }
          pos_ += 4;
          // Journal strings only ever escape control characters; wider
          // code points pass through UTF-8 unescaped.
          out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool parse_value(JsonField& out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    if (text_[pos_] == '"') {
      out.kind = JsonField::Kind::String;
      return parse_string(out.text);
    }
    if (literal("true")) {
      out.kind = JsonField::Kind::Bool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonField::Kind::Bool;
      out.boolean = false;
      return true;
    }
    out.kind = JsonField::Kind::Integer;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out.integer = std::strtoull(
        std::string(text_.substr(start, pos_ - start)).c_str(), nullptr, 10);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class FieldMap {
 public:
  explicit FieldMap(const JsonObject& object) : object_(object) {}

  [[nodiscard]] const JsonField* find(std::string_view key) const {
    for (const auto& [name, field] : object_) {
      if (name == key) {
        return &field;
      }
    }
    return nullptr;
  }

  bool string(std::string_view key, std::string& out) const {
    const JsonField* f = find(key);
    if (f == nullptr || f->kind != JsonField::Kind::String) {
      return false;
    }
    out = f->text;
    return true;
  }

  bool integer(std::string_view key, std::uint64_t& out) const {
    const JsonField* f = find(key);
    if (f == nullptr || f->kind != JsonField::Kind::Integer) {
      return false;
    }
    out = f->integer;
    return true;
  }

  bool boolean(std::string_view key, bool& out) const {
    const JsonField* f = find(key);
    if (f == nullptr || f->kind != JsonField::Kind::Bool) {
      return false;
    }
    out = f->boolean;
    return true;
  }

  /// Hexfloat-in-string double.
  bool number(std::string_view key, double& out) const {
    std::string text;
    if (!string(key, text)) {
      return false;
    }
    char* end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0' && end != text.c_str();
  }

 private:
  const JsonObject& object_;
};

void hash_double(std::uint64_t& hash, double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (bits >> shift) & 0xffu;
    hash *= 0x100000001b3ull;
  }
}

void hash_u64(std::uint64_t& hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xffu;
    hash *= 0x100000001b3ull;
  }
}

std::string header_to_json(const JournalHeader& header) {
  std::string out = "{\"fcdpm_journal\":1";
  out += ",\"trace\":\"" + obs::json_escape(header.trace_name.c_str()) + "\"";
  out += ",\"points\":" + std::to_string(header.points);
  out += ",\"fingerprint\":\"" + to_hex(header.fingerprint, 16) + "\"";
  out += "}";
  return out;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw CsvError(what + ": " + path + " (" + std::strerror(errno) + ")");
}

}  // namespace

std::uint64_t grid_fingerprint(const sim::ExperimentConfig& base,
                               const std::vector<par::SweepPoint>& points,
                               std::size_t storm_faults) {
  std::uint64_t hash = fnv1a64(base.trace.name());
  hash_u64(hash, base.trace.size());
  for (const wl::TaskSlot& slot : base.trace.slots()) {
    hash_double(hash, slot.idle.value());
    hash_double(hash, slot.active.value());
    hash_double(hash, slot.active_power.value());
  }
  hash_double(hash, base.rho);
  hash_double(hash, base.sigma);
  hash_double(hash, base.initial_idle_estimate.value());
  hash_double(hash, base.initial_active_estimate.value());
  hash_double(hash, base.active_current_estimate.value());
  hash_double(hash, base.storage_capacity.value());
  hash_double(hash, base.initial_storage.value());
  if (base.cap.enabled) {
    // Hashed only when capping is on: cap-off grids keep their pre-cap
    // fingerprints, so journals written before the governor existed
    // still resume.
    hash_u64(hash, 1);
    hash_u64(hash, base.cap.hysteresis_slots);
    hash_double(hash, base.cap.storage_draw_fraction);
    hash_u64(hash, fnv1a64(base.cap.table_csv));
  }
  if (base.stacks.enabled) {
    // Same compatibility rule as the cap block: single-stack grids keep
    // their pre-stacks fingerprints.
    hash_u64(hash, 2);
    hash_u64(hash, base.stacks.count);
    hash_u64(hash, static_cast<std::uint64_t>(base.stacks.distribution));
    hash_double(hash, base.stacks.charge_fade_per_as);
    hash_double(hash, base.stacks.cycle_fade);
    hash_u64(hash, fnv1a64(base.stacks.config_csv));
  }
  if (base.audit.enabled()) {
    // Same compatibility rule again — and a resume that flips the audit
    // mode (or the tamper hook) is a different run: the replayed
    // spot-check would compare strict-mode results against journal rows
    // written without auditing, so the fingerprints must not splice.
    hash_u64(hash, 3);
    hash_u64(hash, static_cast<std::uint64_t>(base.audit.mode));
    hash_u64(hash, static_cast<std::uint64_t>(base.audit.sample_period));
    hash_u64(hash, static_cast<std::uint64_t>(base.audit.tamper_slot));
  }
  hash_u64(hash, storm_faults);
  hash_u64(hash, points.size());
  for (const par::SweepPoint& point : points) {
    hash_u64(hash, static_cast<std::uint64_t>(point.policy));
    hash_double(hash, point.rho);
    hash_double(hash, point.capacity.value());
    hash_u64(hash, point.storm_seed);
    if (point.stacks > 0) {
      hash_u64(hash, point.stacks);
      hash_u64(hash, static_cast<std::uint64_t>(point.distribution));
    }
  }
  return hash;
}

std::string record_to_json(const JournalRecord& record) {
  std::string out = "{";
  out += "\"index\":" + std::to_string(record.index);
  out += ",\"policy\":" +
         std::to_string(static_cast<int>(record.point.policy));
  out += ",\"rho\":\"" + hex_double(record.point.rho) + "\"";
  out += ",\"capacity\":\"" + hex_double(record.point.capacity.value()) +
         "\"";
  out += ",\"seed\":" + std::to_string(record.point.storm_seed);
  if (record.point.stacks > 0) {
    // Multi-stack point coordinates, serialized only on stack points so
    // single-stack journals stay byte-identical to pre-stacks builds.
    out += ",\"stacks\":" + std::to_string(record.point.stacks);
    out += ",\"dist\":" +
           std::to_string(static_cast<int>(record.point.distribution));
  }
  out += ",\"attempts\":" + std::to_string(record.attempts);
  out += ",\"ok\":";
  out += record.ok ? "true" : "false";
  if (!record.ok) {
    out += ",\"error_kind\":\"";
    out += to_string(record.error.kind);
    out += "\",\"error_detail\":\"" +
           obs::json_escape(record.error.detail.c_str()) + "\"";
    out += "}";
    return out;
  }
  const sim::SimulationResult& r = record.result;
  out += ",\"trace\":\"" + obs::json_escape(r.trace_name.c_str()) + "\"";
  out += ",\"dpm\":\"" + obs::json_escape(r.dpm_policy.c_str()) + "\"";
  out += ",\"fc\":\"" + obs::json_escape(r.fc_policy.c_str()) + "\"";
  out += ",\"fuel\":\"" + hex_double(r.totals.fuel.value()) + "\"";
  out += ",\"delivered_j\":\"" +
         hex_double(r.totals.delivered_energy.value()) + "\"";
  out += ",\"load_j\":\"" + hex_double(r.totals.load_energy.value()) + "\"";
  out += ",\"bled\":\"" + hex_double(r.totals.bled.value()) + "\"";
  out += ",\"unserved\":\"" + hex_double(r.totals.unserved.value()) + "\"";
  out += ",\"duration\":\"" + hex_double(r.totals.duration.value()) + "\"";
  out += ",\"slots\":" + std::to_string(r.slots);
  out += ",\"sleeps\":" + std::to_string(r.sleeps);
  out += ",\"latency\":\"" + hex_double(r.latency_added.value()) + "\"";
  out += ",\"storage_initial\":\"" + hex_double(r.storage_initial.value()) +
         "\"";
  out += ",\"storage_end\":\"" + hex_double(r.storage_end.value()) + "\"";
  out += ",\"storage_min\":\"" + hex_double(r.storage_min.value()) + "\"";
  out += ",\"storage_max\":\"" + hex_double(r.storage_max.value()) + "\"";
  if (r.cap.has_value()) {
    // Cap block only when a governor ran: cap-off journals stay
    // byte-identical to pre-cap builds.
    const cap::CapStats& c = *r.cap;
    out += ",\"cap_slots\":" + std::to_string(c.slots_seen);
    out += ",\"cap_capped\":" + std::to_string(c.slots_capped);
    out += ",\"cap_reductions\":" + std::to_string(c.level_reductions);
    out += ",\"cap_restorations\":" + std::to_string(c.level_restorations);
    out += ",\"cap_violations\":" + std::to_string(c.budget_violations);
    out += ",\"cap_deferred_j\":\"" + hex_double(c.energy_deferred.value()) +
           "\"";
    out += ",\"cap_deferred_s\":\"" + hex_double(c.time_deferred.value()) +
           "\"";
    std::string levels;
    for (const double seconds : c.time_at_level_s) {
      if (!levels.empty()) {
        levels += ',';
      }
      levels += hex_double(seconds);  // hexfloats never need escaping
    }
    out += ",\"cap_levels\":\"" + levels + "\"";
  }
  if (r.stacks.has_value()) {
    // Stacks block only when the run's source was multi-stack:
    // single-stack journals stay byte-identical to pre-stacks builds.
    const stacks::StacksStats& s = *r.stacks;
    out += ",\"stk_n\":" + std::to_string(s.stacks.size());
    out += ",\"stk_dist\":" +
           std::to_string(static_cast<int>(s.distribution));
    std::string fuel_list;
    std::string delivered_list;
    std::string startups_list;
    std::string wear_list;
    for (const stacks::StackTotals& t : s.stacks) {
      if (!fuel_list.empty()) {
        fuel_list += ',';
        delivered_list += ',';
        startups_list += ',';
        wear_list += ',';
      }
      fuel_list += hex_double(t.fuel_as);  // hexfloats never need escaping
      delivered_list += hex_double(t.delivered_as);
      startups_list += std::to_string(t.startups);
      wear_list += hex_double(t.wear);
    }
    out += ",\"stk_fuel\":\"" + fuel_list + "\"";
    out += ",\"stk_delivered\":\"" + delivered_list + "\"";
    out += ",\"stk_startups\":\"" + startups_list + "\"";
    out += ",\"stk_wear\":\"" + wear_list + "\"";
  }
  if (r.audit.has_value()) {
    // Audit block only when an auditor ran: audit-off journals stay
    // byte-identical to pre-audit builds.
    const audit::AuditStats& a = *r.audit;
    out += ",\"aud_mode\":" + std::to_string(a.mode);
    out += ",\"aud_slots\":" + std::to_string(a.slots_audited);
    out += ",\"aud_segments\":" + std::to_string(a.segments_audited);
    out += ",\"aud_checks\":" + std::to_string(a.checks_run);
    out += ",\"aud_violations\":" + std::to_string(a.violations);
    out += ",\"aud_fuel\":" + std::to_string(a.fuel_violations);
    out += ",\"aud_storage\":" + std::to_string(a.storage_violations);
    out += ",\"aud_cap\":" + std::to_string(a.cap_violations);
    out += ",\"aud_stacks\":" + std::to_string(a.stacks_violations);
    out += ",\"aud_cache\":" + std::to_string(a.cache_violations);
    out += ",\"aud_fallbacks\":" + std::to_string(a.engine_fallbacks);
    if (!a.first_violation.empty()) {
      out += ",\"aud_first_slot\":" +
             std::to_string(a.first_violation_slot);
      out += ",\"aud_first\":\"" +
             obs::json_escape(a.first_violation.c_str()) + "\"";
    }
  }
  out += "}";
  return out;
}

namespace {

bool record_from_json(std::string_view payload, JournalRecord& record) {
  JsonObject object;
  FlatJsonParser parser(payload);
  if (!parser.parse(object)) {
    return false;
  }
  const FieldMap fields(object);

  std::uint64_t index = 0;
  std::uint64_t policy = 0;
  std::uint64_t seed = 0;
  std::uint64_t attempts = 1;
  double rho = 0.0;
  double capacity = 0.0;
  if (!fields.integer("index", index) ||
      !fields.integer("policy", policy) || !fields.number("rho", rho) ||
      !fields.number("capacity", capacity) ||
      !fields.integer("seed", seed) ||
      !fields.integer("attempts", attempts) ||
      !fields.boolean("ok", record.ok) || policy > 3) {
    return false;
  }
  record.index = static_cast<std::size_t>(index);
  record.point.policy = static_cast<sim::PolicyKind>(policy);
  record.point.rho = rho;
  record.point.capacity = Coulomb(capacity);
  record.point.storm_seed = seed;
  record.attempts = static_cast<std::size_t>(attempts);

  // Multi-stack point coordinates are optional (absent on single-stack
  // points); when the marker is present both fields are required.
  if (fields.find("stacks") != nullptr) {
    std::uint64_t stack_count = 0;
    std::uint64_t dist = 0;
    if (!fields.integer("stacks", stack_count) ||
        !fields.integer("dist", dist) || stack_count == 0 || dist > 2) {
      return false;
    }
    record.point.stacks = static_cast<std::size_t>(stack_count);
    record.point.distribution = static_cast<stacks::Distribution>(dist);
  }

  if (!record.ok) {
    std::string kind;
    if (!fields.string("error_kind", kind) ||
        !fields.string("error_detail", record.error.detail)) {
      return false;
    }
    for (const PointErrorKind candidate :
         {PointErrorKind::solver_diverged, PointErrorKind::non_finite_result,
          PointErrorKind::deadline_exceeded,
          PointErrorKind::contract_violation, PointErrorKind::io_error,
          PointErrorKind::power_undeliverable}) {
      if (kind == to_string(candidate)) {
        record.error.kind = candidate;
        return true;
      }
    }
    return false;
  }

  sim::SimulationResult& r = record.result;
  double fuel = 0.0;
  double delivered = 0.0;
  double load = 0.0;
  double bled = 0.0;
  double unserved = 0.0;
  double duration = 0.0;
  double latency = 0.0;
  double s_initial = 0.0;
  double s_end = 0.0;
  double s_min = 0.0;
  double s_max = 0.0;
  std::uint64_t slots = 0;
  std::uint64_t sleeps = 0;
  if (!fields.string("trace", r.trace_name) ||
      !fields.string("dpm", r.dpm_policy) ||
      !fields.string("fc", r.fc_policy) || !fields.number("fuel", fuel) ||
      !fields.number("delivered_j", delivered) ||
      !fields.number("load_j", load) || !fields.number("bled", bled) ||
      !fields.number("unserved", unserved) ||
      !fields.number("duration", duration) ||
      !fields.integer("slots", slots) ||
      !fields.integer("sleeps", sleeps) ||
      !fields.number("latency", latency) ||
      !fields.number("storage_initial", s_initial) ||
      !fields.number("storage_end", s_end) ||
      !fields.number("storage_min", s_min) ||
      !fields.number("storage_max", s_max)) {
    return false;
  }
  r.totals.fuel = Coulomb(fuel);
  r.totals.delivered_energy = Joule(delivered);
  r.totals.load_energy = Joule(load);
  r.totals.bled = Coulomb(bled);
  r.totals.unserved = Coulomb(unserved);
  r.totals.duration = Seconds(duration);
  r.slots = static_cast<std::size_t>(slots);
  r.sleeps = static_cast<std::size_t>(sleeps);
  r.latency_added = Seconds(latency);
  r.storage_initial = Coulomb(s_initial);
  r.storage_end = Coulomb(s_end);
  r.storage_min = Coulomb(s_min);
  r.storage_max = Coulomb(s_max);

  // Cap block is optional (absent on cap-off runs); when the marker
  // field is present every cap field is required together.
  if (fields.find("cap_slots") != nullptr) {
    std::uint64_t cap_slots = 0;
    std::uint64_t cap_capped = 0;
    std::uint64_t cap_reductions = 0;
    std::uint64_t cap_restorations = 0;
    std::uint64_t cap_violations = 0;
    double deferred_j = 0.0;
    double deferred_s = 0.0;
    std::string levels;
    if (!fields.integer("cap_slots", cap_slots) ||
        !fields.integer("cap_capped", cap_capped) ||
        !fields.integer("cap_reductions", cap_reductions) ||
        !fields.integer("cap_restorations", cap_restorations) ||
        !fields.integer("cap_violations", cap_violations) ||
        !fields.number("cap_deferred_j", deferred_j) ||
        !fields.number("cap_deferred_s", deferred_s) ||
        !fields.string("cap_levels", levels)) {
      return false;
    }
    cap::CapStats stats;
    stats.slots_seen = static_cast<std::size_t>(cap_slots);
    stats.slots_capped = static_cast<std::size_t>(cap_capped);
    stats.level_reductions = static_cast<std::size_t>(cap_reductions);
    stats.level_restorations = static_cast<std::size_t>(cap_restorations);
    stats.budget_violations = static_cast<std::size_t>(cap_violations);
    stats.energy_deferred = Joule(deferred_j);
    stats.time_deferred = Seconds(deferred_s);
    std::size_t pos = 0;
    while (pos < levels.size()) {
      const std::size_t comma = levels.find(',', pos);
      const std::string token = levels.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      char* end = nullptr;
      const double seconds = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0' || !std::isfinite(seconds)) {
        return false;
      }
      stats.time_at_level_s.push_back(seconds);
      pos = comma == std::string::npos ? levels.size() : comma + 1;
    }
    r.cap = std::move(stats);
  }

  // Stacks block is optional (absent on single-stack runs); when the
  // marker field is present every stacks field is required together.
  if (fields.find("stk_n") != nullptr) {
    std::uint64_t stack_count = 0;
    std::uint64_t dist = 0;
    std::string fuel_list;
    std::string delivered_list;
    std::string startups_list;
    std::string wear_list;
    if (!fields.integer("stk_n", stack_count) ||
        !fields.integer("stk_dist", dist) ||
        !fields.string("stk_fuel", fuel_list) ||
        !fields.string("stk_delivered", delivered_list) ||
        !fields.string("stk_startups", startups_list) ||
        !fields.string("stk_wear", wear_list) || stack_count == 0 ||
        dist > 2) {
      return false;
    }
    const auto parse_doubles = [](const std::string& list,
                                  std::vector<double>& out) {
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string token = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
          return false;
        }
        out.push_back(value);
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
      return true;
    };
    std::vector<double> fuel_values;
    std::vector<double> delivered_values;
    std::vector<double> startup_values;
    std::vector<double> wear_values;
    if (!parse_doubles(fuel_list, fuel_values) ||
        !parse_doubles(delivered_list, delivered_values) ||
        !parse_doubles(startups_list, startup_values) ||
        !parse_doubles(wear_list, wear_values) ||
        fuel_values.size() != stack_count ||
        delivered_values.size() != stack_count ||
        startup_values.size() != stack_count ||
        wear_values.size() != stack_count) {
      return false;
    }
    stacks::StacksStats stats;
    stats.distribution = static_cast<stacks::Distribution>(dist);
    stats.stacks.resize(stack_count);
    for (std::size_t i = 0; i < stack_count; ++i) {
      if (startup_values[i] < 0.0 ||
          startup_values[i] != std::floor(startup_values[i])) {
        return false;
      }
      stats.stacks[i].fuel_as = fuel_values[i];
      stats.stacks[i].delivered_as = delivered_values[i];
      stats.stacks[i].startups = static_cast<std::size_t>(startup_values[i]);
      stats.stacks[i].wear = wear_values[i];
    }
    r.stacks = std::move(stats);
  }

  // Audit block is optional (absent on audit-off runs); when the marker
  // field is present every audit field is required together.
  if (fields.find("aud_mode") != nullptr) {
    std::uint64_t mode = 0;
    audit::AuditStats stats;
    if (!fields.integer("aud_mode", mode) || mode > 2 ||
        !fields.integer("aud_slots", stats.slots_audited) ||
        !fields.integer("aud_segments", stats.segments_audited) ||
        !fields.integer("aud_checks", stats.checks_run) ||
        !fields.integer("aud_violations", stats.violations) ||
        !fields.integer("aud_fuel", stats.fuel_violations) ||
        !fields.integer("aud_storage", stats.storage_violations) ||
        !fields.integer("aud_cap", stats.cap_violations) ||
        !fields.integer("aud_stacks", stats.stacks_violations) ||
        !fields.integer("aud_cache", stats.cache_violations) ||
        !fields.integer("aud_fallbacks", stats.engine_fallbacks)) {
      return false;
    }
    stats.mode = static_cast<int>(mode);
    if (fields.find("aud_first") != nullptr) {
      std::uint64_t first_slot = 0;
      if (!fields.integer("aud_first_slot", first_slot) ||
          !fields.string("aud_first", stats.first_violation)) {
        return false;
      }
      stats.first_violation_slot = static_cast<std::size_t>(first_slot);
    }
    r.audit = std::move(stats);
  }
  return true;
}

bool header_from_json(std::string_view line, JournalHeader& header) {
  JsonObject object;
  FlatJsonParser parser(line);
  if (!parser.parse(object)) {
    return false;
  }
  const FieldMap fields(object);
  std::uint64_t version = 0;
  std::uint64_t points = 0;
  std::string fingerprint;
  if (!fields.integer("fcdpm_journal", version) || version != 1 ||
      !fields.string("trace", header.trace_name) ||
      !fields.integer("points", points) ||
      !fields.string("fingerprint", fingerprint) ||
      !parse_hex(fingerprint, header.fingerprint)) {
    return false;
  }
  header.points = static_cast<std::size_t>(points);
  return true;
}

}  // namespace

// --- writer -----------------------------------------------------------------

Journal::Journal(std::string path, int fd)
    : path_(std::move(path)), fd_(fd),
      mutex_(std::make_unique<std::mutex>()) {}

Journal Journal::create(const std::string& path,
                        const JournalHeader& header) {
  // Header via temp + atomic rename: the journal appears complete or
  // not at all, never half-written.
  write_file_atomic(path, header_to_json(header) + "\n");
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    fail("cannot open journal for append", path);
  }
  return Journal(path, fd);
}

Journal Journal::open_for_append(const std::string& path,
                                 std::size_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    fail("cannot open journal for append", path);
  }
  // Physically drop a torn tail before new records go after it.
  if (::ftruncate(fd, static_cast<::off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    fail("cannot truncate journal tail", path);
  }
  return Journal(path, fd);
}

Journal::Journal(Journal&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_),
      mutex_(std::move(other.mutex_)) {
  other.fd_ = -1;
}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    mutex_ = std::move(other.mutex_);
    other.fd_ = -1;
  }
  return *this;
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Journal::write_all(const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail("cannot append journal record", path_);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    fail("cannot fsync journal", path_);
  }
}

void Journal::append(const JournalRecord& record) {
  const std::string payload = record_to_json(record);
  std::string line = "R ";
  line += to_hex(payload.size(), kLenDigits);
  line += ' ';
  line += to_hex(fnv1a64(payload), kSumDigits);
  line += ' ';
  line += payload;
  line += '\n';
  const std::lock_guard lock(*mutex_);
  write_all(line);
}

// --- loader -----------------------------------------------------------------

JournalLoad load_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CsvError("cannot open journal: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  const std::size_t header_end = bytes.find('\n');
  JournalLoad load;
  if (header_end == std::string::npos ||
      !header_from_json(std::string_view(bytes).substr(0, header_end),
                        load.header)) {
    // No committed header means the journal never existed as a valid
    // file (creation is atomic) — this is corruption, not a torn tail.
    throw CsvError("journal missing or invalid header: " + path);
  }

  std::size_t pos = header_end + 1;
  std::vector<bool> seen;
  while (pos < bytes.size()) {
    const std::string_view rest = std::string_view(bytes).substr(pos);
    if (rest.size() < kPrefixBytes || rest[0] != 'R' || rest[1] != ' ' ||
        rest[2 + kLenDigits] != ' ' ||
        rest[2 + kLenDigits + 1 + kSumDigits] != ' ') {
      break;  // torn or foreign tail
    }
    std::uint64_t length = 0;
    std::uint64_t checksum = 0;
    if (!parse_hex(rest.substr(2, kLenDigits), length) ||
        !parse_hex(rest.substr(2 + kLenDigits + 1, kSumDigits), checksum)) {
      break;
    }
    if (rest.size() < kPrefixBytes + length + 1) {
      break;  // record cut short
    }
    const std::string_view payload = rest.substr(kPrefixBytes, length);
    if (rest[kPrefixBytes + length] != '\n' ||
        fnv1a64(payload) != checksum) {
      break;  // missing terminator or bit rot
    }
    JournalRecord record;
    if (!record_from_json(payload, record)) {
      break;
    }
    // First record for an index wins (a resumed resume can only append
    // identical data, but stay deterministic regardless).
    if (record.index >= seen.size()) {
      seen.resize(record.index + 1, false);
    }
    if (!seen[record.index]) {
      seen[record.index] = true;
      load.records.push_back(std::move(record));
    }
    pos += kPrefixBytes + length + 1;
  }
  load.valid_bytes = pos;
  load.dropped_bytes = bytes.size() - pos;
  load.torn_tail = load.dropped_bytes > 0;
  return load;
}

}  // namespace fcdpm::resilience
