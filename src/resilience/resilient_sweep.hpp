// Crash-safe sweep runner: journaling + resume, retries with
// deterministic backoff ordering, failure quarantine, and an optional
// hung-worker watchdog — all layered over the fcdpm::par engine.
//
// Execution proceeds in scheduling *rounds*. Round 0 holds every point
// not replayed from a journal; a failed attempt is pushed back by
// backoff_delay_rounds() and re-run in a later round, until its
// attempts exhaust the contract and the point is quarantined. Rounds
// and their batch order are a pure function of the grid and the
// contract, so the sweep's results (and its journal, modulo the
// append interleaving within a round) are reproducible for any job
// count. Completed points are journaled with an fsync before the sweep
// moves on: a SIGKILL at any instant loses at most work in flight,
// never a committed result.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/context.hpp"
#include "par/solve_cache.hpp"
#include "par/sweep.hpp"
#include "resilience/retry.hpp"

namespace fcdpm::resilience {

struct ResilienceOptions {
  ExecutionContract contract;

  /// Journal file to create (or, with `resume`, to continue). Empty =
  /// run without a journal (retry/quarantine still apply).
  std::string journal_path;
  /// Replay completed points from `journal_path` and schedule only the
  /// remainder. The journal's grid fingerprint must match.
  bool resume = false;
  /// Replayed points re-simulated and compared bit-for-bit against the
  /// journal (capped at the number of replayed ok points). A mismatch
  /// throws: the journal does not describe this build/grid.
  std::size_t spot_checks = 1;

  /// Watchdog stall window; zero disables the watchdog entirely.
  std::chrono::milliseconds watchdog_stall{0};
  std::chrono::milliseconds watchdog_poll{25};

  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 1;
  par::SharedSolveCache* cache = nullptr;
  /// Post-run stats publication only (never attached to worker runs).
  obs::Context* observer = nullptr;
  /// Live per-worker shards + optional lane recording (see
  /// par::SweepOptions::telemetry). Shard count must be >=
  /// par::WorkerPool::resolve(jobs). Derived observation only; results
  /// and the journal are unchanged by attaching it.
  telemetry::SweepTelemetry* telemetry = nullptr;
};

/// Per-point outcome of a resilient sweep, in grid order.
struct ResilientPoint {
  par::SweepPointResult result;  ///< .point always set; .result valid when ok
  bool ok = false;
  PointError error;       ///< valid when !ok (the point is quarantined)
  std::size_t attempts = 1;
  bool replayed = false;  ///< restored from the journal, not re-run
};

/// Bookkeeping for reports and the resilience.* metrics.
struct ResilienceStats {
  std::size_t scheduled = 0;    ///< points simulated this run
  std::size_t replayed = 0;     ///< points restored from the journal
  std::size_t retries = 0;      ///< re-attempts beyond each first try
  std::size_t quarantined = 0;  ///< points that exhausted their retries
  std::size_t capped_ok = 0;    ///< ok points the cap governor throttled
  std::size_t rounds = 0;       ///< scheduling rounds executed
  std::size_t spot_checks = 0;  ///< replayed points re-verified bitwise
  bool torn_tail_recovered = false;
  std::size_t torn_bytes_dropped = 0;
  std::size_t watchdog_stalls = 0;
};

struct ResilientSweepResult {
  std::vector<ResilientPoint> points;  ///< grid order
  par::SweepRunStats stats;
  ResilienceStats resilience;
};

/// Run the grid under the resilience contract. Throws CsvError for
/// journal-level failures (unreadable header, fingerprint mismatch,
/// failed spot-check); individual point failures never propagate — they
/// are retried and ultimately quarantined in the result.
[[nodiscard]] ResilientSweepResult run_resilient_sweep(
    const sim::ExperimentConfig& base, const par::SweepGrid& grid,
    const ResilienceOptions& options);

}  // namespace fcdpm::resilience
