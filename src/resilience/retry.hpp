// Per-point execution contract: typed error taxonomy, bounded retries
// with deterministic seeded exponential backoff *ordering*, and the
// single-attempt executor the resilient sweep runner schedules.
//
// Nothing here consults a wall clock: a retry's "backoff" is expressed
// as the number of scheduling rounds the attempt is pushed back, drawn
// from a seeded hash of (point, attempt) over an exponentially growing
// window. The retry schedule — and therefore every result — is a pure
// function of the grid and the contract, independent of thread count
// and machine speed.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "par/solve_cache.hpp"
#include "par/sweep.hpp"
#include "sim/cancellation.hpp"

namespace fcdpm::resilience {

/// Why a grid point failed. A poisoned point fails the *point* — it is
/// journaled with its error and quarantined — never the sweep.
enum class PointErrorKind {
  solver_diverged,    ///< numerical solve diverged beyond the contract
  non_finite_result,  ///< NaN/Inf leaked into the observable result
  deadline_exceeded,  ///< slot budget exhausted or watchdog-cancelled
  contract_violation, ///< precondition/invariant tripped mid-point
  io_error,           ///< journal or file I/O failed for this point
  /// The source could not deliver the load: unserved charge exceeded
  /// the contract's budget. The cap governor exists to prevent exactly
  /// this outcome — a capped-but-completed point is a success, never
  /// this error.
  power_undeliverable,
};

[[nodiscard]] const char* to_string(PointErrorKind kind) noexcept;

struct PointError {
  PointErrorKind kind = PointErrorKind::contract_violation;
  std::string detail;
};

/// The contract every scheduled point executes under.
struct ExecutionContract {
  /// Re-attempts after the first try before the point is quarantined.
  std::size_t max_retries = 2;
  /// Simulated slots one attempt may spend (0 = unlimited). Slot-based,
  /// so the deadline is deterministic; see SimulationOptions::slot_budget.
  std::size_t point_deadline_slots = 0;
  /// Seed for the backoff ordering hash.
  std::uint64_t backoff_seed = 0x9e3779b97f4a7c15ull;
  /// Backoff window cap: the window doubles per attempt up to 2^this.
  std::size_t max_backoff_exponent = 6;
  /// Solver failures tolerated per attempt before the point is declared
  /// solver_diverged (robustness accounting from PR 2 carries the
  /// count). Default: unlimited — graceful degradation stays the norm.
  std::size_t solver_failure_budget =
      std::numeric_limits<std::size_t>::max();
  /// Unserved charge (A-s) tolerated per point before it is declared
  /// power_undeliverable. Default: unlimited — shortfalls degrade
  /// results but never fail points, exactly the pre-contract behavior.
  double unserved_budget_as = std::numeric_limits<double>::infinity();
  /// Test hook: this grid index always fails with solver_diverged
  /// (simulating a permanently poisoned point). npos = disabled.
  std::size_t inject_fail_index = std::numeric_limits<std::size_t>::max();
};

/// Deterministic backoff: how many scheduling rounds attempt `attempt`
/// of point `point_index` waits before re-running (>= 1). The window is
/// exponential in the attempt number; the draw within the window is a
/// seeded hash, so distinct points interleave instead of thundering
/// back in lockstep.
[[nodiscard]] std::size_t backoff_delay_rounds(std::uint64_t seed,
                                               std::size_t point_index,
                                               std::size_t attempt,
                                               std::size_t max_exponent)
    noexcept;

/// Outcome of one attempt at one grid point.
struct PointOutcome {
  par::SweepPointResult result;  ///< valid when ok
  bool ok = false;
  PointError error;              ///< valid when !ok
};

/// Run one attempt of `point` under the contract: wraps par::run_point
/// with the slot-budget deadline and cancellation token, maps every
/// failure mode onto the typed taxonomy, and verifies the result is
/// finite. Never throws — a poisoned point must fail the point only.
[[nodiscard]] PointOutcome execute_point(const sim::ExperimentConfig& base,
                                         const par::SweepPoint& point,
                                         std::size_t point_index,
                                         std::size_t storm_faults,
                                         core::SlotSolveCache* cache,
                                         const ExecutionContract& contract,
                                         sim::CancellationToken* cancel);

}  // namespace fcdpm::resilience
