// Hung-worker watchdog.
//
// Each worker registers its cancellation token when it starts a grid
// point; the simulator beats the token's heartbeat once per simulated
// slot. A background poll thread watches every registered heartbeat and
// declares a worker *stalled* when the count stops advancing for the
// configured wall-clock window — the one place in the resilience layer
// where wall time is consulted, because a genuinely hung worker, by
// definition, makes no deterministic progress to observe. On a stall
// the watchdog (optionally) fires the worker's cancellation token; the
// simulator notices at the next slot boundary and the point fails with
// deadline_exceeded, feeding the normal retry/quarantine machinery.
// Detection changes *whether* a point completes, never its value, so
// results stay bit-identical whenever no stall fires.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/cancellation.hpp"

namespace fcdpm::resilience {

struct WatchdogConfig {
  /// How often the poll thread inspects heartbeats.
  std::chrono::milliseconds poll{25};
  /// A worker whose heartbeat has not advanced for this long while
  /// registered is declared stalled.
  std::chrono::milliseconds stall_after{2000};
  /// Fire the stalled worker's cancellation token (the production
  /// behaviour; tests disable it to observe detection alone).
  bool cancel_on_stall = true;
};

/// Watches one heartbeat slot per worker thread. Thread-safe; the poll
/// thread starts in the constructor and joins in stop()/destructor.
class Watchdog {
 public:
  explicit Watchdog(std::size_t workers, WatchdogConfig config = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Worker `worker` begins a grid point beating `token`. The stall
  /// window starts fresh here.
  void begin_work(std::size_t worker, sim::CancellationToken* token);

  /// Worker `worker` finished (or abandoned) its point; its slot is no
  /// longer watched.
  void end_work(std::size_t worker);

  /// Stalls declared so far (monotonic; a worker can stall once per
  /// begin_work).
  [[nodiscard]] std::size_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_acquire);
  }

  /// Join the poll thread. Idempotent; implied by the destructor.
  void stop();

 private:
  /// Heap-held per-worker state: the vector never reallocates after
  /// construction, and each slot has its own lock so begin/end never
  /// contend across workers.
  struct Slot {
    std::mutex mutex;
    sim::CancellationToken* token = nullptr;  ///< null = not working
    std::uint64_t last_beat = 0;
    std::chrono::steady_clock::time_point last_advance{};
    bool stalled = false;
  };

  void poll_loop();

  WatchdogConfig config_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::size_t> stalls_{0};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace fcdpm::resilience
