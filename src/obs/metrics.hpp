// Named counters, gauges and histograms for simulation-internal
// telemetry: solver invocations, projection-clamp activations per
// constraint, predictor absolute error, storage headroom, sleep
// decisions, and whatever later subsystems add.
//
// The registry hands out stable references (instruments live in a
// node-based map), records are plain doubles, and observing a value
// never allocates after the instrument exists — cheap enough to leave
// attached in ablation sweeps. Export to CSV/JSON lives in
// report/obs_export.hpp, keeping this layer dependency-free above
// common/.
#pragma once

#include <cstdint>
#include <array>
#include <map>
#include <string>
#include <vector>

namespace fcdpm::obs {

/// Monotonically accumulating total (events, clamps, sleeps...).
class Counter {
 public:
  void increment(double amount = 1.0) noexcept {
    total_ += amount;
    ++count_;
  }

  [[nodiscard]] double total() const noexcept { return total_; }
  /// Number of increment() calls (not the accumulated amount).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double total_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Last-value instrument that also tracks its observed range.
class Gauge {
 public:
  void set(double value) noexcept {
    if (count_ == 0) {
      min_ = value;
      max_ = value;
    } else {
      min_ = value < min_ ? value : min_;
      max_ = value > max_ ? value : max_;
    }
    last_ = value;
    ++count_;
  }

  [[nodiscard]] double last() const noexcept { return last_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  double last_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Streaming distribution summary: exact count/sum/min/max plus
/// signed-log-spaced buckets for approximate quantiles. Deterministic,
/// O(1) per observation, no samples retained.
class Histogram {
 public:
  /// Power-of-two magnitude buckets with the sign folded around a
  /// dedicated zero bucket: indices ascend with the value, magnitudes
  /// span ~2^-31 .. 2^31 per sign — ample for seconds/amperes/coulombs.
  static constexpr std::size_t kBuckets = 128;
  static constexpr std::size_t kZeroBucket = 63;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Approximate quantile (q in [0, 1]) from the bucket midpoints;
  /// exact for 0 and 1 (returns min/max). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// One exported line of the registry (see report/obs_export.hpp).
struct MetricRow {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::uint64_t count = 0;
  double value = 0.0;  ///< counter total / gauge last / histogram mean
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< histograms only (0 otherwise)
  double p95 = 0.0;  ///< histograms only (0 otherwise)
  double p99 = 0.0;  ///< histograms only (0 otherwise)
};

/// Owns every instrument; lookups by name create on first use and stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Snapshot of every instrument, sorted by (type, name).
  [[nodiscard]] std::vector<MetricRow> rows() const;

  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace fcdpm::obs
