#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace fcdpm::obs {

namespace {

/// Clamped integer binary exponent of |value| (value != 0).
int clamped_exponent(double value) {
  const int e = std::ilogb(std::fabs(value));
  return std::clamp(e, -31, 31);
}

/// Geometric midpoint of the bucket holding `index` (inverse of
/// Histogram::observe's index mapping).
double bucket_representative(std::size_t index) {
  if (index == Histogram::kZeroBucket) {
    return 0.0;
  }
  if (index > Histogram::kZeroBucket) {
    const int b = static_cast<int>(index) - 95;
    return std::ldexp(1.5, b);
  }
  const int b = 31 - static_cast<int>(index);
  return -std::ldexp(1.5, b);
}

}  // namespace

void Histogram::observe(double value) noexcept {
  if (std::isnan(value)) {
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = value < min_ ? value : min_;
    max_ = value > max_ ? value : max_;
  }
  ++count_;
  sum_ += value;

  std::size_t index = kZeroBucket;
  if (value > 0.0) {
    index = static_cast<std::size_t>(95 + clamped_exponent(value));
  } else if (value < 0.0) {
    index = static_cast<std::size_t>(31 - clamped_exponent(value));
  }
  ++buckets_[index];
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    cumulative += static_cast<double>(buckets_[k]);
    if (cumulative >= target) {
      return std::clamp(bucket_representative(k), min_, max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

std::vector<MetricRow> MetricsRegistry::rows() const {
  std::vector<MetricRow> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.type = "counter";
    row.count = c.count();
    row.value = c.total();
    row.min = c.total();
    row.max = c.total();
    out.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.type = "gauge";
    row.count = g.count();
    row.value = g.last();
    row.min = g.min();
    row.max = g.max();
    out.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.type = "histogram";
    row.count = h.count();
    row.value = h.mean();
    row.min = h.min();
    row.max = h.max();
    row.p50 = h.quantile(0.5);
    row.p95 = h.quantile(0.95);
    row.p99 = h.quantile(0.99);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.type != b.type ? a.type < b.type : a.name < b.name;
            });
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace fcdpm::obs
