#include "obs/trace_sink.hpp"

#include <cstdio>
#include <ostream>

namespace fcdpm::obs {

namespace {

const char* phase_letter(EventKind kind) {
  switch (kind) {
    case EventKind::SpanBegin:
      return "B";
    case EventKind::SpanEnd:
      return "E";
    case EventKind::Instant:
      return "i";
    case EventKind::Counter:
      return "C";
  }
  return "i";
}

/// Shortest round-trip double rendering; JSON has no Inf/NaN, so clamp
/// them to null-safe literals (they only arise from caller bugs).
void append_number(std::string& out, double value) {
  if (value != value) {
    out += "0";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_args(std::string& out, const TraceEvent& e) {
  out += "{";
  for (std::size_t k = 0; k < e.arg_count && k < TraceEvent::kMaxArgs; ++k) {
    if (k > 0) {
      out += ",";
    }
    out += "\"";
    out += json_escape(e.args[k].key);
    out += "\":";
    append_number(out, e.args[k].value);
  }
  out += "}";
}

}  // namespace

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonlTraceSink ----------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

void JsonlTraceSink::event(const TraceEvent& e) {
  std::string line;
  line.reserve(96);
  line += "{\"ph\":\"";
  line += phase_letter(e.kind);
  line += "\",\"name\":\"";
  line += json_escape(e.name);
  line += "\",\"cat\":\"";
  line += json_escape(e.category);
  line += "\",\"t\":";
  append_number(line, e.time.value());
  line += ",\"track\":";
  append_number(line, static_cast<double>(e.track));
  if (e.arg_count > 0) {
    line += ",\"args\":";
    append_args(line, e);
  }
  line += "}\n";
  *out_ << line;
}

void JsonlTraceSink::track_name(int track, const char* name) {
  std::string line = "{\"ph\":\"M\",\"name\":\"thread_name\",\"track\":";
  append_number(line, static_cast<double>(track));
  line += ",\"args\":{\"name\":\"";
  line += json_escape(name);
  line += "\"}}\n";
  *out_ << line;
}

void JsonlTraceSink::flush() { out_->flush(); }

// --- ChromeTraceSink ---------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "{\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::event(const TraceEvent& e) {
  if (closed_) {
    return;
  }
  std::string entry;
  entry.reserve(128);
  entry += first_ ? "\n" : ",\n";
  first_ = false;
  entry += "{\"name\":\"";
  entry += json_escape(e.name);
  entry += "\",\"cat\":\"";
  entry += json_escape(e.category);
  entry += "\",\"ph\":\"";
  entry += phase_letter(e.kind);
  entry += "\",\"ts\":";
  // Simulated seconds -> trace microseconds.
  append_number(entry, e.time.value() * 1e6);
  entry += ",\"pid\":1,\"tid\":";
  append_number(entry, static_cast<double>(e.track));
  if (e.kind == EventKind::Instant) {
    entry += ",\"s\":\"t\"";
  }
  if (e.arg_count > 0 || e.kind == EventKind::Counter) {
    entry += ",\"args\":";
    append_args(entry, e);
  }
  entry += "}";
  *out_ << entry;
}

void ChromeTraceSink::track_name(int track, const char* name) {
  if (closed_) {
    return;
  }
  std::string entry;
  entry += first_ ? "\n" : ",\n";
  first_ = false;
  entry +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
  append_number(entry, static_cast<double>(track));
  entry += ",\"args\":{\"name\":\"";
  entry += json_escape(name);
  entry += "\"}}";
  *out_ << entry;
}

void ChromeTraceSink::flush() { out_->flush(); }

void ChromeTraceSink::close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  *out_ << "\n],\"displayTimeUnit\":\"ms\"}\n";
  out_->flush();
}

}  // namespace fcdpm::obs
