#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace fcdpm::obs {

void Profiler::record(const char* name, std::chrono::nanoseconds elapsed) {
  ScopeStats& stats = scopes_[name];
  if (stats.calls == 0) {
    stats.min = elapsed;
    stats.max = elapsed;
  } else {
    stats.min = std::min(stats.min, elapsed);
    stats.max = std::max(stats.max, elapsed);
  }
  ++stats.calls;
  stats.total += elapsed;
}

std::string Profiler::summary() const {
  std::vector<const std::map<std::string, ScopeStats>::value_type*> order;
  order.reserve(scopes_.size());
  for (const auto& entry : scopes_) {
    order.push_back(&entry);
  }
  std::sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->second.total > b->second.total;
  });

  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-32s %10s %12s %10s %10s %10s\n",
                "scope", "calls", "total_ms", "mean_us", "min_us",
                "max_us");
  out += line;
  for (const auto* entry : order) {
    const ScopeStats& s = entry->second;
    const double total_ms = static_cast<double>(s.total.count()) / 1e6;
    const double mean_us =
        s.calls == 0
            ? 0.0
            : static_cast<double>(s.total.count()) /
                  (1e3 * static_cast<double>(s.calls));
    std::snprintf(line, sizeof line,
                  "%-32s %10llu %12.3f %10.2f %10.2f %10.2f\n",
                  entry->first.c_str(),
                  static_cast<unsigned long long>(s.calls), total_ms,
                  mean_us, static_cast<double>(s.min.count()) / 1e3,
                  static_cast<double>(s.max.count()) / 1e3);
    out += line;
  }
  return out;
}

}  // namespace fcdpm::obs
