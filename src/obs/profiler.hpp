// Wall-clock profiling for the hot paths (simulate loops, numerical
// solvers): RAII scopes accumulate call count and elapsed nanoseconds
// per named site. Unlike trace events, which live on the *simulated*
// timeline, the profiler measures real CPU wall time — the tool for
// "where does a sweep actually spend its milliseconds".
//
// A ProfileScope constructed with a null profiler never reads the
// clock, so the disabled path costs one branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace fcdpm::obs {

class Profiler {
 public:
  struct ScopeStats {
    std::uint64_t calls = 0;
    std::chrono::nanoseconds total{0};
    std::chrono::nanoseconds min{0};
    std::chrono::nanoseconds max{0};
  };

  void record(const char* name, std::chrono::nanoseconds elapsed);

  [[nodiscard]] const std::map<std::string, ScopeStats>& scopes()
      const noexcept {
    return scopes_;
  }
  [[nodiscard]] bool empty() const noexcept { return scopes_.empty(); }

  /// "name  calls  total_ms  mean_us  min_us  max_us" lines, longest
  /// total first; for logs and the CLI's --profile dump.
  [[nodiscard]] std::string summary() const;

  void clear() { scopes_.clear(); }

 private:
  std::map<std::string, ScopeStats> scopes_;
};

/// RAII timer; records on destruction. `name` must have static storage
/// duration (it keys the profiler's map only when the scope closes).
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, const char* name) noexcept
      : profiler_(profiler), name_(name) {
    if (profiler_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ProfileScope() {
    if (profiler_ != nullptr) {
      profiler_->record(name_,
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start_));
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace fcdpm::obs
