// Structured trace events over *simulated* time, and the sinks that
// persist them.
//
// The simulators and policies emit spans (slots, idle/active phases),
// instants (FC setpoint decisions, projection activations, sleep
// transitions) and counter samples (storage charge, FC output). Sinks:
//
//  * NullTraceSink   — swallows everything; the cost of an *attached but
//                      discarded* pipeline, which the overhead bench
//                      (bench/perf_tracing_overhead.cpp) pins at < 2 %.
//  * JsonlTraceSink  — one self-describing JSON object per line; easy to
//                      grep/jq and to stream.
//  * ChromeTraceSink — the Chrome trace-event array format, loadable in
//                      chrome://tracing and https://ui.perfetto.dev for
//                      timeline visualization.
//
// Events carry no owned memory: names/categories must be string
// literals (or otherwise outlive the sink) and arguments are a fixed
// inline array, so building an event never allocates.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "common/units.hpp"

namespace fcdpm::obs {

/// Chrome trace-event phases the pipeline distinguishes.
enum class EventKind {
  SpanBegin,  ///< "B" — a named span opens at `time`
  SpanEnd,    ///< "E" — the innermost open span with this name closes
  Instant,    ///< "i" — a point event
  Counter,    ///< "C" — a sampled value (one timeline track per name)
};

/// One key/value annotation. `key` must have static storage duration.
struct TraceArg {
  const char* key = "";
  double value = 0.0;
};

/// A complete event. Trivially copyable; building one never allocates.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;

  EventKind kind = EventKind::Instant;
  const char* name = "";      ///< static storage duration required
  const char* category = "";  ///< static storage duration required
  Seconds time{0.0};          ///< simulated time
  /// Timeline track (Chrome "tid"); lets one file hold several
  /// sequential runs side by side (e.g. `compare`'s three policies).
  int track = 0;
  std::size_t arg_count = 0;
  std::array<TraceArg, kMaxArgs> args{};
};

/// Event consumer interface.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void event(const TraceEvent& event) = 0;

  /// Assign a human-readable name to a timeline track (Chrome "tid").
  /// Sinks that support it emit a metadata record (Chrome "M" phase
  /// `thread_name`, which Perfetto renders as the track label); the
  /// default is a no-op. Unlike event names, `name` is copied — it need
  /// not outlive the call.
  virtual void track_name(int /*track*/, const char* /*name*/) {}

  /// Push buffered output to the underlying stream (no-op by default).
  virtual void flush() {}

  /// True when every event is thrown away. obs::Context caches this on
  /// attach and skips event construction entirely, which is what makes
  /// the null sink zero-overhead (bench/perf_tracing_overhead.cpp pins
  /// it at < 2 % over observability disabled).
  [[nodiscard]] virtual bool discards() const noexcept { return false; }
};

/// Swallows events at zero cost: contexts never even build the event.
class NullTraceSink final : public TraceSink {
 public:
  void event(const TraceEvent&) override {}
  [[nodiscard]] bool discards() const noexcept override { return true; }
};

/// One JSON object per line:
///   {"ph":"i","name":"fc.plan","cat":"core","t":12.5,"track":0,
///    "args":{"setpoint":0.53}}
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink.
  explicit JsonlTraceSink(std::ostream& out);

  void event(const TraceEvent& event) override;
  void track_name(int track, const char* name) override;
  void flush() override;

 private:
  std::ostream* out_;
};

/// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
/// Simulated seconds map to trace microseconds. `close()` (or the
/// destructor) completes the document; events after close are dropped.
class ChromeTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink.
  explicit ChromeTraceSink(std::ostream& out);
  ~ChromeTraceSink() override;

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  void event(const TraceEvent& event) override;
  void track_name(int track, const char* name) override;
  void flush() override;

  /// Write the closing brackets; idempotent.
  void close();

 private:
  std::ostream* out_;
  bool first_ = true;
  bool closed_ = false;
};

/// Escape a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const char* text);

}  // namespace fcdpm::obs
