// The opt-in observability handle threaded through the simulation
// stack: a trace sink, a metrics registry and a profiler, each
// individually optional, plus the simulated-time clock the emitting
// code keeps advanced so instrumented *policies* (which do not track
// time themselves) can stamp events correctly.
//
// Everything takes a `Context*`; nullptr means "observability off" and
// costs one pointer compare per site — the default simulation path
// stays allocation-free and bit-identical (asserted by
// tests/sim/test_observability.cpp and bench/perf_tracing_overhead).
#pragma once

#include <initializer_list>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"

namespace fcdpm::obs {

class Context {
 public:
  Context() = default;
  Context(TraceSink* sink, MetricsRegistry* metrics,
          Profiler* profiler) noexcept
      : metrics_(metrics), profiler_(profiler) {
    set_sink(sink);
  }

  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }
  /// True when events actually reach a sink. Hot call sites check this
  /// before computing event arguments, so a null (or absent) sink skips
  /// even the argument reads.
  [[nodiscard]] bool tracing() const noexcept { return emitting_; }
  /// Same idea for the metric shortcuts.
  [[nodiscard]] bool metering() const noexcept {
    return metrics_ != nullptr;
  }
  /// True when any component can actually record something. The
  /// simulators treat an inactive context exactly like a nullptr
  /// observer (nothing is attached, the clock does not advance), which
  /// is what makes a NullTraceSink-only context truly zero-overhead.
  [[nodiscard]] bool active() const noexcept {
    return emitting_ || metrics_ != nullptr || profiler_ != nullptr;
  }
  [[nodiscard]] MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] Profiler* profiler() const noexcept { return profiler_; }

  /// Caches sink->discards(): a NullTraceSink costs the same as no sink
  /// at all (emit() returns before building the event).
  void set_sink(TraceSink* sink) noexcept {
    sink_ = sink;
    emitting_ = sink != nullptr && !sink->discards();
  }
  void set_metrics(MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }
  void set_profiler(Profiler* profiler) noexcept { profiler_ = profiler; }

  // --- simulated clock -------------------------------------------------------

  [[nodiscard]] Seconds now() const noexcept { return now_; }
  void set_now(Seconds t) noexcept { now_ = t; }
  void advance(Seconds dt) noexcept { now_ += dt; }

  /// Timeline track for subsequent events (Chrome "tid"); lets several
  /// sequential runs share one file without overlapping spans.
  [[nodiscard]] int track() const noexcept { return track_; }
  void set_track(int track) noexcept { track_ = track; }

  // --- event emission (no-ops without a sink) --------------------------------

  void span_begin(const char* category, const char* name,
                  std::initializer_list<TraceArg> args = {}) {
    emit(EventKind::SpanBegin, category, name, args);
  }
  void span_end(const char* category, const char* name) {
    emit(EventKind::SpanEnd, category, name, {});
  }
  void instant(const char* category, const char* name,
               std::initializer_list<TraceArg> args = {}) {
    emit(EventKind::Instant, category, name, args);
  }
  /// One sample on the counter track `name`.
  void counter(const char* name, double value) {
    emit(EventKind::Counter, "counter", name, {{"value", value}});
  }

  // --- metric shortcuts (no-ops without a registry) --------------------------

  void count(const char* name, double amount = 1.0) {
    if (metrics_ != nullptr) {
      metrics_->counter(name).increment(amount);
    }
  }
  void observe(const char* name, double value) {
    if (metrics_ != nullptr) {
      metrics_->histogram(name).observe(value);
    }
  }
  void gauge(const char* name, double value) {
    if (metrics_ != nullptr) {
      metrics_->gauge(name).set(value);
    }
  }

 private:
  void emit(EventKind kind, const char* category, const char* name,
            std::initializer_list<TraceArg> args) {
    if (!emitting_) {
      return;
    }
    TraceEvent event;
    event.kind = kind;
    event.category = category;
    event.name = name;
    event.time = now_;
    event.track = track_;
    for (const TraceArg& arg : args) {
      if (event.arg_count == TraceEvent::kMaxArgs) {
        break;
      }
      event.args[event.arg_count++] = arg;
    }
    sink_->event(event);
  }

  TraceSink* sink_ = nullptr;
  bool emitting_ = false;
  MetricsRegistry* metrics_ = nullptr;
  Profiler* profiler_ = nullptr;
  Seconds now_{0.0};
  int track_ = 0;
};

}  // namespace fcdpm::obs
