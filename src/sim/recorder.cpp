#include "sim/recorder.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::sim {

StepSeries::StepSeries(std::string name, std::string unit)
    : name_(std::move(name)), unit_(std::move(unit)) {}

void StepSeries::append(Seconds duration, double value) {
  FCDPM_EXPECTS(duration.value() >= 0.0, "duration must be non-negative");
  if (duration.value() == 0.0) {
    return;
  }
  if (points_.empty() || points_.back().value != value) {
    points_.push_back({end_time_, value});
  }
  end_time_ += duration;
}

double StepSeries::sample(Seconds t) const {
  if (points_.empty() || t < points_.front().time) {
    return 0.0;
  }
  // Last point whose time is <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Seconds value, const StepPoint& p) { return value < p.time; });
  return std::prev(it)->value;
}

StepSeries StepSeries::window(Seconds t0, Seconds t1) const {
  FCDPM_EXPECTS(t0 <= t1, "window is inverted");
  StepSeries out(name_, unit_);
  if (points_.empty() || t0 >= end_time_) {
    return out;
  }

  const Seconds stop = min(t1, end_time_);
  Seconds cursor = t0;
  while (cursor < stop) {
    const double value = sample(cursor);
    // Find the next change after `cursor`.
    Seconds next = stop;
    for (const StepPoint& p : points_) {
      if (p.time > cursor) {
        next = min(next, p.time);
        break;
      }
    }
    out.append(next - cursor, value);
    cursor = next;
  }
  return out;
}

double StepSeries::time_average() const {
  if (points_.empty() || end_time_.value() <= 0.0) {
    return 0.0;
  }
  double weighted = 0.0;
  for (std::size_t k = 0; k < points_.size(); ++k) {
    const Seconds start = points_[k].time;
    const Seconds stop =
        (k + 1 < points_.size()) ? points_[k + 1].time : end_time_;
    weighted += points_[k].value * (stop - start).value();
  }
  return weighted / end_time_.value();
}

ProfileRecorder::ProfileRecorder()
    : load_("load current", "A"),
      fc_("FC system output current", "A"),
      storage_("storage charge", "A-s") {}

void ProfileRecorder::record(Seconds duration, Ampere load, Ampere fc_output,
                             Coulomb storage) {
  FCDPM_EXPECTS(duration.value() >= 0.0, "duration must be non-negative");
  Seconds record_span = duration;
  if (limit_.value() > 0.0) {
    const Seconds room = limit_ - clock_;
    record_span = clamp(duration, Seconds(0.0), max(room, Seconds(0.0)));
  }
  if (record_span.value() > 0.0) {
    load_.append(record_span, load.value());
    fc_.append(record_span, fc_output.value());
    storage_.append(record_span, storage.value());
  }
  clock_ += duration;
}

}  // namespace fcdpm::sim
