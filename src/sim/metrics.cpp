#include "sim/metrics.hpp"

#include "common/contracts.hpp"

namespace fcdpm::sim {

Ampere SimulationResult::average_fuel_current() const {
  if (totals.duration.value() <= 0.0) {
    return Ampere(0.0);
  }
  return totals.fuel / totals.duration;
}

Seconds SimulationResult::lifetime_on(Coulomb tank) const {
  FCDPM_EXPECTS(tank.value() > 0.0, "tank must be positive");
  const Ampere burn = average_fuel_current();
  FCDPM_EXPECTS(burn.value() > 0.0, "no fuel burned; lifetime unbounded");
  return tank / burn;
}

double normalized_fuel(const SimulationResult& result,
                       const SimulationResult& baseline) {
  FCDPM_EXPECTS(baseline.fuel().value() > 0.0,
                "baseline fuel must be positive");
  return result.fuel() / baseline.fuel();
}

double lifetime_extension(const SimulationResult& result,
                          const SimulationResult& other) {
  FCDPM_EXPECTS(result.fuel().value() > 0.0, "fuel must be positive");
  return other.fuel() / result.fuel();
}

double fuel_saving(const SimulationResult& result,
                   const SimulationResult& other) {
  FCDPM_EXPECTS(other.fuel().value() > 0.0, "fuel must be positive");
  return 1.0 - result.fuel() / other.fuel();
}

}  // namespace fcdpm::sim
