// Piecewise-constant time series recording for the Figure 7 current
// profiles (load current, FC output current, buffer charge vs time).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::sim {

/// One step of a piecewise-constant signal: `value` holds from `time`
/// until the next point's time.
struct StepPoint {
  Seconds time{0.0};
  double value = 0.0;
};

/// Piecewise-constant signal. Appends must move forward in time.
class StepSeries {
 public:
  StepSeries() = default;
  StepSeries(std::string name, std::string unit);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& unit() const noexcept { return unit_; }
  [[nodiscard]] const std::vector<StepPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] Seconds end_time() const noexcept { return end_time_; }

  /// Pre-size the point storage (the slot simulator reserves from the
  /// trace's segment count so steady-state recording never reallocates).
  void reserve(std::size_t points) { points_.reserve(points); }

  /// Append a stretch of `duration` at `value` starting at end_time().
  /// Adjacent equal values are merged.
  void append(Seconds duration, double value);

  /// Signal value at time `t` (last value holds past the end; 0 before
  /// the first point).
  [[nodiscard]] double sample(Seconds t) const;

  /// The sub-series covering [t0, t1).
  [[nodiscard]] StepSeries window(Seconds t0, Seconds t1) const;

  /// Time-weighted mean over the recorded span.
  [[nodiscard]] double time_average() const;

 private:
  std::string name_;
  std::string unit_;
  std::vector<StepPoint> points_;
  Seconds end_time_{0.0};
};

/// Bundles the three signals the paper plots.
class ProfileRecorder {
 public:
  ProfileRecorder();

  /// Record only the first `limit` of simulated time (Figure 7 shows
  /// 300 s); records everything when limit <= 0.
  void set_limit(Seconds limit) { limit_ = limit; }

  /// Pre-size all three series for `slots` task slots. A slot records at
  /// most ten segments: up to four idle segments plus the active phase,
  /// each splittable in two by the stop-charging-when-full rule.
  /// Adjacent merging only shrinks that.
  void reserve_for_slots(std::size_t slots) {
    load_.reserve(10 * slots);
    fc_.reserve(10 * slots);
    storage_.reserve(10 * slots);
  }

  void record(Seconds duration, Ampere load, Ampere fc_output,
              Coulomb storage);

  [[nodiscard]] const StepSeries& load_current() const noexcept {
    return load_;
  }
  [[nodiscard]] const StepSeries& fc_output() const noexcept {
    return fc_;
  }
  [[nodiscard]] const StepSeries& storage_charge() const noexcept {
    return storage_;
  }
  [[nodiscard]] Seconds clock() const noexcept { return clock_; }

 private:
  StepSeries load_;
  StepSeries fc_;
  StepSeries storage_;
  Seconds clock_{0.0};
  Seconds limit_{0.0};
};

}  // namespace fcdpm::sim
