// Cooperative cancellation for long simulations, plus the typed errors
// the execution layer maps into its PointError taxonomy.
//
// A CancellationToken is shared between the thread running simulate()
// and a supervisor (the fcdpm::resilience watchdog): the simulator
// `beat()`s the token at every slot boundary — a deterministic liveness
// heartbeat — and checks `cancelled()` at the same point, so a stuck or
// runaway point can be stopped without preemption and without touching
// the results of any other point. The deadline companion is the
// *simulated-slot budget* in SimulationOptions: wall-clock plays no
// part, so whether a point exceeds its deadline is a deterministic
// property of the point, not of machine load.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace fcdpm::sim {

/// Thrown by simulate() at a slot boundary after the token was
/// cancelled (e.g. by the watchdog). The run's partial state is
/// discarded by the caller; nothing shared was mutated.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by simulate() when the simulated-slot budget is exhausted
/// (SimulationOptions::slot_budget). Deterministic: depends only on the
/// trace and the budget, never on wall-clock.
class DeadlineExceededError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Shared cancel flag + liveness heartbeat. All operations are lock-free
/// atomics; one token is owned by one in-flight run at a time.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Liveness tick; the simulator calls this once per slot.
  void beat() noexcept {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t heartbeat() const noexcept {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  /// Rearm for the next attempt (retries reuse one token).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_release);
    heartbeat_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> heartbeat_{0};
};

}  // namespace fcdpm::sim
