// Remaining-runtime estimation: the "fuel gauge needle" a device built
// on this library would show. Tracks an exponentially-weighted average
// of the fuel current from slot telemetry and projects the remaining
// tank over it. This is where the run-time efficiency model (A14)
// actually pays off: the projection needs a *current* burn model, not
// the factory characterization.
#pragma once

#include "common/units.hpp"
#include "fuelcell/fuel_model.hpp"

namespace fcdpm::sim {

class RemainingLifetimeEstimator {
 public:
  /// `tank` of fuel (stack A-s); `smoothing` in (0, 1] weights history
  /// (1 = plain cumulative average, smaller adapts faster).
  RemainingLifetimeEstimator(Coulomb tank, double smoothing = 0.9);

  /// Record a telemetry window: `fuel` burned over `span`.
  void record(Coulomb fuel, Seconds span);

  [[nodiscard]] Coulomb fuel_remaining() const;
  [[nodiscard]] bool empty() const;

  /// Smoothed burn rate (stack amperes); 0 until telemetry arrives.
  [[nodiscard]] Ampere burn_rate() const;

  /// Projected runtime left at the current burn rate; requires telemetry
  /// with a positive burn rate.
  [[nodiscard]] Seconds remaining() const;

  /// Remaining runtime as a fraction of the projection at `reference`
  /// burn rate (e.g. "1.32x the lifetime a load-following controller
  /// would get"). Requires reference > 0.
  [[nodiscard]] double extension_over(Ampere reference) const;

 private:
  Coulomb tank_;
  double smoothing_;
  Coulomb consumed_{0.0};
  double rate_estimate_ = 0.0;  // amperes
  bool have_rate_ = false;
};

}  // namespace fcdpm::sim
