// Internal to the simulators: attach the run's observability context to
// the stateful actors (DPM policy, FC policy, hybrid source) and restore
// whatever was attached before once the run returns. Exception safe, so
// a throwing policy never leaves a dangling observer behind.
#pragma once

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "obs/context.hpp"
#include "power/hybrid.hpp"

namespace fcdpm::sim {

class ObserverGuard {
 public:
  ObserverGuard(obs::Context* obs, dpm::DpmPolicy& dpm_policy,
                core::FcOutputPolicy& fc_policy,
                power::HybridPowerSource& hybrid) noexcept
      : active_(obs != nullptr),
        dpm_(dpm_policy),
        fc_(fc_policy),
        hybrid_(hybrid),
        prev_dpm_(dpm_policy.observer()),
        prev_fc_(fc_policy.observer()),
        prev_hybrid_(hybrid.observer()) {
    if (active_) {
      dpm_.set_observer(obs);
      fc_.set_observer(obs);
      hybrid_.set_observer(obs);
    }
  }

  ~ObserverGuard() {
    if (active_) {
      dpm_.set_observer(prev_dpm_);
      fc_.set_observer(prev_fc_);
      hybrid_.set_observer(prev_hybrid_);
    }
  }

  ObserverGuard(const ObserverGuard&) = delete;
  ObserverGuard& operator=(const ObserverGuard&) = delete;

 private:
  bool active_;
  dpm::DpmPolicy& dpm_;
  core::FcOutputPolicy& fc_;
  power::HybridPowerSource& hybrid_;
  obs::Context* prev_dpm_;
  obs::Context* prev_fc_;
  obs::Context* prev_hybrid_;
};

}  // namespace fcdpm::sim
