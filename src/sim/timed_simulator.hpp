// Fixed-timestep simulator: integrates the same slot structure with a dt
// grid, re-querying the FC policy every step. Slower but structurally
// independent of the slot simulator's exact-integration and
// segment-splitting logic — the property tests require both to agree to
// within O(dt).
#pragma once

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "obs/context.hpp"
#include "power/hybrid.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace fcdpm::fault {
class FaultInjector;
}

namespace fcdpm::sim {

struct TimedOptions {
  Seconds timestep{0.01};
  /// Buffer charge at t = 0; negative means "start full". Default empty,
  /// matching SimulationOptions.
  Coulomb initial_storage{0.0};
  /// Opt-in observability, as in SimulationOptions. The dt loop advances
  /// the context's simulated clock per step but emits counter samples
  /// only per segment. Not owned.
  obs::Context* observer = nullptr;
  /// Opt-in fault injection, as in SimulationOptions (always reset at
  /// run start — the timed simulator has no multi-pass mode). Not owned.
  fault::FaultInjector* faults = nullptr;
};

/// dt-stepped counterpart of sim::simulate().
[[nodiscard]] SimulationResult simulate_timed(
    const wl::Trace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, power::HybridPowerSource& hybrid,
    const TimedOptions& options = {});

}  // namespace fcdpm::sim
