#include "sim/timed_simulator.hpp"

#include "common/contracts.hpp"
#include "fault/injector.hpp"
#include "obs/profiler.hpp"
#include "sim/fault_guard.hpp"
#include "sim/observer_guard.hpp"

namespace fcdpm::sim {

namespace {

/// Step through `duration` in dt increments, querying the policy each
/// step (so stateful rules like ASAP's recharge react at dt resolution).
/// The observability clock advances per step (policies stamp instants
/// mid-segment); counter samples are emitted once per segment to keep
/// traces of fine-dt runs tractable.
void run_stepped(power::HybridPowerSource& hybrid,
                 core::FcOutputPolicy& fc_policy,
                 core::SegmentContext context, Seconds duration,
                 Seconds dt, obs::Context* trace_obs) {
  Seconds remaining = duration;
  while (remaining.value() > 0.0) {
    const Seconds step = min(dt, remaining);
    context.storage_charge = hybrid.storage().charge();
    const core::SegmentSetpoint sp = fc_policy.segment_setpoint(context);
    // stop_charging_when_full is naturally approximated at dt
    // granularity: the policy sees the filled buffer next step.
    hybrid.run_segment(step, context.device_current, sp.setpoint);
    if (trace_obs != nullptr) {
      trace_obs->advance(step);
    }
    remaining -= step;
  }
  if (trace_obs != nullptr) {
    trace_obs->counter("load_A", context.device_current.value());
    trace_obs->counter("storage_As", hybrid.storage().charge().value());
  }
}

}  // namespace

SimulationResult simulate_timed(const wl::Trace& trace,
                                dpm::DpmPolicy& dpm_policy,
                                core::FcOutputPolicy& fc_policy,
                                power::HybridPowerSource& hybrid,
                                const TimedOptions& options) {
  FCDPM_EXPECTS(options.timestep.value() > 0.0, "timestep must be > 0");
  trace.validate();
  const dpm::DevicePowerModel& device = dpm_policy.device();
  device.validate();

  const Coulomb capacity = hybrid.storage().capacity();
  const Coulomb initial = (options.initial_storage.value() < 0.0)
                              ? capacity
                              : min(options.initial_storage, capacity);
  hybrid.reset(initial);

  SimulationResult result;
  result.trace_name = trace.name();
  result.dpm_policy = dpm_policy.name();
  result.fc_policy = fc_policy.name();
  result.storage_initial = initial;
  result.slots = trace.size();

  const Seconds dt = options.timestep;

  // An inactive context (e.g. only a NullTraceSink attached) is
  // treated exactly like no observer at all.
  obs::Context* obs = (options.observer != nullptr &&
                       options.observer->active())
                          ? options.observer
                          : nullptr;
  obs::Context* trace_obs =
      (obs != nullptr && obs->tracing()) ? obs : nullptr;
  const ObserverGuard observer_guard(obs, dpm_policy, fc_policy, hybrid);

  fault::FaultInjector* faults = options.faults;
  if (faults != nullptr) {
    faults->reset();
  }
  const FaultGuard fault_guard(faults, fc_policy, hybrid);

  const obs::ProfileScope profile(
      obs != nullptr ? obs->profiler() : nullptr, "sim.simulate_timed");
  if (trace_obs != nullptr) {
    trace_obs->span_begin("sim", "simulate_timed",
                          {{"slots", static_cast<double>(trace.size())},
                           {"dt_s", dt.value()}});
  }

  for (std::size_t k = 0; k < trace.size(); ++k) {
    const wl::TaskSlot& slot = trace[k];
    Ampere run_current = slot.active_power / device.bus_voltage;
    const Seconds active_eff = device.standby_to_run_delay + slot.active +
                               device.run_to_standby_delay;

    const Coulomb fuel_before = hybrid.totals().fuel;
    const Joule delivered_before = hybrid.totals().delivered_energy;

    Coulomb usable_capacity = capacity;
    if (faults != nullptr) {
      const fault::ActiveFaults& af =
          faults->advance_to(hybrid.totals().duration);
      if (af.load_scale != 1.0) {
        run_current = run_current * af.load_scale;
      }
      if (af.storage_derate < 1.0) {
        usable_capacity = capacity * af.storage_derate;
      }
    }

    dpm::IdlePlan plan = dpm_policy.plan_idle(slot.idle);
    if (plan.slept) {
      ++result.sleeps;
    }
    result.latency_added += plan.latency_spill;

    core::IdleContext idle_context;
    idle_context.slot_index = k;
    idle_context.will_sleep = plan.slept;
    idle_context.predicted_idle = plan.predicted_idle;
    idle_context.idle_current = plan.slept ? device.sleep_current()
                                           : device.standby_current();
    idle_context.storage_charge = hybrid.storage().charge();
    idle_context.storage_capacity = usable_capacity;
    idle_context.actual_idle = slot.idle;
    idle_context.actual_active = active_eff;
    idle_context.actual_active_current = run_current;
    if (faults != nullptr) {
      const fault::ActiveFaults& af = faults->active();
      if (af.sensor_noise_sigma > 0.0) {
        idle_context.predicted_idle =
            max(Seconds(0.01),
                idle_context.predicted_idle *
                    (1.0 + faults->noise(af.sensor_noise_sigma)));
      }
      idle_context.fc_output_derate = af.fc_output_derate;
      idle_context.fc_available = !af.fc_dropout;
    }
    fc_policy.on_idle_start(idle_context);

    if (obs != nullptr) {
      if (trace_obs != nullptr) {
        trace_obs->span_begin("sim", "idle",
                              {{"actual_s", slot.idle.value()},
                               {"slept", plan.slept ? 1.0 : 0.0}});
      }
      obs->count("sim.slots");
    }
    for (const dpm::IdleSegment& segment : plan.segments) {
      core::SegmentContext context;
      context.phase = core::Phase::Idle;
      context.state = segment.state;
      context.device_current = segment.current;
      context.storage_capacity = usable_capacity;
      run_stepped(hybrid, fc_policy, context, segment.duration, dt,
                  trace_obs);
    }
    if (trace_obs != nullptr) {
      trace_obs->span_end("sim", "idle");
    }

    core::ActiveContext active_context;
    active_context.slot_index = k;
    active_context.active_duration = active_eff;
    active_context.active_current = run_current;
    active_context.storage_charge = hybrid.storage().charge();
    active_context.storage_capacity = usable_capacity;
    if (faults != nullptr) {
      const fault::ActiveFaults& af =
          faults->advance_to(hybrid.totals().duration);
      active_context.fc_output_derate = af.fc_output_derate;
      active_context.fc_available = !af.fc_dropout;
      if (af.storage_derate < 1.0) {
        active_context.storage_capacity = capacity * af.storage_derate;
      }
    }
    fc_policy.on_active_start(active_context);

    core::SegmentContext context;
    context.phase = core::Phase::Active;
    context.state = dpm::PowerState::Run;
    context.device_current = run_current;
    context.storage_capacity = usable_capacity;
    if (trace_obs != nullptr) {
      trace_obs->span_begin("sim", "active",
                            {{"duration_s", active_eff.value()},
                             {"current_A", run_current.value()}});
    }
    run_stepped(hybrid, fc_policy, context, active_eff, dt, trace_obs);
    if (trace_obs != nullptr) {
      trace_obs->span_end("sim", "active");
    }

    dpm_policy.observe_idle(slot.idle);

    core::SlotObservation observation;
    observation.slot_index = k;
    observation.actual_idle = slot.idle;
    observation.actual_active = active_eff;
    observation.actual_active_current = run_current;
    observation.storage_charge = hybrid.storage().charge();
    observation.fuel_used = hybrid.totals().fuel - fuel_before;
    observation.delivered_charge =
        (hybrid.totals().delivered_energy - delivered_before) /
        device.bus_voltage;
    fc_policy.on_slot_end(observation);
  }

  if (trace_obs != nullptr) {
    trace_obs->span_end("sim", "simulate_timed");
  }

  result.totals = hybrid.totals();
  result.storage_end = hybrid.storage().charge();
  result.storage_min = hybrid.min_storage_seen();
  result.storage_max = hybrid.max_storage_seen();

  if (faults != nullptr) {
    (void)faults->advance_to(hybrid.totals().duration);
    result.robustness = faults->stats();
    if (obs != nullptr && obs->metering()) {
      obs->gauge("fault.degraded_s",
                 result.robustness->degraded_time.value());
      obs->gauge("fault.recovery_s",
                 result.robustness->recovery_time.value());
    }
  }
  return result;
}

}  // namespace fcdpm::sim
