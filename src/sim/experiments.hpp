// Canonical experiment configurations (Sections 5.1 and 5.2) shared by
// the test suite, the bench harness and the examples, so every consumer
// reproduces the same Table 2 / Table 3 runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cap/governor.hpp"
#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "sim/metrics.hpp"
#include "sim/slot_simulator.hpp"
#include "workload/trace.hpp"

namespace fcdpm::sim {

/// The FC output policies the paper compares (plus the oracle bound).
enum class PolicyKind { Conv, Asap, FcDpm, Oracle };

[[nodiscard]] const char* to_string(PolicyKind kind);

/// Everything needed to reproduce one of the paper's experiments.
struct ExperimentConfig {
  wl::Trace trace;
  dpm::DevicePowerModel device;
  power::LinearEfficiencyModel efficiency =
      power::LinearEfficiencyModel::paper_default();

  double rho = 0.5;    ///< idle predictor factor (Eq. (14))
  double sigma = 0.5;  ///< active predictor factor (Eq. (15))
  Seconds initial_idle_estimate{10.0};
  Seconds initial_active_estimate{5.0};
  Ampere active_current_estimate{1.2};  ///< I'ld,a seed

  /// Storage capacity of the hybrid's buffer (paper: 6 A-s supercap).
  Coulomb storage_capacity{6.0};
  /// Cini(1): a small reserve keeps FC-DPM's end-of-slot target off the
  /// storage floor under misprediction (see EXPERIMENTS.md).
  Coulomb initial_storage{1.0};

  /// Opt-in power capping. When enabled, run_policy / par::run_point
  /// build one cap::Governor per run from this spec (the simulation
  /// options' raw governor pointer is for callers that manage their
  /// own instance).
  cap::CapSpec cap;

  /// Opt-in multi-stack fuel source. When enabled, make_hybrid builds a
  /// stacks::MultiStackFuelSource (N copies of `efficiency`, or the
  /// spec's heterogeneous fleet CSV) instead of a LinearFuelSource.
  stacks::StacksSpec stacks;

  /// Opt-in runtime invariant auditing. When enabled, run_policy /
  /// par::run_point build one audit::Auditor per run from this spec
  /// (the simulation options' raw auditor pointer is for callers that
  /// manage their own instance). Hot-lane violations self-heal by
  /// replaying on the reference engine; strict reference violations
  /// throw audit::AuditError.
  audit::AuditSpec audit;

  SimulationOptions simulation;
};

/// Experiment 1: the 28-min DVD-camcorder MPEG trace (Table 2, Fig 7).
[[nodiscard]] ExperimentConfig experiment1_config();

/// Experiment 2: the synthetic uniform-random workload (Table 3).
[[nodiscard]] ExperimentConfig experiment2_config();

/// Build the FC output policy of the given kind for a configuration.
[[nodiscard]] std::unique_ptr<core::FcOutputPolicy> make_fc_policy(
    PolicyKind kind, const ExperimentConfig& config);

/// Build the paper's predictive DPM policy for a configuration.
[[nodiscard]] dpm::PredictiveDpmPolicy make_dpm_policy(
    const ExperimentConfig& config);

/// Build the hybrid source (linear paper efficiency + lossless supercap
/// of the configured capacity).
[[nodiscard]] power::HybridPowerSource make_hybrid(
    const ExperimentConfig& config);

/// Run one policy through the configured experiment.
[[nodiscard]] SimulationResult run_policy(PolicyKind kind,
                                          const ExperimentConfig& config);

/// All of Table 2/3's columns in one shot, same trace and settings.
struct PolicyComparison {
  SimulationResult conv;
  SimulationResult asap;
  SimulationResult fcdpm;

  /// Normalized fuel (Table 2/3 rows): {1.0, asap/conv, fcdpm/conv}.
  [[nodiscard]] std::vector<double> normalized() const;
};

[[nodiscard]] PolicyComparison compare_policies(
    const ExperimentConfig& config);

}  // namespace fcdpm::sim
