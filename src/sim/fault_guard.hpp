// Internal to the simulators: attach the run's fault injector to the
// hybrid source and its robustness accounting to the FC policy, and
// restore whatever was attached before once the run returns. Exception
// safe, mirroring ObserverGuard.
#pragma once

#include "core/fc_policy.hpp"
#include "fault/injector.hpp"
#include "power/hybrid.hpp"

namespace fcdpm::sim {

class FaultGuard {
 public:
  FaultGuard(fault::FaultInjector* injector, core::FcOutputPolicy& fc_policy,
             power::HybridPowerSource& hybrid) noexcept
      : active_(injector != nullptr),
        fc_(fc_policy),
        hybrid_(hybrid),
        prev_stats_(fc_policy.fault_stats()),
        prev_injector_(hybrid.fault_injector()) {
    if (active_) {
      fc_.set_fault_stats(&injector->stats());
      hybrid_.set_fault_injector(injector);
    }
  }

  ~FaultGuard() {
    if (active_) {
      fc_.set_fault_stats(prev_stats_);
      hybrid_.set_fault_injector(prev_injector_);
    }
  }

  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;

 private:
  bool active_;
  core::FcOutputPolicy& fc_;
  power::HybridPowerSource& hybrid_;
  fault::RobustnessStats* prev_stats_;
  fault::FaultInjector* prev_injector_;
};

}  // namespace fcdpm::sim
