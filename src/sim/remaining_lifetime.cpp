#include "sim/remaining_lifetime.hpp"

#include "common/contracts.hpp"

namespace fcdpm::sim {

RemainingLifetimeEstimator::RemainingLifetimeEstimator(Coulomb tank,
                                                       double smoothing)
    : tank_(tank), smoothing_(smoothing) {
  FCDPM_EXPECTS(tank.value() > 0.0, "tank must be positive");
  FCDPM_EXPECTS(smoothing > 0.0 && smoothing <= 1.0,
                "smoothing must be in (0, 1]");
}

void RemainingLifetimeEstimator::record(Coulomb fuel, Seconds span) {
  FCDPM_EXPECTS(fuel.value() >= 0.0, "fuel must be non-negative");
  FCDPM_EXPECTS(span.value() > 0.0, "span must be positive");
  consumed_ += fuel;
  const double rate = (fuel / span).value();
  if (!have_rate_) {
    rate_estimate_ = rate;
    have_rate_ = true;
  } else {
    rate_estimate_ =
        smoothing_ * rate_estimate_ + (1.0 - smoothing_) * rate;
  }
}

Coulomb RemainingLifetimeEstimator::fuel_remaining() const {
  return max(tank_ - consumed_, Coulomb(0.0));
}

bool RemainingLifetimeEstimator::empty() const {
  return fuel_remaining().value() <= 0.0;
}

Ampere RemainingLifetimeEstimator::burn_rate() const {
  return Ampere(have_rate_ ? rate_estimate_ : 0.0);
}

Seconds RemainingLifetimeEstimator::remaining() const {
  FCDPM_EXPECTS(have_rate_ && rate_estimate_ > 0.0,
                "no burn-rate telemetry yet");
  return fuel_remaining() / burn_rate();
}

double RemainingLifetimeEstimator::extension_over(Ampere reference) const {
  FCDPM_EXPECTS(reference.value() > 0.0, "reference rate must be > 0");
  FCDPM_EXPECTS(have_rate_ && rate_estimate_ > 0.0,
                "no burn-rate telemetry yet");
  return reference.value() / rate_estimate_;
}

}  // namespace fcdpm::sim
