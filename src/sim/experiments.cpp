#include "sim/experiments.hpp"

#include <optional>

#include "common/contracts.hpp"
#include "workload/camcorder.hpp"
#include "workload/synthetic.hpp"

namespace fcdpm::sim {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Conv:
      return "Conv-DPM";
    case PolicyKind::Asap:
      return "ASAP-DPM";
    case PolicyKind::FcDpm:
      return "FC-DPM";
    case PolicyKind::Oracle:
      return "Oracle-FC-DPM";
  }
  return "?";
}

ExperimentConfig experiment1_config() {
  ExperimentConfig config;
  config.trace = wl::paper_camcorder_trace();
  config.device = wl::camcorder_device();
  // The camcorder's active period is fixed, so no active prediction is
  // needed (paper, Section 5.1); the seeds below only matter for the
  // first slot.
  config.initial_active_estimate = Seconds(5.0);
  config.active_current_estimate = Watt(14.65) / Volt(12.0);
  config.simulation.initial_storage = config.initial_storage;
  return config;
}

ExperimentConfig experiment2_config() {
  ExperimentConfig config;
  config.trace = wl::paper_synthetic_trace();
  config.device = wl::synthetic_device();
  // Paper: rho = sigma = 0.5, I'ld,a estimated as 1.2 A.
  config.active_current_estimate = Ampere(1.2);
  config.simulation.initial_storage = config.initial_storage;
  return config;
}

std::unique_ptr<core::FcOutputPolicy> make_fc_policy(
    PolicyKind kind, const ExperimentConfig& config) {
  switch (kind) {
    case PolicyKind::Conv:
      return std::make_unique<core::ConvFcPolicy>(config.efficiency);
    case PolicyKind::Asap:
      return std::make_unique<core::AsapFcPolicy>(config.efficiency);
    case PolicyKind::FcDpm:
      return std::make_unique<core::FcDpmPolicy>(
          core::FcDpmPolicy::paper_policy(
              config.efficiency, config.device, config.sigma,
              config.initial_active_estimate,
              config.active_current_estimate));
    case PolicyKind::Oracle:
      return std::make_unique<core::OracleFcPolicy>(config.efficiency,
                                                    config.device);
  }
  FCDPM_ENSURES(false, "unknown policy kind");
}

dpm::PredictiveDpmPolicy make_dpm_policy(const ExperimentConfig& config) {
  return dpm::PredictiveDpmPolicy::paper_policy(
      config.device, config.rho, config.initial_idle_estimate);
}

power::HybridPowerSource make_hybrid(const ExperimentConfig& config) {
  if (config.stacks.enabled) {
    return power::HybridPowerSource(
        stacks::make_multi_stack(config.stacks, config.efficiency),
        std::make_unique<power::SuperCapacitor>(config.storage_capacity,
                                                1.0));
  }
  return power::HybridPowerSource(
      std::make_unique<power::LinearFuelSource>(config.efficiency),
      std::make_unique<power::SuperCapacitor>(config.storage_capacity,
                                              1.0));
}

SimulationResult run_policy(PolicyKind kind,
                            const ExperimentConfig& config) {
  dpm::PredictiveDpmPolicy dpm_policy = make_dpm_policy(config);
  const std::unique_ptr<core::FcOutputPolicy> fc_policy =
      make_fc_policy(kind, config);
  power::HybridPowerSource hybrid = make_hybrid(config);

  SimulationOptions options = config.simulation;
  options.initial_storage = config.initial_storage;
  std::optional<cap::Governor> governor;
  if (config.cap.enabled && options.governor == nullptr) {
    governor.emplace(cap::make_governor(config.cap, config.efficiency));
    options.governor = &*governor;
  }
  // Reference-engine auditing: strict fails fast (the resilience layer
  // classifies the escape as contract_violation), sample records.
  // Tamper models a hot-engine defect; the reference run is the truth
  // it is checked against, so it never tampers here.
  std::optional<audit::Auditor> auditor;
  if (config.audit.enabled() && options.auditor == nullptr) {
    audit::AuditSpec spec = config.audit;
    spec.tamper_slot = audit::npos;
    auditor.emplace(spec, spec.mode == audit::Mode::Strict);
    options.auditor = &*auditor;
  }
  return simulate(config.trace, dpm_policy, *fc_policy, hybrid, options);
}

std::vector<double> PolicyComparison::normalized() const {
  return {1.0, normalized_fuel(asap, conv), normalized_fuel(fcdpm, conv)};
}

PolicyComparison compare_policies(const ExperimentConfig& config) {
  return {run_policy(PolicyKind::Conv, config),
          run_policy(PolicyKind::Asap, config),
          run_policy(PolicyKind::FcDpm, config)};
}

}  // namespace fcdpm::sim
