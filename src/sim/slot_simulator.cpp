#include "sim/slot_simulator.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "audit/audit.hpp"
#include "cap/governor.hpp"
#include "common/contracts.hpp"
#include "fault/injector.hpp"
#include "obs/profiler.hpp"
#include "sim/fault_guard.hpp"
#include "sim/observer_guard.hpp"
#include "stacks/multi_stack.hpp"

namespace fcdpm::sim {

namespace {

/// Execute one constant-device-current stretch, honoring the policy's
/// stop-charging-when-full request by splitting the segment at the
/// instant the buffer fills (ASAP's recharge rule). `trace_obs` is the
/// run's context when a consuming sink is attached and nullptr
/// otherwise (counter samples and the clock only matter to sinks, so
/// the null-sink path skips them entirely). Returns fuel burned.
Coulomb run_segment(power::HybridPowerSource& hybrid,
                    core::FcOutputPolicy& fc_policy,
                    const core::SegmentContext& context, Seconds duration,
                    ProfileRecorder* recorder, Coulomb& if_dt_accumulator,
                    obs::Context* trace_obs, obs::Profiler* profiler,
                    audit::Auditor* auditor, std::size_t slot_index) {
  const obs::ProfileScope profile(profiler, "sim.run_segment");
  const core::SegmentSetpoint sp = fc_policy.segment_setpoint(context);

  Seconds first_span = duration;
  if (sp.stop_charging_when_full &&
      sp.setpoint > context.device_current) {
    const Ampere net = sp.setpoint - context.device_current;
    const Seconds to_full = hybrid.storage().bus_charge_to_full() / net;
    first_span = min(duration, to_full);
  }

  Coulomb fuel{0.0};
  const power::SegmentResult first =
      hybrid.run_segment(first_span, context.device_current, sp.setpoint);
  fuel += first.fuel;
  if_dt_accumulator += first.actual_if * first_span;
  if (auditor != nullptr) {
    auditor->on_segment({slot_index, first_span.value(), &first});
  }
  if (recorder != nullptr) {
    recorder->record(first_span, context.device_current, first.actual_if,
                     hybrid.storage().charge());
  }
  if (trace_obs != nullptr) {
    trace_obs->counter("fc_output_A", first.actual_if.value());
    trace_obs->counter("load_A", context.device_current.value());
    trace_obs->advance(first_span);
    trace_obs->counter("storage_As", hybrid.storage().charge().value());
  }

  const Seconds remainder = duration - first_span;
  if (remainder.value() > 0.0) {
    // Buffer filled mid-segment: fall back to load following.
    const Ampere follow = clamp(context.device_current,
                                hybrid.source().min_output(),
                                hybrid.source().max_output());
    const power::SegmentResult rest =
        hybrid.run_segment(remainder, context.device_current, follow);
    fuel += rest.fuel;
    if_dt_accumulator += rest.actual_if * remainder;
    if (auditor != nullptr) {
      auditor->on_segment({slot_index, remainder.value(), &rest});
    }
    if (recorder != nullptr) {
      recorder->record(remainder, context.device_current, rest.actual_if,
                       hybrid.storage().charge());
    }
    if (trace_obs != nullptr) {
      trace_obs->counter("fc_output_A", rest.actual_if.value());
      trace_obs->advance(remainder);
      trace_obs->counter("storage_As", hybrid.storage().charge().value());
    }
  }
  return fuel;
}

}  // namespace

SimulationResult simulate(const wl::Trace& trace, dpm::DpmPolicy& dpm_policy,
                          core::FcOutputPolicy& fc_policy,
                          power::HybridPowerSource& hybrid,
                          const SimulationOptions& options) {
  trace.validate();
  const dpm::DevicePowerModel& device = dpm_policy.device();
  device.validate();

  const Coulomb capacity = hybrid.storage().capacity();
  Coulomb initial = hybrid.storage().charge();
  if (!options.preserve_source_state) {
    initial = (options.initial_storage.value() < 0.0)
                  ? capacity
                  : min(options.initial_storage, capacity);
    hybrid.reset(initial);
  }

  SimulationResult result;
  result.trace_name = trace.name();
  result.dpm_policy = dpm_policy.name();
  result.fc_policy = fc_policy.name();
  result.storage_initial = initial;
  result.slots = trace.size();

  ProfileRecorder recorder;
  recorder.set_limit(options.profile_limit);
  ProfileRecorder* rec = options.record_profiles ? &recorder : nullptr;
  if (rec != nullptr) {
    recorder.reserve_for_slots(trace.size());
  }
  if (options.keep_slot_records) {
    result.slot_records.reserve(trace.size());
  }

  // An inactive context (e.g. only a NullTraceSink attached) is
  // treated exactly like no observer at all.
  obs::Context* obs = (options.observer != nullptr &&
                       options.observer->active())
                          ? options.observer
                          : nullptr;
  // Resolved once: non-null only when events actually reach a sink.
  obs::Context* trace_obs =
      (obs != nullptr && obs->tracing()) ? obs : nullptr;
  obs::Profiler* profiler = obs != nullptr ? obs->profiler() : nullptr;
  const ObserverGuard observer_guard(obs, dpm_policy, fc_policy, hybrid);

  // Fault side-car: reset the injector's clock at run start unless this
  // run continues a previous pass (lifetime measurement), in which case
  // the fault timeline spans the passes.
  fault::FaultInjector* faults = options.faults;
  if (faults != nullptr && !options.preserve_source_state) {
    faults->reset();
  }
  const FaultGuard fault_guard(faults, fc_policy, hybrid);

  // Cap side-car: like faults, the governor's held-level state spans
  // passes when the run continues previous source state.
  cap::Governor* governor = options.governor;
  if (governor != nullptr && !options.preserve_source_state) {
    governor->reset();
  }
  // The load-following floor is a per-run characterization (every fuel
  // source returns a stored constant); the ceiling is re-read per slot
  // below, because a degrading multi-stack source lowers its deliverable
  // envelope as wear accrues and the governor must budget against the
  // live value. Constant sources return the same bits every slot.
  const double fc_floor_a =
      governor != nullptr ? hybrid.source().min_output().value() : 0.0;

  // Audit side-car: read-only observer of the integration, so attaching
  // one cannot change results. Fed per segment (above), per slot, and
  // once at run end.
  audit::Auditor* auditor = options.auditor;
  const double bus_v = device.bus_voltage.value();

  const obs::ProfileScope profile(profiler, "sim.simulate");
  if (trace_obs != nullptr) {
    trace_obs->span_begin("sim", "simulate",
                          {{"slots", static_cast<double>(trace.size())}});
  }

  for (std::size_t k = 0; k < trace.size(); ++k) {
    // Cancellation / deadline checkpoint: slot boundaries are the only
    // places a run may stop early, so a cancelled or over-budget run
    // leaves no half-integrated slot behind.
    if (options.cancel != nullptr) {
      options.cancel->beat();
      if (options.cancel->cancelled()) {
        throw CancelledError("simulation cancelled at slot " +
                             std::to_string(k) + " of " +
                             std::to_string(trace.size()));
      }
    }
    if (options.slot_budget != 0 && k >= options.slot_budget) {
      throw DeadlineExceededError(
          "slot budget exhausted: " + std::to_string(options.slot_budget) +
          " slots simulated, " + std::to_string(trace.size()) + " required");
    }
    const wl::TaskSlot& slot = trace[k];
    Ampere run_current = slot.active_power / device.bus_voltage;
    Seconds active_eff = device.standby_to_run_delay + slot.active +
                         device.run_to_standby_delay;
    const Coulomb fuel_before = hybrid.totals().fuel;
    const Joule delivered_before = hybrid.totals().delivered_energy;
    // Slots the auditor would ignore skip the audit plumbing entirely
    // (view construction included) — sample mode stays near-free.
    audit::Auditor* slot_auditor =
        (auditor != nullptr && auditor->wants_slot(k)) ? auditor : nullptr;

    // Faults visible at slot start: a load spike makes the device draw
    // more than the trace says (the policies are NOT told — they plan
    // against the nominal current, which is the point of the exercise).
    Coulomb usable_capacity = capacity;
    if (faults != nullptr) {
      const fault::ActiveFaults& af =
          faults->advance_to(hybrid.elapsed_time());
      if (af.load_scale != 1.0) {
        run_current = run_current * af.load_scale;
      }
      if (af.storage_derate < 1.0) {
        usable_capacity = capacity * af.storage_derate;
      }
    }

    // Closed capping loop: hand the governor this slot's demand plus
    // the live source envelope, and apply its (possibly throttled) plan
    // *before* any planner sees the slot — the policies then plan
    // against the capped current and the stretched active window.
    if (governor != nullptr) {
      cap::SlotDemand demand;
      demand.run_current_a = run_current.value();
      demand.active_s = active_eff.value();
      demand.bus_v = device.bus_voltage.value();
      double fc_max = hybrid.source().max_output().value();
      if (faults != nullptr) {
        const fault::ActiveFaults& af = faults->active();
        if (af.fc_dropout) {
          fc_max = 0.0;
        } else if (af.fc_output_derate < 1.0) {
          // Mirrors the hybrid's own fault clamp: the stack never
          // derates below its minimum sustained output.
          fc_max = std::max(fc_floor_a, fc_max * af.fc_output_derate);
        }
      }
      demand.fc_max_a = fc_max;
      demand.storage_charge_as = hybrid.storage().charge().value();
      const cap::SlotPlan cap_plan = governor->plan_slot(demand);
      if (cap_plan.capped) {
        result.latency_added += Seconds(cap_plan.active_s) - active_eff;
        run_current = Ampere(cap_plan.run_current_a);
        active_eff = Seconds(cap_plan.active_s);
        if (faults != nullptr) {
          ++faults->stats().capped_slots;
        }
        if (obs != nullptr) {
          obs->count("cap.capped_slots");
        }
      }
    }

    if (obs != nullptr) {
      if (trace_obs != nullptr) {
        trace_obs->span_begin("sim", "slot",
                              {{"index", static_cast<double>(k)}});
      }
      obs->count("sim.slots");
    }

    // --- idle phase --------------------------------------------------------
    dpm::IdlePlan plan = dpm_policy.plan_idle(slot.idle);
    if (plan.slept) {
      ++result.sleeps;
    }
    result.latency_added += plan.latency_spill;

    if (trace_obs != nullptr) {
      trace_obs->span_begin("sim", "idle",
                            {{"actual_s", slot.idle.value()},
                             {"predicted_s", plan.predicted_idle.value()},
                             {"slept", plan.slept ? 1.0 : 0.0}});
    }

    core::IdleContext idle_context;
    idle_context.slot_index = k;
    idle_context.will_sleep = plan.slept;
    idle_context.predicted_idle = plan.predicted_idle;
    idle_context.idle_current = plan.slept ? device.sleep_current()
                                           : device.standby_current();
    idle_context.storage_charge = hybrid.storage().charge();
    idle_context.storage_capacity = usable_capacity;
    idle_context.actual_idle = slot.idle;
    idle_context.actual_active = active_eff;
    idle_context.actual_active_current = run_current;
    if (faults != nullptr) {
      const fault::ActiveFaults& af = faults->active();
      if (af.sensor_noise_sigma > 0.0) {
        // Perturb the predictor's output (the sensor chain, not the
        // predictor state) with a deterministic relative noise draw.
        idle_context.predicted_idle =
            max(Seconds(0.01),
                idle_context.predicted_idle *
                    (1.0 + faults->noise(af.sensor_noise_sigma)));
      }
      idle_context.fc_output_derate = af.fc_output_derate;
      idle_context.fc_available = !af.fc_dropout;
    }
    fc_policy.on_idle_start(idle_context);

    Coulomb if_dt_idle{0.0};
    for (const dpm::IdleSegment& segment : plan.segments) {
      core::SegmentContext context;
      context.phase = core::Phase::Idle;
      context.state = segment.state;
      context.device_current = segment.current;
      context.storage_charge = hybrid.storage().charge();
      context.storage_capacity = usable_capacity;
      const char* segment_name =
          (segment.state == dpm::PowerState::Standby) ? "standby" : "sleep";
      if (trace_obs != nullptr) {
        trace_obs->span_begin("sim", segment_name,
                              {{"current_A", segment.current.value()},
                               {"duration_s", segment.duration.value()}});
      }
      run_segment(hybrid, fc_policy, context, segment.duration, rec,
                  if_dt_idle, trace_obs, profiler, slot_auditor, k);
      if (trace_obs != nullptr) {
        trace_obs->span_end("sim", segment_name);
      }
    }
    if (trace_obs != nullptr) {
      trace_obs->span_end("sim", "idle");
    }

    // --- active phase ------------------------------------------------------
    core::ActiveContext active_context;
    active_context.slot_index = k;
    active_context.active_duration = active_eff;
    active_context.active_current = run_current;
    active_context.storage_charge = hybrid.storage().charge();
    active_context.storage_capacity = usable_capacity;
    if (faults != nullptr) {
      // The active set may have shifted during the idle phase.
      const fault::ActiveFaults& af =
          faults->advance_to(hybrid.elapsed_time());
      active_context.fc_output_derate = af.fc_output_derate;
      active_context.fc_available = !af.fc_dropout;
      if (af.storage_derate < 1.0) {
        active_context.storage_capacity = capacity * af.storage_derate;
      }
    }
    fc_policy.on_active_start(active_context);

    core::SegmentContext context;
    context.phase = core::Phase::Active;
    context.state = dpm::PowerState::Run;
    context.device_current = run_current;
    context.storage_charge = hybrid.storage().charge();
    context.storage_capacity = usable_capacity;
    Coulomb if_dt_active{0.0};
    if (trace_obs != nullptr) {
      trace_obs->span_begin("sim", "active",
                            {{"duration_s", active_eff.value()},
                             {"current_A", run_current.value()}});
    }
    run_segment(hybrid, fc_policy, context, active_eff, rec, if_dt_active,
                trace_obs, profiler, slot_auditor, k);
    if (trace_obs != nullptr) {
      trace_obs->span_end("sim", "active");
    }

    // --- bookkeeping -------------------------------------------------------
    dpm_policy.observe_idle(slot.idle);

    core::SlotObservation observation;
    observation.slot_index = k;
    observation.actual_idle = slot.idle;
    observation.actual_active = active_eff;
    observation.actual_active_current = run_current;
    observation.storage_charge = hybrid.storage().charge();
    observation.delivered_charge = if_dt_idle + if_dt_active;
    observation.fuel_used = hybrid.totals().fuel - fuel_before;
    fc_policy.on_slot_end(observation);

    if (slot_auditor != nullptr) {
      audit::SlotAudit view;
      view.slot = k;
      view.bus_v = bus_v;
      view.fuel_before = fuel_before.value();
      view.fuel_after = hybrid.totals().fuel.value();
      view.delivered_before = delivered_before.value();
      view.delivered_after = hybrid.totals().delivered_energy.value();
      view.if_dt = (if_dt_idle + if_dt_active).value();
      view.storage_charge = hybrid.storage().charge().value();
      view.storage_capacity = usable_capacity.value();
      slot_auditor->on_slot(view);
    }

    if (options.keep_slot_records) {
      SlotRecord record;
      record.index = k;
      record.idle = slot.idle;
      record.active = active_eff;
      record.slept = plan.slept;
      const Seconds idle_span = plan.total_duration();
      record.if_idle = (idle_span.value() > 0.0) ? if_dt_idle / idle_span
                                                 : Ampere(0.0);
      record.if_active = if_dt_active / active_eff;
      record.fuel = hybrid.totals().fuel - fuel_before;
      record.fuel_end = hybrid.totals().fuel;
      record.storage_end = hybrid.storage().charge();
      record.latency = plan.latency_spill;
      result.slot_records.push_back(record);
    }
    if (trace_obs != nullptr) {
      trace_obs->span_end("sim", "slot");
    }
  }

  if (trace_obs != nullptr) {
    trace_obs->span_end("sim", "simulate");
  }

  result.totals = hybrid.totals();
  result.storage_end = hybrid.storage().charge();
  result.storage_min = hybrid.min_storage_seen();
  result.storage_max = hybrid.max_storage_seen();

  if (faults != nullptr) {
    (void)faults->advance_to(hybrid.elapsed_time());
    result.robustness = faults->stats();
    if (obs != nullptr && obs->metering()) {
      obs->gauge("fault.degraded_s",
                 result.robustness->degraded_time.value());
      obs->gauge("fault.recovery_s",
                 result.robustness->recovery_time.value());
    }
  }

  if (governor != nullptr) {
    result.cap = governor->stats();
    if (obs != nullptr && obs->metering()) {
      obs->gauge("cap.slots_capped",
                 static_cast<double>(result.cap->slots_capped));
      obs->gauge("cap.energy_deferred_j",
                 result.cap->energy_deferred.value());
      obs->gauge("cap.time_deferred_s", result.cap->time_deferred.value());
      obs->gauge("cap.budget_violations",
                 static_cast<double>(result.cap->budget_violations));
    }
  }

  if (const auto* multi = dynamic_cast<const stacks::MultiStackFuelSource*>(
          &hybrid.source())) {
    result.stacks = multi->stats();
    if (obs != nullptr && obs->metering()) {
      obs->gauge("stacks.count",
                 static_cast<double>(result.stacks->stacks.size()));
      obs->gauge("stacks.startups",
                 static_cast<double>(result.stacks->total_startups()));
      obs->gauge("stacks.delivered_as", result.stacks->total_delivered_as());
      obs->gauge("stacks.max_wear", result.stacks->max_wear());
    }
  }

  if (auditor != nullptr) {
    Coulomb usable_end = capacity;
    if (faults != nullptr && faults->active().storage_derate < 1.0) {
      usable_end = capacity * faults->active().storage_derate;
    }
    audit::EndAudit end;
    end.totals = &result.totals;
    end.storage_end = result.storage_end.value();
    end.storage_capacity = usable_end.value();
    end.slots = result.slots;
    end.cap = result.cap.has_value() ? &*result.cap : nullptr;
    end.stacks = result.stacks.has_value() ? &*result.stacks : nullptr;
    auditor->on_run_end(end);
    result.audit = auditor->stats();
    if (obs != nullptr && obs->metering()) {
      obs->gauge("audit.slots_audited",
                 static_cast<double>(result.audit->slots_audited));
      obs->gauge("audit.checks_run",
                 static_cast<double>(result.audit->checks_run));
      obs->gauge("audit.violations",
                 static_cast<double>(result.audit->violations));
      obs->gauge("audit.engine_fallbacks",
                 static_cast<double>(result.audit->engine_fallbacks));
    }
  }

  if (const auto* predictive =
          dynamic_cast<const dpm::PredictiveDpmPolicy*>(&dpm_policy)) {
    result.idle_accuracy = predictive->accuracy();
  }
  if (options.record_profiles) {
    result.profiles = std::move(recorder);
  }
  return result;
}

SimulationResult simulate_paper_hybrid(const wl::Trace& trace,
                                       dpm::DpmPolicy& dpm_policy,
                                       core::FcOutputPolicy& fc_policy,
                                       const SimulationOptions& options) {
  power::HybridPowerSource hybrid = power::HybridPowerSource::paper_hybrid();
  return simulate(trace, dpm_policy, fc_policy, hybrid, options);
}

}  // namespace fcdpm::sim
