// Results and derived metrics of one policy run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "cap/stats.hpp"
#include "common/units.hpp"
#include "dpm/predictors.hpp"
#include "fault/fault.hpp"
#include "power/hybrid.hpp"
#include "sim/recorder.hpp"
#include "stacks/multi_stack.hpp"

namespace fcdpm::sim {

/// Per-slot accounting (kept when SimulationOptions.keep_slot_records).
struct SlotRecord {
  std::size_t index = 0;
  Seconds idle{0.0};
  Seconds active{0.0};   ///< effective (incl. RUN transitions)
  bool slept = false;
  Ampere if_idle{0.0};   ///< time-averaged FC output over the idle phase
  Ampere if_active{0.0};
  Coulomb fuel{0.0};          ///< fuel burned within this slot
  /// Cumulative `hybrid.totals().fuel` at slot end — the same series the
  /// lifetime emptiness test reads, so walking `fuel_end` reconciles
  /// exactly with the pass total (re-summing per-slot `fuel` does not,
  /// by accumulated rounding).
  Coulomb fuel_end{0.0};
  Coulomb storage_end{0.0};
  Seconds latency{0.0};
};

/// Complete result of simulating one (DPM policy, FC policy) pair.
struct SimulationResult {
  std::string trace_name;
  std::string dpm_policy;
  std::string fc_policy;

  power::HybridTotals totals;
  std::size_t slots = 0;
  std::size_t sleeps = 0;
  Seconds latency_added{0.0};

  Coulomb storage_initial{0.0};
  Coulomb storage_end{0.0};
  Coulomb storage_min{0.0};
  Coulomb storage_max{0.0};

  std::optional<dpm::PredictionAccuracy> idle_accuracy;
  std::vector<SlotRecord> slot_records;
  std::optional<ProfileRecorder> profiles;

  /// Robustness accounting of the run; present iff a fault injector was
  /// attached (even an empty schedule yields zeroed stats).
  std::optional<fault::RobustnessStats> robustness;

  /// Capping accounting of the run; present iff a cap::Governor was
  /// attached (a run the governor never throttled yields zeroed
  /// counters and a full time-at-top-level histogram).
  std::optional<cap::CapStats> cap;

  /// Per-stack accounting; present iff the hybrid's fuel source was a
  /// stacks::MultiStackFuelSource.
  std::optional<stacks::StacksStats> stacks;

  /// Invariant-audit accounting; present iff an audit::Auditor was
  /// attached (a clean run yields zeroed violation counters).
  std::optional<audit::AuditStats> audit;

  /// The paper's headline metric: fuel consumed, in stack A-s.
  [[nodiscard]] Coulomb fuel() const { return totals.fuel; }

  /// Time-averaged fuel (stack) current.
  [[nodiscard]] Ampere average_fuel_current() const;

  /// Operational lifetime on `tank` of fuel at this run's average burn
  /// rate (lifetime is inversely proportional to fuel consumption).
  [[nodiscard]] Seconds lifetime_on(Coulomb tank) const;
};

/// fuel(result) / fuel(baseline) — Table 2/3's "normalized fuel
/// consumption"; requires baseline fuel > 0.
[[nodiscard]] double normalized_fuel(const SimulationResult& result,
                                     const SimulationResult& baseline);

/// Lifetime-extension factor of `result` over `other` (inverse fuel
/// ratio; the paper's "1.32x").
[[nodiscard]] double lifetime_extension(const SimulationResult& result,
                                        const SimulationResult& other);

/// Fuel saving of `result` relative to `other` (the paper's "FC-DPM
/// saves 24.4 % more fuel than ASAP-DPM").
[[nodiscard]] double fuel_saving(const SimulationResult& result,
                                 const SimulationResult& other);

}  // namespace fcdpm::sim
