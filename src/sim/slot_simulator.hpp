// Slot-level simulator: exact piecewise-constant integration of a trace
// under a (DPM policy, FC output policy) pair over the hybrid source.
//
// Per slot: the DPM policy lays the idle period out (standby, or
// power-down / sleep / wake-up); the FC policy is consulted at idle
// start, per segment, and again at active start (with the actual Ta and
// Ild,a, per Section 4.2). STANDBY<->RUN transitions extend the active
// phase at run power (Section 3.3.2's absorption rule).
#pragma once

#include <memory>

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "obs/context.hpp"
#include "power/hybrid.hpp"
#include "sim/cancellation.hpp"
#include "sim/metrics.hpp"
#include "workload/trace.hpp"

namespace fcdpm::fault {
class FaultInjector;
}

namespace fcdpm::cap {
class Governor;
}

namespace fcdpm::audit {
class Auditor;
}

namespace fcdpm::sim {

/// Which slot-loop implementation executes a run. Both produce
/// bit-identical results; the reference loop stays as the differential
/// oracle the hot engine is tested against.
enum class Engine {
  Reference,  ///< sim::simulate's virtual-dispatch loop (the oracle)
  Hot,        ///< fcdpm::hot — compiled trace, allocation-free slot loop
  Batched,    ///< fcdpm::batch — SoA multi-point slot loop over hot lanes
};

struct SimulationOptions {
  /// Buffer charge at t = 0; negative means "start full". Default is
  /// empty: FC-DPM pins its end-of-slot target to the initial charge
  /// (Cini(1), Section 3.3.1), and an empty buffer gives it the headroom
  /// its idle-phase charging needs — matching the paper's motivational
  /// example where Cini = 0.
  Coulomb initial_storage{0.0};
  bool record_profiles = false;
  /// Record only this much simulated time (0 = all); Figure 7 uses 300 s.
  Seconds profile_limit{0.0};
  bool keep_slot_records = false;
  /// Continue from the hybrid source's current state instead of
  /// resetting it (multi-pass runs, e.g. lifetime measurement). Totals
  /// then accumulate across calls.
  bool preserve_source_state = false;
  /// Opt-in observability (tracing, metrics, profiling). The simulator
  /// attaches it to the policies and the hybrid source for the duration
  /// of the run and restores their previous observers on return; the
  /// context's simulated clock advances with the run. Not owned.
  /// nullptr (the default) keeps the hot path allocation-free and the
  /// results bit-identical.
  obs::Context* observer = nullptr;
  /// Opt-in fault injection. The simulator resets the injector at run
  /// start (unless preserve_source_state continues a previous pass, so
  /// the fault timeline spans passes), attaches it to the hybrid source
  /// and the FC policy for the duration of the run, and copies its
  /// RobustnessStats into SimulationResult::robustness. Not owned.
  /// nullptr (the default) keeps results bit-identical to a build
  /// without the fault subsystem.
  fault::FaultInjector* faults = nullptr;
  /// Opt-in dynamic power capping. The simulator resets the governor at
  /// run start (unless preserve_source_state continues a previous pass),
  /// consults it once per slot before the planners see the slot, and
  /// copies its CapStats into SimulationResult::cap. Not owned. nullptr
  /// (the default) keeps results bit-identical to a build without the
  /// cap subsystem.
  cap::Governor* governor = nullptr;
  /// Opt-in runtime invariant auditing. The simulator feeds the auditor
  /// read-only per-segment/per-slot/run-end views; the auditor never
  /// mutates simulation state, so results are bit-identical with it
  /// attached. Its stats are copied into SimulationResult::audit. A
  /// fail-fast auditor may throw audit::AuditError from a slot
  /// boundary; the dispatchers (par::run_point, the CLI) self-heal a
  /// hot-engine throw by replaying on the reference engine. Not owned.
  audit::Auditor* auditor = nullptr;
  /// Opt-in cooperative cancellation. Checked (and `beat()`) once per
  /// slot boundary; a cancelled token makes simulate() throw
  /// CancelledError. Not owned. nullptr (the default) costs one pointer
  /// compare per slot and changes nothing else.
  CancellationToken* cancel = nullptr;
  /// Deterministic per-run deadline: the maximum number of slots this
  /// call may simulate before throwing DeadlineExceededError (0 = no
  /// limit). Simulated-slot based, so the same point exceeds (or meets)
  /// its deadline identically on any machine.
  std::size_t slot_budget = 0;
  /// Which engine executes the run. sim::simulate itself always runs the
  /// reference loop; dispatchers that know about the hot engine
  /// (hot::simulate, par::run_sweep, the CLI) consult this field.
  Engine engine = Engine::Reference;
};

/// Simulate `trace` with the given policies over `hybrid`. The policies
/// and the hybrid source are mutated (they are stateful); pass fresh
/// instances per run.
[[nodiscard]] SimulationResult simulate(const wl::Trace& trace,
                                        dpm::DpmPolicy& dpm_policy,
                                        core::FcOutputPolicy& fc_policy,
                                        power::HybridPowerSource& hybrid,
                                        const SimulationOptions& options = {});

/// Convenience overload: builds the paper's hybrid source internally.
[[nodiscard]] SimulationResult simulate_paper_hybrid(
    const wl::Trace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, const SimulationOptions& options = {});

}  // namespace fcdpm::sim
