// Direct lifetime measurement: loop a workload until a finite fuel tank
// runs dry. This is the paper's headline metric ("up to 32 % more system
// lifetime") measured head-on rather than inferred from fuel ratios —
// the two must agree because fuel burn is stationary across passes.
#pragma once

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "power/hybrid.hpp"
#include "sim/metrics.hpp"
#include "sim/slot_simulator.hpp"
#include "workload/trace.hpp"

namespace fcdpm::sim {

struct LifetimeOptions {
  /// Tank size in fuel A-s (stack charge).
  Coulomb tank{3600.0};
  SimulationOptions simulation;
  /// Safety bound on workload repetitions.
  std::size_t max_passes = 100000;
};

struct LifetimeResult {
  /// Operational time until the tank emptied.
  Seconds lifetime{0.0};
  /// Whole task slots completed before the cutoff.
  std::size_t slots_completed = 0;
  /// Full passes over the workload.
  std::size_t passes = 0;
  /// True when the tank actually emptied within max_passes.
  bool tank_emptied = false;
  /// Average fuel current over the measured life.
  Ampere average_fuel_current{0.0};
};

/// Measure the operational lifetime of (dpm, fc) on `trace`, looping the
/// trace until `options.tank` of fuel is burned. Policies keep their
/// state across passes (steady-state behaviour, as on a real device).
[[nodiscard]] LifetimeResult measure_lifetime(
    const wl::Trace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, power::HybridPowerSource& hybrid,
    const LifetimeOptions& options);

}  // namespace fcdpm::sim
