// Direct lifetime measurement: loop a workload until a finite fuel tank
// runs dry. This is the paper's headline metric ("up to 32 % more system
// lifetime") measured head-on rather than inferred from fuel ratios —
// the two must agree because fuel burn is stationary across passes.
//
// Stationarity is also what makes the measurement cheap: once the
// policies and the buffer settle into a periodic steady state, every
// further pass is bit-identical, and the remaining passes can be
// answered arithmetically instead of re-simulated (the steady-state
// fast path below).
#pragma once

#include <span>

#include "core/fc_policy.hpp"
#include "dpm/dpm_policy.hpp"
#include "power/hybrid.hpp"
#include "sim/metrics.hpp"
#include "sim/slot_simulator.hpp"
#include "workload/trace.hpp"

namespace fcdpm::sim {

/// Pluggable single-pass engine for measure_lifetime: same signature as
/// sim::simulate plus an opaque context. Lets fcdpm::hot run the passes
/// through its compiled-trace loop without sim depending on hot (the
/// dependency points the other way).
using PassEngine = SimulationResult (*)(const wl::Trace& trace,
                                        dpm::DpmPolicy& dpm_policy,
                                        core::FcOutputPolicy& fc_policy,
                                        power::HybridPowerSource& hybrid,
                                        const SimulationOptions& options,
                                        void* ctx);

struct LifetimeOptions {
  /// Tank size in fuel A-s (stack charge).
  Coulomb tank{3600.0};
  SimulationOptions simulation;
  /// Engine executing each pass; nullptr (default) = sim::simulate.
  /// Any non-null engine must be bit-identical to the reference — the
  /// crossing-pass re-run contract (`recorded fuel == pass fuel`) and
  /// the steady-state signature comparison both assume it.
  PassEngine engine = nullptr;
  /// Opaque pointer handed to `engine` on every call (e.g. the
  /// hot engine's CompiledTrace). Not owned.
  void* engine_ctx = nullptr;
  /// Safety bound on workload repetitions.
  std::size_t max_passes = 100000;
  /// Steady-state fast path: once `convergence_passes` consecutive
  /// passes produce bit-identical pass-level results (fuel, duration,
  /// end-of-pass storage, sleeps, latency, bleed, unserved), the
  /// remaining whole passes are extrapolated by replaying exactly the
  /// additions the simulated passes would have performed — the answer
  /// (lifetime, pass count, slot count, average current) is
  /// bit-identical to the brute-force loop, and the crossing pass is
  /// still simulated and interpolated. The fast path is skipped when a
  /// fault injector is attached: faults live on the absolute timeline
  /// and an extrapolated pass could silently jump a future fault window.
  bool steady_state = true;
  /// Consecutive bit-identical passes required before extrapolating.
  std::size_t convergence_passes = 3;
};

struct LifetimeResult {
  /// Operational time until the tank emptied.
  Seconds lifetime{0.0};
  /// Whole task slots completed before the cutoff.
  std::size_t slots_completed = 0;
  /// Full passes over the workload.
  std::size_t passes = 0;
  /// True when the tank actually emptied within max_passes.
  bool tank_emptied = false;
  /// Average fuel current over the measured life; 0 when the measured
  /// lifetime is zero (degenerate crossing), never Inf.
  Ampere average_fuel_current{0.0};
  /// Passes actually executed by the simulator. The crossing pass
  /// counts once; its record-keeping re-run is counted separately.
  std::size_t simulated_passes = 0;
  /// Whole passes answered arithmetically by the steady-state fast path.
  std::size_t extrapolated_passes = 0;
  /// Passes simulated with slot records kept — at most 1: only the
  /// crossing pass is re-run (from a pre-pass snapshot) with records.
  std::size_t record_passes = 0;
};

/// Where the tank ran dry within the crossing pass.
struct CrossingPoint {
  /// Time into the pass at the interpolated crossing instant.
  Seconds elapsed_in_pass{0.0};
  /// Whole slots completed inside the pass before the crossing slot.
  std::size_t slots_completed = 0;
  /// False when the records never reach `tank` (caller contract bug).
  bool crossed = false;
};

/// Walk the crossing pass's slot records against the cumulative fuel
/// series `fuel_start + record.fuel_end` — the same accumulator the
/// emptiness test reads, so if the pass total crossed the tank the walk
/// is guaranteed to find the crossing slot (re-summing per-slot
/// `record.fuel` deltas is NOT: accumulated rounding lets the re-sum
/// fall short of the pass total and the walk overrun by a whole pass).
/// Interpolates linearly inside the crossing slot. Exposed for tests.
[[nodiscard]] CrossingPoint resolve_crossing(
    std::span<const SlotRecord> records, Coulomb fuel_start, Coulomb tank);

/// Measure the operational lifetime of (dpm, fc) on `trace`, looping the
/// trace until `options.tank` of fuel is burned. Policies keep their
/// state across passes (steady-state behaviour, as on a real device).
/// Between passes the hybrid's totals are folded into its epoch clock
/// (`HybridPowerSource::reset_totals`), so on return `hybrid.totals()`
/// covers only the final simulated pass while `hybrid.elapsed_time()`
/// spans the whole measurement.
[[nodiscard]] LifetimeResult measure_lifetime(
    const wl::Trace& trace, dpm::DpmPolicy& dpm_policy,
    core::FcOutputPolicy& fc_policy, power::HybridPowerSource& hybrid,
    const LifetimeOptions& options);

}  // namespace fcdpm::sim
