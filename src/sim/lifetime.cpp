#include "sim/lifetime.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/contracts.hpp"
#include "fault/injector.hpp"

namespace fcdpm::sim {

namespace {

/// Everything that characterizes one pass at pass resolution. Two
/// passes with equal signatures burned the same fuel, took the same
/// time and left the buffer in the same place bit-for-bit; a run of
/// `convergence_passes` equal signatures is the steady-state criterion.
struct PassSignature {
  Coulomb fuel{0.0};
  Seconds duration{0.0};
  Coulomb bled{0.0};
  Coulomb unserved{0.0};
  Coulomb storage_end{0.0};
  Seconds latency{0.0};
  std::size_t sleeps = 0;

  friend bool operator==(const PassSignature&,
                         const PassSignature&) = default;
};

PassSignature signature_of(const SimulationResult& r) {
  return PassSignature{r.totals.fuel,     r.totals.duration,
                       r.totals.bled,     r.totals.unserved,
                       r.storage_end,     r.latency_added,
                       r.sleeps};
}

}  // namespace

CrossingPoint resolve_crossing(std::span<const SlotRecord> records,
                               Coulomb fuel_start, Coulomb tank) {
  CrossingPoint point;
  Coulomb previous_end = fuel_start;
  for (const SlotRecord& record : records) {
    const Coulomb cumulative = fuel_start + record.fuel_end;
    const Seconds slot_span = record.idle + record.active + record.latency;
    if (cumulative < tank) {
      previous_end = cumulative;
      point.elapsed_in_pass += slot_span;
      ++point.slots_completed;
      continue;
    }
    // Linear interpolation inside the crossing slot (fuel accrues
    // piecewise-linearly in time; the error is bounded by one slot).
    const double need = (tank - previous_end).value();
    const double slot_fuel = (cumulative - previous_end).value();
    const double fraction = slot_fuel > 0.0 ? need / slot_fuel : 1.0;
    point.elapsed_in_pass += slot_span * std::clamp(fraction, 0.0, 1.0);
    point.crossed = true;
    break;
  }
  return point;
}

LifetimeResult measure_lifetime(const wl::Trace& trace,
                                dpm::DpmPolicy& dpm_policy,
                                core::FcOutputPolicy& fc_policy,
                                power::HybridPowerSource& hybrid,
                                const LifetimeOptions& options) {
  FCDPM_EXPECTS(options.tank.value() > 0.0, "tank must be positive");
  FCDPM_EXPECTS(!trace.empty(), "lifetime needs a non-empty workload");
  FCDPM_EXPECTS(options.convergence_passes >= 1,
                "convergence needs at least one pass");

  LifetimeResult result;

  // Every pass (including the crossing re-run) goes through the same
  // engine so the signature comparison and the re-run contract compare
  // like with like.
  const auto run_pass = [&options](const wl::Trace& t, dpm::DpmPolicy& d,
                                   core::FcOutputPolicy& f,
                                   power::HybridPowerSource& h,
                                   const SimulationOptions& o) {
    return options.engine != nullptr
               ? options.engine(t, d, f, h, o, options.engine_ctx)
               : simulate(t, d, f, h, o);
  };

  // Passes run recordless; only the crossing pass is re-run with slot
  // records on, from a snapshot taken just before it.
  SimulationOptions pass_options = options.simulation;
  pass_options.keep_slot_records = false;

  Coulomb fuel_cum{0.0};
  Seconds elapsed{0.0};

  // Faults are scheduled on the absolute timeline; extrapolated passes
  // would jump over future fault windows, so they disable the fast path.
  const bool fast_path =
      options.steady_state && options.simulation.faults == nullptr;
  std::optional<PassSignature> last_signature;
  std::size_t identical_streak = 1;

  while (result.passes < options.max_passes) {
    // Pre-pass snapshot: if the tank empties within this pass it is
    // re-run from here with records on (bit-identical — records do not
    // feed back into the arithmetic) to drive the crossing walk.
    auto dpm_snapshot = dpm_policy.clone();
    auto fc_snapshot = fc_policy.clone();
    power::HybridPowerSource hybrid_snapshot = hybrid.clone();
    std::optional<fault::FaultInjector> fault_snapshot;
    if (pass_options.faults != nullptr) {
      fault_snapshot.emplace(*pass_options.faults);
    }
    const SimulationOptions snapshot_options = pass_options;

    const SimulationResult r =
        run_pass(trace, dpm_policy, fc_policy, hybrid, pass_options);
    // Subsequent passes continue from the current source state.
    pass_options.preserve_source_state = true;

    const Coulomb pass_fuel = r.totals.fuel;
    const Seconds pass_duration = r.totals.duration;
    // Contract check before any result mutation: a failed expectation
    // must not leave a half-updated result behind.
    FCDPM_EXPECTS(pass_fuel.value() > 0.0,
                  "workload burns no fuel; lifetime unbounded");
    ++result.simulated_passes;

    const Coulomb fuel_after = fuel_cum + pass_fuel;
    if (fuel_after < options.tank) {
      // Pass-local accounting: fold this pass into the epoch clock so
      // the next pass accumulates from zero — in steady state,
      // bit-identically to this one.
      hybrid.reset_totals();
      fuel_cum = fuel_after;
      elapsed += pass_duration;
      ++result.passes;
      result.slots_completed += r.slots;

      const PassSignature signature = signature_of(r);
      if (last_signature.has_value() && signature == *last_signature) {
        ++identical_streak;
      } else {
        identical_streak = 1;
      }
      last_signature = signature;

      if (fast_path && identical_streak >= options.convergence_passes) {
        // Steady state: replay exactly the additions the remaining
        // whole passes would have performed. Bit-identical to running
        // them, at pass-arithmetic cost.
        while (result.passes < options.max_passes &&
               fuel_cum + pass_fuel < options.tank) {
          fuel_cum = fuel_cum + pass_fuel;
          elapsed += pass_duration;
          ++result.passes;
          ++result.extrapolated_passes;
          result.slots_completed += r.slots;
        }
        // Either the next pass crosses (the loop simulates it), or
        // max_passes is exhausted (the loop exits).
      }
      continue;
    }

    // The tank empties within this pass: re-run it from the pre-pass
    // snapshot with slot records on. The observer is detached (its
    // events were already emitted by the first run) and the fault
    // timeline replays from its own snapshot.
    SimulationOptions record_options = snapshot_options;
    record_options.keep_slot_records = true;
    record_options.record_profiles = false;
    record_options.observer = nullptr;
    record_options.faults =
        fault_snapshot.has_value() ? &*fault_snapshot : nullptr;
    const SimulationResult recorded = run_pass(
        trace, *dpm_snapshot, *fc_snapshot, hybrid_snapshot, record_options);
    ++result.record_passes;
    FCDPM_ENSURES(recorded.totals.fuel == pass_fuel,
                  "crossing-pass re-run diverged from the measured pass "
                  "(lossy policy or source clone)");

    // Walk the records against the same cumulative series the emptiness
    // test used; the last record carries `fuel_end == pass_fuel`, so the
    // crossing slot is guaranteed to be found.
    const CrossingPoint point =
        resolve_crossing(recorded.slot_records, fuel_cum, options.tank);
    FCDPM_ENSURES(point.crossed, "crossing walk missed the emptying slot");

    result.lifetime = elapsed + point.elapsed_in_pass;
    result.slots_completed += point.slots_completed;
    ++result.passes;
    result.tank_emptied = true;
    result.average_fuel_current = result.lifetime.value() > 0.0
                                      ? options.tank / result.lifetime
                                      : Ampere(0.0);
    return result;
  }

  // Tank outlived max_passes: report what was measured.
  result.lifetime = elapsed;
  result.tank_emptied = false;
  if (elapsed.value() > 0.0) {
    result.average_fuel_current = fuel_cum / elapsed;
  }
  return result;
}

}  // namespace fcdpm::sim
