#include "sim/lifetime.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace fcdpm::sim {

LifetimeResult measure_lifetime(const wl::Trace& trace,
                                dpm::DpmPolicy& dpm_policy,
                                core::FcOutputPolicy& fc_policy,
                                power::HybridPowerSource& hybrid,
                                const LifetimeOptions& options) {
  FCDPM_EXPECTS(options.tank.value() > 0.0, "tank must be positive");
  FCDPM_EXPECTS(!trace.empty(), "lifetime needs a non-empty workload");

  LifetimeResult result;

  Coulomb fuel_before_pass{0.0};
  Seconds elapsed{0.0};

  SimulationOptions pass_options = options.simulation;
  pass_options.keep_slot_records = true;

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    const SimulationResult r =
        simulate(trace, dpm_policy, fc_policy, hybrid, pass_options);
    // Subsequent passes continue from the current source state.
    pass_options.preserve_source_state = true;

    const Coulomb pass_fuel = hybrid.totals().fuel - fuel_before_pass;
    if (hybrid.totals().fuel < options.tank) {
      fuel_before_pass = hybrid.totals().fuel;
      elapsed = r.totals.duration;  // totals are cumulative across passes
      result.passes = pass + 1;
      result.slots_completed += r.slots;
      FCDPM_EXPECTS(pass_fuel.value() > 0.0,
                    "workload burns no fuel; lifetime unbounded");
      continue;
    }

    // The tank empties within this pass: walk the slot records.
    Coulomb cumulative = fuel_before_pass;
    Seconds pass_elapsed{0.0};
    for (const SlotRecord& record : r.slot_records) {
      const Seconds slot_span =
          record.idle + record.active + record.latency;
      if (cumulative + record.fuel < options.tank) {
        cumulative += record.fuel;
        pass_elapsed += slot_span;
        ++result.slots_completed;
        continue;
      }
      // Linear interpolation inside the crossing slot (fuel accrues
      // piecewise-linearly in time; the error is bounded by one slot).
      const double need = (options.tank - cumulative).value();
      const double fraction =
          record.fuel.value() > 0.0 ? need / record.fuel.value() : 1.0;
      pass_elapsed += slot_span * std::min(1.0, fraction);
      break;
    }

    result.lifetime = elapsed + pass_elapsed;
    result.tank_emptied = true;
    result.passes = pass + 1;
    result.average_fuel_current = options.tank / result.lifetime;
    return result;
  }

  // Tank outlived max_passes: report what was measured.
  result.lifetime = elapsed;
  result.tank_emptied = false;
  if (elapsed.value() > 0.0) {
    result.average_fuel_current = fuel_before_pass / elapsed;
  }
  return result;
}

}  // namespace fcdpm::sim
