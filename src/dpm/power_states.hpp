// Device-side power model: the RUN / STANDBY / SLEEP abstraction of the
// paper's Figure 6, including transition overheads and the DPM break-even
// time Tbe (Benini et al., the paper's reference [4]).
//
// All powers are on the regulated 12 V bus; currents are power / 12 V.
#pragma once

#include <string>

#include "common/units.hpp"

namespace fcdpm::dpm {

/// Device power states. RUN serves the task; an idle period is spent in
/// STANDBY, or in SLEEP when the predicted idle time justifies the
/// transition overhead.
enum class PowerState { Run, Standby, Sleep };

[[nodiscard]] const char* to_string(PowerState state);

/// Static power/timing description of a DPM-managed device.
struct DevicePowerModel {
  Volt bus_voltage{12.0};

  Watt run_power{14.65};      ///< default active power (trace may override)
  Watt standby_power{4.84};
  Watt sleep_power{2.40};

  /// SLEEP entry (power-down) and exit (wake-up) overheads.
  Seconds power_down_delay{0.5};
  Watt power_down_power{4.84};
  Seconds wake_up_delay{0.5};
  Watt wake_up_power{4.84};

  /// STANDBY <-> RUN transition times; their energy is absorbed into the
  /// active period (the transitions run at active power, Section 3.3.2).
  Seconds standby_to_run_delay{1.5};
  Seconds run_to_standby_delay{0.5};

  /// The paper's DVD camcorder (Figure 6). Tbe computes to 1 s.
  [[nodiscard]] static DevicePowerModel dvd_camcorder();

  /// The synthetic device of Experiment 2: 1 s / 1.2 A sleep transitions.
  /// Tbe computes to ~10 s.
  [[nodiscard]] static DevicePowerModel experiment2_device();

  [[nodiscard]] Ampere run_current() const;
  [[nodiscard]] Ampere standby_current() const;
  [[nodiscard]] Ampere sleep_current() const;
  [[nodiscard]] Ampere power_down_current() const;
  [[nodiscard]] Ampere wake_up_current() const;

  [[nodiscard]] Ampere current_in(PowerState state) const;

  /// Combined SLEEP entry+exit delay.
  [[nodiscard]] Seconds sleep_transition_delay() const;

  /// Charge cost of a full SLEEP entry+exit pair.
  [[nodiscard]] Coulomb sleep_transition_charge() const;

  /// DPM break-even time: the idle length at which sleeping and staying
  /// in STANDBY cost the same energy,
  ///
  ///   Tbe = max( tPD + tWU,
  ///              (tPD*P_PD + tWU*P_WU - (tPD+tWU)*P_sleep)
  ///                / (P_standby - P_sleep) )
  ///
  /// Requires standby_power > sleep_power.
  [[nodiscard]] Seconds break_even_time() const;

  /// Sanity checks (positive powers, standby > sleep, non-negative
  /// delays); throws PreconditionError on violation.
  void validate() const;
};

}  // namespace fcdpm::dpm
