// Distribution-based DPM (the paper's related-work family [4]/[5]:
// stochastic control built on the probabilities of idle behaviour).
//
// Instead of a point prediction, the policy learns the empirical
// distribution of idle durations and sleeps iff the *expected* energy of
// sleeping beats the expected energy of staying in STANDBY:
//
//   E[standby] = P_sdb * E[T]
//   E[sleep]   = E_tr + P_slp * E[max(T - t_tr, 0)]
//                     + P_sdb * E[latency spill]     (T below t_tr)
//
// computed over the learned histogram. With a deterministic workload it
// converges to the break-even rule; with a heavy-tailed one it can beat
// point-prediction policies that mispredict around Tbe.
#pragma once

#include <deque>
#include <memory>

#include "dpm/dpm_policy.hpp"

namespace fcdpm::dpm {

class StochasticDpmPolicy final : public DpmPolicy {
 public:
  /// Learns over a sliding window of `window` observed idles (>= 4);
  /// until `warmup` observations arrive it falls back to the
  /// break-even rule on `initial_estimate`.
  StochasticDpmPolicy(DevicePowerModel device, std::size_t window,
                      std::size_t warmup, Seconds initial_estimate);

  [[nodiscard]] IdlePlan plan_idle(Seconds actual_idle) override;
  void observe_idle(Seconds actual_idle) override;
  [[nodiscard]] Seconds predicted_idle() const override;
  [[nodiscard]] const DevicePowerModel& device() const override {
    return device_;
  }
  [[nodiscard]] std::string name() const override { return "stochastic"; }
  [[nodiscard]] std::unique_ptr<DpmPolicy> clone() const override;
  void reset() override;

  /// Expected energy of each choice under the current history (exposed
  /// for tests).
  [[nodiscard]] Joule expected_standby_energy() const;
  [[nodiscard]] Joule expected_sleep_energy() const;

  /// The decision the next plan_idle() would take.
  [[nodiscard]] bool would_sleep() const;

 private:
  DevicePowerModel device_;
  std::size_t window_;
  std::size_t warmup_;
  Seconds initial_estimate_;
  Seconds break_even_;
  std::deque<double> history_;
};

}  // namespace fcdpm::dpm
