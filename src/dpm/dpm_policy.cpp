#include "dpm/dpm_policy.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::dpm {

Seconds IdlePlan::total_duration() const {
  Seconds total{0.0};
  for (const IdleSegment& segment : segments) {
    total += segment.duration;
  }
  return total;
}

Coulomb IdlePlan::total_charge() const {
  Coulomb total{0.0};
  for (const IdleSegment& segment : segments) {
    total += segment.current * segment.duration;
  }
  return total;
}

IdlePlan plan_standby(const DevicePowerModel& device, Seconds actual_idle) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");
  IdlePlan plan;
  plan.slept = false;
  if (actual_idle.value() > 0.0) {
    plan.segments.push_back(
        {actual_idle, device.standby_current(), PowerState::Standby});
  }
  return plan;
}

IdlePlan plan_sleep(const DevicePowerModel& device, Seconds actual_idle) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");
  IdlePlan plan;
  plan.slept = true;

  const Seconds transitions = device.sleep_transition_delay();
  const Seconds sleep_time =
      max(actual_idle - transitions, Seconds(0.0));
  plan.latency_spill = max(transitions - actual_idle, Seconds(0.0));

  if (device.power_down_delay.value() > 0.0) {
    plan.segments.push_back({device.power_down_delay,
                             device.power_down_current(),
                             PowerState::Sleep});
  }
  if (sleep_time.value() > 0.0) {
    plan.segments.push_back(
        {sleep_time, device.sleep_current(), PowerState::Sleep});
  }
  if (device.wake_up_delay.value() > 0.0) {
    plan.segments.push_back(
        {device.wake_up_delay, device.wake_up_current(), PowerState::Sleep});
  }
  return plan;
}

// --- PredictiveDpmPolicy -----------------------------------------------------

PredictiveDpmPolicy::PredictiveDpmPolicy(
    DevicePowerModel device, std::unique_ptr<DurationPredictor> predictor)
    : device_(device),
      predictor_(std::move(predictor)),
      break_even_(device.break_even_time()) {
  FCDPM_EXPECTS(predictor_ != nullptr, "predictor must be provided");
}

PredictiveDpmPolicy PredictiveDpmPolicy::paper_policy(
    DevicePowerModel device, double rho, Seconds initial) {
  return PredictiveDpmPolicy(
      device, std::make_unique<ExponentialAveragePredictor>(rho, initial));
}

IdlePlan PredictiveDpmPolicy::plan_idle(Seconds actual_idle) {
  const Seconds predicted = predictor_->predict();
  accuracy_.record(predicted, actual_idle, break_even_);

  IdlePlan plan = (predicted >= break_even_)
                      ? plan_sleep(device_, actual_idle)
                      : plan_standby(device_, actual_idle);
  plan.predicted_idle = predicted;

  if (obs_ != nullptr) {
    if (obs_->metering()) {
      obs_->count(plan.slept ? "dpm.decision.sleep"
                             : "dpm.decision.standby");
      obs_->observe("dpm.predictor_abs_error_s",
                    fcdpm::abs(predicted - actual_idle).value());
      if (plan.latency_spill.value() > 0.0) {
        obs_->count("dpm.latency_spills");
        obs_->observe("dpm.latency_spill_s", plan.latency_spill.value());
      }
    }
    if (obs_->tracing()) {
      obs_->instant("dpm", plan.slept ? "dpm.sleep" : "dpm.standby",
                    {{"predicted_idle_s", predicted.value()},
                     {"actual_idle_s", actual_idle.value()},
                     {"break_even_s", break_even_.value()},
                     {"latency_spill_s", plan.latency_spill.value()}});
    }
  }
  return plan;
}

void PredictiveDpmPolicy::observe_idle(Seconds actual_idle) {
  predictor_->observe(actual_idle);
}

Seconds PredictiveDpmPolicy::predicted_idle() const {
  return predictor_->predict();
}

std::string PredictiveDpmPolicy::name() const {
  return "predictive(" + predictor_->name() + ")";
}

std::unique_ptr<DpmPolicy> PredictiveDpmPolicy::clone() const {
  auto copy =
      std::make_unique<PredictiveDpmPolicy>(device_, predictor_->clone());
  copy->accuracy_ = accuracy_;
  return copy;
}

void PredictiveDpmPolicy::reset() {
  predictor_->reset();
  accuracy_ = PredictionAccuracy{};
}

// --- TimeoutDpmPolicy --------------------------------------------------------

TimeoutDpmPolicy::TimeoutDpmPolicy(DevicePowerModel device, Seconds timeout)
    : device_(device), timeout_(timeout) {
  FCDPM_EXPECTS(timeout.value() >= 0.0, "timeout must be non-negative");
}

IdlePlan TimeoutDpmPolicy::plan_idle(Seconds actual_idle) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");

  // A timeout policy has no real prediction; the last observed idle is
  // the best signal it can hand to prediction consumers (the FC-DPM
  // output controller plans against this value).
  const Seconds estimate =
      (last_idle_.value() > 0.0) ? last_idle_ : timeout_;

  if (actual_idle <= timeout_) {
    IdlePlan plan = plan_standby(device_, actual_idle);
    plan.predicted_idle = estimate;
    return plan;
  }

  // STANDBY for the timeout, then a sleep episode in the remainder.
  IdlePlan plan = plan_sleep(device_, actual_idle - timeout_);
  if (timeout_.value() > 0.0) {
    plan.segments.insert(
        plan.segments.begin(),
        {timeout_, device_.standby_current(), PowerState::Standby});
  }
  plan.predicted_idle = estimate;
  return plan;
}

std::unique_ptr<DpmPolicy> TimeoutDpmPolicy::clone() const {
  return std::make_unique<TimeoutDpmPolicy>(*this);
}

// --- AlwaysStandbyDpmPolicy --------------------------------------------------

AlwaysStandbyDpmPolicy::AlwaysStandbyDpmPolicy(DevicePowerModel device)
    : device_(device) {}

IdlePlan AlwaysStandbyDpmPolicy::plan_idle(Seconds actual_idle) {
  return plan_standby(device_, actual_idle);
}

std::unique_ptr<DpmPolicy> AlwaysStandbyDpmPolicy::clone() const {
  return std::make_unique<AlwaysStandbyDpmPolicy>(*this);
}

}  // namespace fcdpm::dpm
