#include "dpm/dpm_policy.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::dpm {

Seconds IdlePlan::total_duration() const {
  Seconds total{0.0};
  for (const IdleSegment& segment : segments) {
    total += segment.duration;
  }
  return total;
}

Coulomb IdlePlan::total_charge() const {
  Coulomb total{0.0};
  for (const IdleSegment& segment : segments) {
    total += segment.current * segment.duration;
  }
  return total;
}

void plan_standby_into(const DevicePowerModel& device, Seconds actual_idle,
                       InlineIdlePlan& plan) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");
  plan.slept = false;
  plan.predicted_idle = Seconds(0.0);
  plan.latency_spill = Seconds(0.0);
  plan.count = 0;
  if (actual_idle.value() > 0.0) {
    plan.segments[plan.count++] =
        {actual_idle, device.standby_current(), PowerState::Standby};
  }
}

void plan_sleep_into(const DevicePowerModel& device, Seconds actual_idle,
                     InlineIdlePlan& plan) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");
  plan.slept = true;
  plan.predicted_idle = Seconds(0.0);
  plan.count = 0;

  const Seconds transitions = device.sleep_transition_delay();
  const Seconds sleep_time =
      max(actual_idle - transitions, Seconds(0.0));
  plan.latency_spill = max(transitions - actual_idle, Seconds(0.0));

  if (device.power_down_delay.value() > 0.0) {
    plan.segments[plan.count++] = {device.power_down_delay,
                                   device.power_down_current(),
                                   PowerState::Sleep};
  }
  if (sleep_time.value() > 0.0) {
    plan.segments[plan.count++] =
        {sleep_time, device.sleep_current(), PowerState::Sleep};
  }
  if (device.wake_up_delay.value() > 0.0) {
    plan.segments[plan.count++] =
        {device.wake_up_delay, device.wake_up_current(), PowerState::Sleep};
  }
}

namespace {

/// Materialize an inline layout as a vector-backed plan. Segments are
/// appended one by one (no reserve): the vector plan keeps its historic
/// growth pattern, so existing callers see unchanged behavior while the
/// segment arithmetic itself is single-sourced in the _into functions.
[[nodiscard]] IdlePlan to_idle_plan(const InlineIdlePlan& inline_plan) {
  IdlePlan plan;
  plan.slept = inline_plan.slept;
  plan.predicted_idle = inline_plan.predicted_idle;
  plan.latency_spill = inline_plan.latency_spill;
  for (std::size_t k = 0; k < inline_plan.count; ++k) {
    plan.segments.push_back(inline_plan.segments[k]);
  }
  return plan;
}

}  // namespace

IdlePlan plan_standby(const DevicePowerModel& device, Seconds actual_idle) {
  InlineIdlePlan inline_plan;
  plan_standby_into(device, actual_idle, inline_plan);
  return to_idle_plan(inline_plan);
}

IdlePlan plan_sleep(const DevicePowerModel& device, Seconds actual_idle) {
  InlineIdlePlan inline_plan;
  plan_sleep_into(device, actual_idle, inline_plan);
  return to_idle_plan(inline_plan);
}

void DpmPolicy::plan_idle_into(Seconds actual_idle, InlineIdlePlan& out) {
  const IdlePlan plan = plan_idle(actual_idle);
  FCDPM_ENSURES(plan.segments.size() <= out.segments.size(),
                "idle plan exceeds inline segment storage");
  out.slept = plan.slept;
  out.predicted_idle = plan.predicted_idle;
  out.latency_spill = plan.latency_spill;
  out.count = plan.segments.size();
  for (std::size_t k = 0; k < plan.segments.size(); ++k) {
    out.segments[k] = plan.segments[k];
  }
}

// --- PredictiveDpmPolicy -----------------------------------------------------

PredictiveDpmPolicy::PredictiveDpmPolicy(
    DevicePowerModel device, std::unique_ptr<DurationPredictor> predictor)
    : device_(device),
      predictor_(std::move(predictor)),
      break_even_(device.break_even_time()) {
  FCDPM_EXPECTS(predictor_ != nullptr, "predictor must be provided");
}

PredictiveDpmPolicy PredictiveDpmPolicy::paper_policy(
    DevicePowerModel device, double rho, Seconds initial) {
  return PredictiveDpmPolicy(
      device, std::make_unique<ExponentialAveragePredictor>(rho, initial));
}

IdlePlan PredictiveDpmPolicy::plan_idle(Seconds actual_idle) {
  const Seconds predicted = predictor_->predict();
  accuracy_.record(predicted, actual_idle, break_even_);

  IdlePlan plan = (predicted >= break_even_)
                      ? plan_sleep(device_, actual_idle)
                      : plan_standby(device_, actual_idle);
  plan.predicted_idle = predicted;

  emit_decision(plan.slept, plan.latency_spill, predicted, actual_idle);
  return plan;
}

void PredictiveDpmPolicy::plan_idle_into(Seconds actual_idle,
                                         InlineIdlePlan& out) {
  const Seconds predicted = predictor_->predict();
  accuracy_.record(predicted, actual_idle, break_even_);

  if (predicted >= break_even_) {
    plan_sleep_into(device_, actual_idle, out);
  } else {
    plan_standby_into(device_, actual_idle, out);
  }
  out.predicted_idle = predicted;

  emit_decision(out.slept, out.latency_spill, predicted, actual_idle);
}

void PredictiveDpmPolicy::emit_decision(bool slept, Seconds latency_spill,
                                        Seconds predicted,
                                        Seconds actual_idle) {
  if (obs_ == nullptr) {
    return;
  }
  if (obs_->metering()) {
    obs_->count(slept ? "dpm.decision.sleep" : "dpm.decision.standby");
    obs_->observe("dpm.predictor_abs_error_s",
                  fcdpm::abs(predicted - actual_idle).value());
    if (latency_spill.value() > 0.0) {
      obs_->count("dpm.latency_spills");
      obs_->observe("dpm.latency_spill_s", latency_spill.value());
    }
  }
  if (obs_->tracing()) {
    obs_->instant("dpm", slept ? "dpm.sleep" : "dpm.standby",
                  {{"predicted_idle_s", predicted.value()},
                   {"actual_idle_s", actual_idle.value()},
                   {"break_even_s", break_even_.value()},
                   {"latency_spill_s", latency_spill.value()}});
  }
}

void PredictiveDpmPolicy::observe_idle(Seconds actual_idle) {
  predictor_->observe(actual_idle);
}

Seconds PredictiveDpmPolicy::predicted_idle() const {
  return predictor_->predict();
}

std::string PredictiveDpmPolicy::name() const {
  return "predictive(" + predictor_->name() + ")";
}

std::unique_ptr<DpmPolicy> PredictiveDpmPolicy::clone() const {
  auto copy =
      std::make_unique<PredictiveDpmPolicy>(device_, predictor_->clone());
  copy->accuracy_ = accuracy_;
  return copy;
}

void PredictiveDpmPolicy::reset() {
  predictor_->reset();
  accuracy_ = PredictionAccuracy{};
}

// --- TimeoutDpmPolicy --------------------------------------------------------

TimeoutDpmPolicy::TimeoutDpmPolicy(DevicePowerModel device, Seconds timeout)
    : device_(device), timeout_(timeout) {
  FCDPM_EXPECTS(timeout.value() >= 0.0, "timeout must be non-negative");
}

IdlePlan TimeoutDpmPolicy::plan_idle(Seconds actual_idle) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");

  // A timeout policy has no real prediction; the last observed idle is
  // the best signal it can hand to prediction consumers (the FC-DPM
  // output controller plans against this value).
  const Seconds estimate =
      (last_idle_.value() > 0.0) ? last_idle_ : timeout_;

  if (actual_idle <= timeout_) {
    IdlePlan plan = plan_standby(device_, actual_idle);
    plan.predicted_idle = estimate;
    return plan;
  }

  // STANDBY for the timeout, then a sleep episode in the remainder.
  IdlePlan plan = plan_sleep(device_, actual_idle - timeout_);
  if (timeout_.value() > 0.0) {
    plan.segments.insert(
        plan.segments.begin(),
        {timeout_, device_.standby_current(), PowerState::Standby});
  }
  plan.predicted_idle = estimate;
  return plan;
}

void TimeoutDpmPolicy::plan_idle_into(Seconds actual_idle,
                                      InlineIdlePlan& out) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle length must be >= 0");

  const Seconds estimate =
      (last_idle_.value() > 0.0) ? last_idle_ : timeout_;

  if (actual_idle <= timeout_) {
    plan_standby_into(device_, actual_idle, out);
    out.predicted_idle = estimate;
    return;
  }

  plan_sleep_into(device_, actual_idle - timeout_, out);
  if (timeout_.value() > 0.0) {
    FCDPM_ENSURES(out.count < out.segments.size(),
                  "idle plan exceeds inline segment storage");
    for (std::size_t k = out.count; k > 0; --k) {
      out.segments[k] = out.segments[k - 1];
    }
    out.segments[0] =
        {timeout_, device_.standby_current(), PowerState::Standby};
    ++out.count;
  }
  out.predicted_idle = estimate;
}

std::unique_ptr<DpmPolicy> TimeoutDpmPolicy::clone() const {
  return std::make_unique<TimeoutDpmPolicy>(*this);
}

// --- AlwaysStandbyDpmPolicy --------------------------------------------------

AlwaysStandbyDpmPolicy::AlwaysStandbyDpmPolicy(DevicePowerModel device)
    : device_(device) {}

IdlePlan AlwaysStandbyDpmPolicy::plan_idle(Seconds actual_idle) {
  return plan_standby(device_, actual_idle);
}

void AlwaysStandbyDpmPolicy::plan_idle_into(Seconds actual_idle,
                                            InlineIdlePlan& out) {
  plan_standby_into(device_, actual_idle, out);
}

std::unique_ptr<DpmPolicy> AlwaysStandbyDpmPolicy::clone() const {
  return std::make_unique<AlwaysStandbyDpmPolicy>(*this);
}

}  // namespace fcdpm::dpm
