// Device-side DPM policies: decide how an idle period is spent.
//
// The decision (STANDBY vs SLEEP) is made from *predicted* idle time
// against the break-even time Tbe; the physical layout of the idle period
// (power-down, sleep, wake-up segments) is then realized against the
// *actual* idle length. Mispredicted sleeps whose transitions do not fit
// in the idle period spill past it — the spill is reported as added
// latency, a metric the ablations track.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "dpm/power_states.hpp"
#include "dpm/predictors.hpp"
#include "obs/context.hpp"

namespace fcdpm::dpm {

/// One constant-current stretch within an idle period.
struct IdleSegment {
  Seconds duration;
  Ampere current;
  PowerState state;  ///< Standby or Sleep (transitions labelled Sleep)
};

/// Fully laid-out idle period.
struct IdlePlan {
  bool slept = false;
  Seconds predicted_idle{0.0};
  /// Wake-up time exceeding the idle window (response latency added).
  Seconds latency_spill{0.0};
  std::vector<IdleSegment> segments;

  /// Sum of segment durations (== actual idle + latency_spill).
  [[nodiscard]] Seconds total_duration() const;
  /// Total charge of the plan at the device terminals.
  [[nodiscard]] Coulomb total_charge() const;
};

/// Idle plan laid out into fixed inline storage — the allocation-free
/// counterpart of IdlePlan for the hot engine (`fcdpm::hot`). Four
/// segments cover every layout the policies produce (the deepest is
/// timeout shutdown: standby + power-down + sleep + wake-up).
struct InlineIdlePlan {
  bool slept = false;
  Seconds predicted_idle{0.0};
  /// Wake-up time exceeding the idle window (response latency added).
  Seconds latency_spill{0.0};
  std::array<IdleSegment, 4> segments{};
  std::size_t count = 0;

  /// Sum of segment durations (== actual idle + latency_spill).
  [[nodiscard]] Seconds total_duration() const noexcept {
    Seconds total{0.0};
    for (std::size_t k = 0; k < count; ++k) {
      total += segments[k].duration;
    }
    return total;
  }
};

/// Allocation-free layout primitives. These are the single source of
/// truth for the segment arithmetic: plan_standby()/plan_sleep() wrap
/// them, so the vector-based and inline plans cannot drift apart.
void plan_standby_into(const DevicePowerModel& device, Seconds actual_idle,
                       InlineIdlePlan& plan);
void plan_sleep_into(const DevicePowerModel& device, Seconds actual_idle,
                     InlineIdlePlan& plan);

/// Lay out an idle period of `actual_idle` as STANDBY only.
[[nodiscard]] IdlePlan plan_standby(const DevicePowerModel& device,
                                    Seconds actual_idle);

/// Lay out an idle period of `actual_idle` as a SLEEP episode:
/// power-down, sleep, wake-up. When the transitions do not fit, the wake
/// completes after the idle window and the overshoot is reported as
/// latency_spill (the sleep stretch is then empty).
[[nodiscard]] IdlePlan plan_sleep(const DevicePowerModel& device,
                                  Seconds actual_idle);

/// DPM policy interface: prediction-driven sleep decisions.
class DpmPolicy {
 public:
  virtual ~DpmPolicy() = default;

  /// Decide (from internal prediction state only) and lay the idle period
  /// out against its actual length. Must not let `actual_idle` influence
  /// the decision — only the layout.
  [[nodiscard]] virtual IdlePlan plan_idle(Seconds actual_idle) = 0;

  /// Allocation-free counterpart of plan_idle() for the hot engine: lay
  /// the idle period out into caller-owned inline storage. Must make
  /// the same decision, mutate the same internal state, and produce the
  /// same segments as plan_idle() — the differential tests hold every
  /// policy to that. The default wraps plan_idle() (and allocates);
  /// policies on the hot path override it.
  virtual void plan_idle_into(Seconds actual_idle, InlineIdlePlan& out);

  /// Feed the observed idle length back to the predictor.
  virtual void observe_idle(Seconds actual_idle) = 0;

  /// The prediction the next plan_idle() will be based on.
  [[nodiscard]] virtual Seconds predicted_idle() const = 0;

  [[nodiscard]] virtual const DevicePowerModel& device() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<DpmPolicy> clone() const = 0;

  virtual void reset() = 0;

  /// Attach (or detach with nullptr) an observability context; the
  /// simulator does this for the duration of a run and restores the
  /// previous value when it returns. Policies emit decision instants
  /// and predictor-error metrics through it. Not owned.
  void set_observer(obs::Context* observer) noexcept { obs_ = observer; }
  [[nodiscard]] obs::Context* observer() const noexcept { return obs_; }

 protected:
  obs::Context* obs_ = nullptr;
};

/// Predictive shutdown (Hwang-Wu style): sleep iff predicted idle >= Tbe.
class PredictiveDpmPolicy final : public DpmPolicy {
 public:
  PredictiveDpmPolicy(DevicePowerModel device,
                      std::unique_ptr<DurationPredictor> predictor);

  /// The paper's configuration: exponential average with the given rho,
  /// seeded with `initial` (first slot has no history).
  [[nodiscard]] static PredictiveDpmPolicy paper_policy(
      DevicePowerModel device, double rho, Seconds initial);

  [[nodiscard]] IdlePlan plan_idle(Seconds actual_idle) override;
  void plan_idle_into(Seconds actual_idle, InlineIdlePlan& out) override;
  void observe_idle(Seconds actual_idle) override;
  [[nodiscard]] Seconds predicted_idle() const override;
  [[nodiscard]] const DevicePowerModel& device() const override {
    return device_;
  }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<DpmPolicy> clone() const override;
  void reset() override;

  [[nodiscard]] Seconds break_even() const noexcept { return break_even_; }
  [[nodiscard]] const PredictionAccuracy& accuracy() const noexcept {
    return accuracy_;
  }
  [[nodiscard]] DurationPredictor& predictor() noexcept {
    return *predictor_;
  }

 private:
  DevicePowerModel device_;
  std::unique_ptr<DurationPredictor> predictor_;
  Seconds break_even_;
  PredictionAccuracy accuracy_;

  void emit_decision(bool slept, Seconds latency_spill, Seconds predicted,
                     Seconds actual_idle);
};

/// Timeout shutdown: wait `timeout` in STANDBY, then sleep for whatever
/// remains. The classic non-predictive baseline.
class TimeoutDpmPolicy final : public DpmPolicy {
 public:
  TimeoutDpmPolicy(DevicePowerModel device, Seconds timeout);

  [[nodiscard]] IdlePlan plan_idle(Seconds actual_idle) override;
  void plan_idle_into(Seconds actual_idle, InlineIdlePlan& out) override;
  void observe_idle(Seconds actual_idle) override {
    last_idle_ = actual_idle;
  }
  [[nodiscard]] Seconds predicted_idle() const override {
    return last_idle_;
  }
  [[nodiscard]] const DevicePowerModel& device() const override {
    return device_;
  }
  [[nodiscard]] std::string name() const override { return "timeout"; }
  [[nodiscard]] std::unique_ptr<DpmPolicy> clone() const override;
  void reset() override { last_idle_ = Seconds(0.0); }

 private:
  DevicePowerModel device_;
  Seconds timeout_;
  Seconds last_idle_{0.0};
};

/// Never sleeps; the do-nothing floor for ablations.
class AlwaysStandbyDpmPolicy final : public DpmPolicy {
 public:
  explicit AlwaysStandbyDpmPolicy(DevicePowerModel device);

  [[nodiscard]] IdlePlan plan_idle(Seconds actual_idle) override;
  void plan_idle_into(Seconds actual_idle, InlineIdlePlan& out) override;
  void observe_idle(Seconds actual_idle) override {
    last_idle_ = actual_idle;
  }
  [[nodiscard]] Seconds predicted_idle() const override {
    return last_idle_;
  }
  [[nodiscard]] const DevicePowerModel& device() const override {
    return device_;
  }
  [[nodiscard]] std::string name() const override {
    return "always-standby";
  }
  [[nodiscard]] std::unique_ptr<DpmPolicy> clone() const override;
  void reset() override { last_idle_ = Seconds(0.0); }

 private:
  DevicePowerModel device_;
  Seconds last_idle_{0.0};
};

}  // namespace fcdpm::dpm
