#include "dpm/power_states.hpp"

#include "common/contracts.hpp"

namespace fcdpm::dpm {

const char* to_string(PowerState state) {
  switch (state) {
    case PowerState::Run:
      return "RUN";
    case PowerState::Standby:
      return "STANDBY";
    case PowerState::Sleep:
      return "SLEEP";
  }
  return "?";
}

DevicePowerModel DevicePowerModel::dvd_camcorder() {
  return DevicePowerModel{};  // defaults are the Figure 6 numbers
}

DevicePowerModel DevicePowerModel::experiment2_device() {
  DevicePowerModel model;
  model.power_down_delay = Seconds(1.0);
  model.wake_up_delay = Seconds(1.0);
  // IPD = IWU = 1.2 A @ 12 V.
  model.power_down_power = Watt(14.4);
  model.wake_up_power = Watt(14.4);
  return model;
}

Ampere DevicePowerModel::run_current() const {
  return run_power / bus_voltage;
}
Ampere DevicePowerModel::standby_current() const {
  return standby_power / bus_voltage;
}
Ampere DevicePowerModel::sleep_current() const {
  return sleep_power / bus_voltage;
}
Ampere DevicePowerModel::power_down_current() const {
  return power_down_power / bus_voltage;
}
Ampere DevicePowerModel::wake_up_current() const {
  return wake_up_power / bus_voltage;
}

Ampere DevicePowerModel::current_in(PowerState state) const {
  switch (state) {
    case PowerState::Run:
      return run_current();
    case PowerState::Standby:
      return standby_current();
    case PowerState::Sleep:
      return sleep_current();
  }
  FCDPM_ENSURES(false, "unknown power state");
}

Seconds DevicePowerModel::sleep_transition_delay() const {
  return power_down_delay + wake_up_delay;
}

Coulomb DevicePowerModel::sleep_transition_charge() const {
  return power_down_current() * power_down_delay +
         wake_up_current() * wake_up_delay;
}

Seconds DevicePowerModel::break_even_time() const {
  validate();
  const double overhead_energy =
      (power_down_power * power_down_delay).value() +
      (wake_up_power * wake_up_delay).value();
  const double sleep_during_transitions =
      (sleep_power * sleep_transition_delay()).value();
  const double saving_rate = (standby_power - sleep_power).value();
  const double t_be =
      (overhead_energy - sleep_during_transitions) / saving_rate;
  return max(sleep_transition_delay(), Seconds(t_be));
}

void DevicePowerModel::validate() const {
  FCDPM_EXPECTS(bus_voltage.value() > 0.0, "bus voltage must be positive");
  FCDPM_EXPECTS(run_power.value() > 0.0, "run power must be positive");
  FCDPM_EXPECTS(standby_power.value() > 0.0,
                "standby power must be positive");
  FCDPM_EXPECTS(sleep_power.value() >= 0.0,
                "sleep power must be non-negative");
  FCDPM_EXPECTS(standby_power > sleep_power,
                "sleep must save power over standby");
  FCDPM_EXPECTS(power_down_delay.value() >= 0.0 &&
                    wake_up_delay.value() >= 0.0,
                "transition delays must be non-negative");
  FCDPM_EXPECTS(power_down_power.value() >= 0.0 &&
                    wake_up_power.value() >= 0.0,
                "transition powers must be non-negative");
}

}  // namespace fcdpm::dpm
