// Duration predictors for DPM.
//
// FC-DPM (Section 4) predicts the coming idle period T'i, active period
// T'a and active current I'ld,a before each idle slot. The paper uses the
// exponential-average predictor of Hwang & Wu [1] (Eq. (14)/(15)); the
// regression predictor of Srivastava et al. [2], an adaptive-learning-tree
// predictor after Chung et al. [3], and an oracle (for upper bounds) are
// provided for the predictor-sensitivity ablation.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::dpm {

/// Online scalar predictor: observe actual values, predict the next one.
class DurationPredictor {
 public:
  virtual ~DurationPredictor() = default;

  /// Prediction for the next (not yet observed) duration.
  [[nodiscard]] virtual Seconds predict() const = 0;

  /// Record the duration that actually happened.
  virtual void observe(Seconds actual) = 0;

  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<DurationPredictor> clone() const = 0;

  /// True when `other` is an interchangeable copy of this predictor:
  /// same dynamic type, same configuration, and bitwise-equal mutable
  /// state, so the two return bit-identical predictions forever given
  /// identical observation streams. Consumers (the batch engine's lane
  /// merging) use this to prove two policies can share one plan, so
  /// implementations must compare every behavior-bearing member.
  /// Conservative default: not equivalent.
  [[nodiscard]] virtual bool equivalent(
      const DurationPredictor& /*other*/) const noexcept {
    return false;
  }
};

/// Hwang-Wu exponential average (Eq. (14)):
///   T'(k) = rho * T'(k-1) + (1 - rho) * T(k-1)
class ExponentialAveragePredictor final : public DurationPredictor {
 public:
  /// rho in [0, 1]; `initial` seeds T'(0).
  ExponentialAveragePredictor(double rho, Seconds initial);

  [[nodiscard]] Seconds predict() const override { return estimate_; }
  void observe(Seconds actual) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "exp-average"; }
  [[nodiscard]] std::unique_ptr<DurationPredictor> clone() const override;
  [[nodiscard]] bool equivalent(
      const DurationPredictor& other) const noexcept override;

  [[nodiscard]] double rho() const noexcept { return rho_; }

 private:
  double rho_;
  Seconds initial_;
  Seconds estimate_;
};

/// Sliding-window linear regression on (T(k-1) -> T(k)) pairs
/// (Srivastava et al. [2]): predicts a + b * T(k-1). Falls back to the
/// window mean until it has enough distinct samples.
class RegressionPredictor final : public DurationPredictor {
 public:
  RegressionPredictor(std::size_t window, Seconds initial);

  [[nodiscard]] Seconds predict() const override;
  void observe(Seconds actual) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "regression"; }
  [[nodiscard]] std::unique_ptr<DurationPredictor> clone() const override;
  [[nodiscard]] bool equivalent(
      const DurationPredictor& other) const noexcept override;

 private:
  std::size_t window_;
  Seconds initial_;
  std::deque<double> history_;
};

/// Adaptive-learning-tree style predictor (after Chung et al. [3]):
/// quantizes durations into levels and learns, per recent level-pattern,
/// which level tends to follow; falls back to an exponential average when
/// a pattern has not been seen.
class LearningTreePredictor final : public DurationPredictor {
 public:
  /// `level_edges` are ascending quantization boundaries (n edges define
  /// n+1 levels); `depth` is the pattern length (>= 1).
  LearningTreePredictor(std::vector<Seconds> level_edges, std::size_t depth,
                        Seconds initial);

  [[nodiscard]] Seconds predict() const override;
  void observe(Seconds actual) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "learning-tree"; }
  [[nodiscard]] std::unique_ptr<DurationPredictor> clone() const override;
  [[nodiscard]] bool equivalent(
      const DurationPredictor& other) const noexcept override;

  [[nodiscard]] int quantize(Seconds value) const;
  [[nodiscard]] Seconds level_representative(int level) const;

 private:
  std::vector<Seconds> edges_;
  std::size_t depth_;
  ExponentialAveragePredictor fallback_;
  std::deque<int> pattern_;
  /// pattern -> histogram over next levels.
  std::map<std::vector<int>, std::vector<int>> counts_;
};

/// Oracle: told the future through `prime()`; predicts it exactly.
/// Establishes the no-misprediction bound in ablations.
class OraclePredictor final : public DurationPredictor {
 public:
  explicit OraclePredictor(Seconds initial);

  /// Provide the value the next predict() must return.
  void prime(Seconds next);

  [[nodiscard]] Seconds predict() const override { return next_; }
  void observe(Seconds actual) override;
  void reset() override;
  [[nodiscard]] std::string name() const override { return "oracle"; }
  [[nodiscard]] std::unique_ptr<DurationPredictor> clone() const override;
  [[nodiscard]] bool equivalent(
      const DurationPredictor& other) const noexcept override;

 private:
  Seconds initial_;
  Seconds next_;
};

/// Constant predictor (predicts a fixed value regardless of history);
/// degenerate baseline and a handy test double.
class FixedPredictor final : public DurationPredictor {
 public:
  explicit FixedPredictor(Seconds value);

  [[nodiscard]] Seconds predict() const override { return value_; }
  void observe(Seconds actual) override;
  void reset() override {}
  [[nodiscard]] std::string name() const override { return "fixed"; }
  [[nodiscard]] std::unique_ptr<DurationPredictor> clone() const override;
  [[nodiscard]] bool equivalent(
      const DurationPredictor& other) const noexcept override;

 private:
  Seconds value_;
};

/// Online estimator for the active-slot current I'ld,a: running mean of
/// the observed active currents (Section 4.2's suggestion), seeded with a
/// configurable initial estimate.
class CurrentEstimator {
 public:
  explicit CurrentEstimator(Ampere initial);

  [[nodiscard]] Ampere estimate() const;
  void observe(Ampere actual);
  void reset();

  /// Bitwise state equality (see DurationPredictor::equivalent).
  [[nodiscard]] bool equivalent(const CurrentEstimator& other) const noexcept;

 private:
  Ampere initial_;
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Running tally of prediction quality (used by metrics and ablations).
class PredictionAccuracy {
 public:
  /// Record one (predicted, actual) pair with the sleep threshold that
  /// was in force: tracks over/under-prediction and decision flips.
  void record(Seconds predicted, Seconds actual, Seconds threshold);

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Predicted sleep-worthy but the idle ended sooner than the threshold.
  [[nodiscard]] std::size_t false_sleeps() const noexcept {
    return false_sleeps_;
  }
  /// Idle was sleep-worthy but the prediction said otherwise.
  [[nodiscard]] std::size_t missed_sleeps() const noexcept {
    return missed_sleeps_;
  }
  [[nodiscard]] double mean_absolute_error() const;
  [[nodiscard]] double decision_accuracy() const;

 private:
  std::size_t total_ = 0;
  std::size_t false_sleeps_ = 0;
  std::size_t missed_sleeps_ = 0;
  double abs_error_sum_ = 0.0;
};

}  // namespace fcdpm::dpm
