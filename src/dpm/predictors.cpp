#include "dpm/predictors.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "common/math.hpp"

namespace fcdpm::dpm {

namespace {

/// Equivalence compares doubles bitwise, not by ==: two states that
/// differ only in -0.0 vs 0.0 (or carry NaNs) can still drift apart
/// arithmetically, and consumers rely on bit-identical futures.
[[nodiscard]] bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] bool same_bits(Seconds a, Seconds b) noexcept {
  return same_bits(a.value(), b.value());
}

}  // namespace

// --- ExponentialAveragePredictor --------------------------------------------

ExponentialAveragePredictor::ExponentialAveragePredictor(double rho,
                                                         Seconds initial)
    : rho_(rho), initial_(initial), estimate_(initial) {
  FCDPM_EXPECTS(rho >= 0.0 && rho <= 1.0, "rho must lie in [0, 1]");
  FCDPM_EXPECTS(initial.value() >= 0.0, "initial estimate must be >= 0");
}

void ExponentialAveragePredictor::observe(Seconds actual) {
  FCDPM_EXPECTS(actual.value() >= 0.0, "durations are non-negative");
  estimate_ = rho_ * estimate_ + (1.0 - rho_) * actual;
}

void ExponentialAveragePredictor::reset() { estimate_ = initial_; }

std::unique_ptr<DurationPredictor> ExponentialAveragePredictor::clone()
    const {
  return std::make_unique<ExponentialAveragePredictor>(*this);
}

bool ExponentialAveragePredictor::equivalent(
    const DurationPredictor& other) const noexcept {
  const auto* o = dynamic_cast<const ExponentialAveragePredictor*>(&other);
  return o != nullptr && same_bits(rho_, o->rho_) &&
         same_bits(initial_, o->initial_) && same_bits(estimate_, o->estimate_);
}

// --- RegressionPredictor -----------------------------------------------------

RegressionPredictor::RegressionPredictor(std::size_t window, Seconds initial)
    : window_(window), initial_(initial) {
  FCDPM_EXPECTS(window >= 3, "regression window must hold >= 3 samples");
  FCDPM_EXPECTS(initial.value() >= 0.0, "initial estimate must be >= 0");
}

Seconds RegressionPredictor::predict() const {
  if (history_.empty()) {
    return initial_;
  }
  if (history_.size() < 3) {
    return Seconds(history_.back());
  }

  // Regress T(k) on T(k-1) over the window, streaming straight over the
  // deque: xs = history[0 .. n-2], ys = history[1 .. n-1]. This runs in
  // the simulator's per-slot hot loop, so no scratch copies — the
  // accumulation order matches linear_least_squares exactly and the
  // result is bit-identical to the copying implementation.
  const std::size_t pairs = history_.size() - 1;
  double x_min = history_[0];
  double x_max = history_[0];
  double x_sum = 0.0;
  double y_sum = 0.0;
  for (std::size_t k = 0; k < pairs; ++k) {
    const double x = history_[k];
    x_min = std::min(x_min, x);
    x_max = std::max(x_max, x);
    x_sum += x;
    y_sum += history_[k + 1];
  }
  const double y_bar = y_sum / static_cast<double>(pairs);

  // Degenerate windows (constant xs) have no regression line; fall back
  // to the window mean.
  if (x_max - x_min < 1e-12) {
    return Seconds(y_bar);
  }

  const double x_bar = x_sum / static_cast<double>(pairs);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t k = 0; k < pairs; ++k) {
    const double dx = history_[k] - x_bar;
    const double dy = history_[k + 1] - y_bar;
    sxx += dx * dx;
    sxy += dx * dy;
  }
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = y_bar - fit.slope * x_bar;
  const double predicted = fit(history_.back());
  return Seconds(std::max(predicted, 0.0));
}

void RegressionPredictor::observe(Seconds actual) {
  FCDPM_EXPECTS(actual.value() >= 0.0, "durations are non-negative");
  history_.push_back(actual.value());
  while (history_.size() > window_) {
    history_.pop_front();
  }
}

void RegressionPredictor::reset() { history_.clear(); }

std::unique_ptr<DurationPredictor> RegressionPredictor::clone() const {
  return std::make_unique<RegressionPredictor>(*this);
}

bool RegressionPredictor::equivalent(
    const DurationPredictor& other) const noexcept {
  const auto* o = dynamic_cast<const RegressionPredictor*>(&other);
  if (o == nullptr || window_ != o->window_ ||
      !same_bits(initial_, o->initial_) ||
      history_.size() != o->history_.size()) {
    return false;
  }
  return std::equal(history_.begin(), history_.end(), o->history_.begin(),
                    [](double a, double b) { return same_bits(a, b); });
}

// --- LearningTreePredictor ---------------------------------------------------

LearningTreePredictor::LearningTreePredictor(std::vector<Seconds> level_edges,
                                             std::size_t depth,
                                             Seconds initial)
    : edges_(std::move(level_edges)),
      depth_(depth),
      fallback_(0.5, initial) {
  FCDPM_EXPECTS(!edges_.empty(), "need at least one quantization edge");
  FCDPM_EXPECTS(std::is_sorted(edges_.begin(), edges_.end()),
                "quantization edges must be ascending");
  FCDPM_EXPECTS(depth >= 1, "pattern depth must be >= 1");
}

int LearningTreePredictor::quantize(Seconds value) const {
  int level = 0;
  for (const Seconds edge : edges_) {
    if (value < edge) {
      break;
    }
    ++level;
  }
  return level;
}

Seconds LearningTreePredictor::level_representative(int level) const {
  FCDPM_EXPECTS(level >= 0 && level <= static_cast<int>(edges_.size()),
                "level out of range");
  if (level == 0) {
    // Midpoint of [0, first edge).
    return edges_.front() * 0.5;
  }
  if (level == static_cast<int>(edges_.size())) {
    // Open-ended top level: extrapolate past the last edge by half the
    // last bin width (or the edge itself when there is a single edge).
    if (edges_.size() == 1) {
      return edges_.back() * 1.5;
    }
    const Seconds last_width = edges_.back() - edges_[edges_.size() - 2];
    return edges_.back() + last_width * 0.5;
  }
  return (edges_[static_cast<std::size_t>(level) - 1] +
          edges_[static_cast<std::size_t>(level)]) *
         0.5;
}

Seconds LearningTreePredictor::predict() const {
  if (pattern_.size() < depth_) {
    return fallback_.predict();
  }
  const std::vector<int> key(pattern_.begin(), pattern_.end());
  const auto it = counts_.find(key);
  if (it == counts_.end()) {
    return fallback_.predict();
  }
  const std::vector<int>& histogram = it->second;
  const auto best = std::max_element(histogram.begin(), histogram.end());
  if (best == histogram.end() || *best == 0) {
    return fallback_.predict();
  }
  const int level = static_cast<int>(best - histogram.begin());
  return level_representative(level);
}

void LearningTreePredictor::observe(Seconds actual) {
  FCDPM_EXPECTS(actual.value() >= 0.0, "durations are non-negative");
  const int level = quantize(actual);

  if (pattern_.size() == depth_) {
    const std::vector<int> key(pattern_.begin(), pattern_.end());
    std::vector<int>& histogram = counts_[key];
    histogram.resize(edges_.size() + 1, 0);
    ++histogram[static_cast<std::size_t>(level)];
  }

  pattern_.push_back(level);
  while (pattern_.size() > depth_) {
    pattern_.pop_front();
  }
  fallback_.observe(actual);
}

void LearningTreePredictor::reset() {
  pattern_.clear();
  counts_.clear();
  fallback_.reset();
}

std::unique_ptr<DurationPredictor> LearningTreePredictor::clone() const {
  return std::make_unique<LearningTreePredictor>(*this);
}

bool LearningTreePredictor::equivalent(
    const DurationPredictor& other) const noexcept {
  const auto* o = dynamic_cast<const LearningTreePredictor*>(&other);
  if (o == nullptr || depth_ != o->depth_ ||
      edges_.size() != o->edges_.size() ||
      !fallback_.equivalent(o->fallback_) || pattern_ != o->pattern_) {
    return false;
  }
  if (!std::equal(edges_.begin(), edges_.end(), o->edges_.begin(),
                  [](Seconds a, Seconds b) { return same_bits(a, b); })) {
    return false;
  }
  return counts_ == o->counts_;  // integer histograms: exact compare
}

// --- OraclePredictor ---------------------------------------------------------

OraclePredictor::OraclePredictor(Seconds initial)
    : initial_(initial), next_(initial) {
  FCDPM_EXPECTS(initial.value() >= 0.0, "initial estimate must be >= 0");
}

void OraclePredictor::prime(Seconds next) {
  FCDPM_EXPECTS(next.value() >= 0.0, "durations are non-negative");
  next_ = next;
}

void OraclePredictor::observe(Seconds /*actual*/) {
  // The oracle already knew.
}

void OraclePredictor::reset() { next_ = initial_; }

std::unique_ptr<DurationPredictor> OraclePredictor::clone() const {
  return std::make_unique<OraclePredictor>(*this);
}

bool OraclePredictor::equivalent(
    const DurationPredictor& other) const noexcept {
  const auto* o = dynamic_cast<const OraclePredictor*>(&other);
  return o != nullptr && same_bits(initial_, o->initial_) &&
         same_bits(next_, o->next_);
}

// --- FixedPredictor ----------------------------------------------------------

FixedPredictor::FixedPredictor(Seconds value) : value_(value) {
  FCDPM_EXPECTS(value.value() >= 0.0, "durations are non-negative");
}

void FixedPredictor::observe(Seconds /*actual*/) {}

std::unique_ptr<DurationPredictor> FixedPredictor::clone() const {
  return std::make_unique<FixedPredictor>(*this);
}

bool FixedPredictor::equivalent(
    const DurationPredictor& other) const noexcept {
  const auto* o = dynamic_cast<const FixedPredictor*>(&other);
  return o != nullptr && same_bits(value_, o->value_);
}

// --- CurrentEstimator --------------------------------------------------------

CurrentEstimator::CurrentEstimator(Ampere initial) : initial_(initial) {
  FCDPM_EXPECTS(initial.value() >= 0.0, "currents are non-negative");
}

Ampere CurrentEstimator::estimate() const {
  if (count_ == 0) {
    return initial_;
  }
  return Ampere(sum_ / static_cast<double>(count_));
}

void CurrentEstimator::observe(Ampere actual) {
  FCDPM_EXPECTS(actual.value() >= 0.0, "currents are non-negative");
  sum_ += actual.value();
  ++count_;
}

void CurrentEstimator::reset() {
  sum_ = 0.0;
  count_ = 0;
}

bool CurrentEstimator::equivalent(
    const CurrentEstimator& other) const noexcept {
  return same_bits(initial_.value(), other.initial_.value()) &&
         same_bits(sum_, other.sum_) && count_ == other.count_;
}

// --- PredictionAccuracy ------------------------------------------------------

void PredictionAccuracy::record(Seconds predicted, Seconds actual,
                                Seconds threshold) {
  ++total_;
  abs_error_sum_ += std::fabs(predicted.value() - actual.value());
  const bool predicted_sleep = predicted >= threshold;
  const bool actual_sleep = actual >= threshold;
  if (predicted_sleep && !actual_sleep) {
    ++false_sleeps_;
  } else if (!predicted_sleep && actual_sleep) {
    ++missed_sleeps_;
  }
}

double PredictionAccuracy::mean_absolute_error() const {
  if (total_ == 0) {
    return 0.0;
  }
  return abs_error_sum_ / static_cast<double>(total_);
}

double PredictionAccuracy::decision_accuracy() const {
  if (total_ == 0) {
    return 1.0;
  }
  return 1.0 - static_cast<double>(false_sleeps_ + missed_sleeps_) /
                   static_cast<double>(total_);
}

}  // namespace fcdpm::dpm
