#include "dpm/stochastic_policy.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace fcdpm::dpm {

StochasticDpmPolicy::StochasticDpmPolicy(DevicePowerModel device,
                                         std::size_t window,
                                         std::size_t warmup,
                                         Seconds initial_estimate)
    : device_(device),
      window_(window),
      warmup_(warmup),
      initial_estimate_(initial_estimate),
      break_even_(device.break_even_time()) {
  FCDPM_EXPECTS(window >= 4, "window must hold at least 4 samples");
  FCDPM_EXPECTS(warmup >= 1 && warmup <= window,
                "warmup must lie in [1, window]");
  FCDPM_EXPECTS(initial_estimate.value() >= 0.0,
                "initial estimate must be non-negative");
}

Joule StochasticDpmPolicy::expected_standby_energy() const {
  double sum = 0.0;
  for (const double t : history_) {
    sum += t;
  }
  const double mean_idle =
      history_.empty() ? initial_estimate_.value()
                       : sum / static_cast<double>(history_.size());
  return device_.standby_power * Seconds(mean_idle);
}

Joule StochasticDpmPolicy::expected_sleep_energy() const {
  const double t_tr = device_.sleep_transition_delay().value();
  const double e_tr =
      (device_.power_down_power * device_.power_down_delay).value() +
      (device_.wake_up_power * device_.wake_up_delay).value();

  const auto sleep_energy_for = [&](double t) {
    // Transitions always happen; sleep only in the remainder. A too-
    // short idle still pays the full transition energy (and spills
    // latency, which the simulator accounts separately).
    const double sleep_time = std::max(t - t_tr, 0.0);
    return e_tr + device_.sleep_power.value() * sleep_time;
  };

  if (history_.empty()) {
    return Joule(sleep_energy_for(initial_estimate_.value()));
  }
  double sum = 0.0;
  for (const double t : history_) {
    sum += sleep_energy_for(t);
  }
  return Joule(sum / static_cast<double>(history_.size()));
}

bool StochasticDpmPolicy::would_sleep() const {
  if (history_.size() < warmup_) {
    return initial_estimate_ >= break_even_;
  }
  return expected_sleep_energy() < expected_standby_energy();
}

IdlePlan StochasticDpmPolicy::plan_idle(Seconds actual_idle) {
  IdlePlan plan = would_sleep() ? plan_sleep(device_, actual_idle)
                                : plan_standby(device_, actual_idle);
  plan.predicted_idle = predicted_idle();
  return plan;
}

void StochasticDpmPolicy::observe_idle(Seconds actual_idle) {
  FCDPM_EXPECTS(actual_idle.value() >= 0.0, "idle must be non-negative");
  history_.push_back(actual_idle.value());
  while (history_.size() > window_) {
    history_.pop_front();
  }
}

Seconds StochasticDpmPolicy::predicted_idle() const {
  if (history_.empty()) {
    return initial_estimate_;
  }
  double sum = 0.0;
  for (const double t : history_) {
    sum += t;
  }
  return Seconds(sum / static_cast<double>(history_.size()));
}

std::unique_ptr<DpmPolicy> StochasticDpmPolicy::clone() const {
  return std::make_unique<StochasticDpmPolicy>(*this);
}

void StochasticDpmPolicy::reset() { history_.clear(); }

}  // namespace fcdpm::dpm
