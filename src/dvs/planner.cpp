#include "dvs/planner.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::dvs {

const char* to_string(DvsStrategy strategy) {
  switch (strategy) {
    case DvsStrategy::RaceToIdle:
      return "race-to-idle";
    case DvsStrategy::MinDeviceEnergy:
      return "min-device-energy";
    case DvsStrategy::MinFuel:
      return "min-fuel";
  }
  return "?";
}

DvsPlanner::DvsPlanner(DvsProcessor processor,
                       power::LinearEfficiencyModel model,
                       double buffer_round_trip)
    : processor_(std::move(processor)),
      model_(model),
      buffer_round_trip_(buffer_round_trip) {
  FCDPM_EXPECTS(buffer_round_trip > 0.0 && buffer_round_trip <= 1.0,
                "round-trip efficiency must be in (0, 1]");
}

DvsEvaluation DvsPlanner::evaluate(const PeriodicTask& task,
                                   std::size_t level) const {
  FCDPM_EXPECTS(task.period.value() > 0.0, "period must be positive");

  DvsEvaluation eval;
  eval.level = level;
  eval.run_time = processor_.time_for(task.work_full_speed_s, level);
  FCDPM_EXPECTS(eval.run_time <= task.period,
                "level too slow for the period");
  eval.slack = task.period - eval.run_time;
  eval.device_energy =
      processor_.energy_for(task.work_full_speed_s, level, task.period);

  const Ampere run_current = processor_.run_current(level);
  const Ampere idle_current = processor_.idle_current();
  const Ampere ceiling = model_.max_output();

  // Charge the source must supply over one period. Peaks above the FC's
  // load-following ceiling are served from the buffer, and the charge
  // that refills the buffer pays the round-trip loss.
  Coulomb source_charge =
      run_current * eval.run_time + idle_current * eval.slack;
  if (run_current > ceiling) {
    eval.exceeds_fc_range = true;
    const Coulomb excess = (run_current - ceiling) * eval.run_time;
    source_charge += excess * (1.0 / buffer_round_trip_ - 1.0);
  }

  // Steady state: the fuel-optimal FC output is flat at the average
  // demand (Eq. (11)); an average beyond the ceiling cannot be sustained
  // (the buffer would drain without bound).
  const Ampere average = source_charge / task.period;
  eval.sustainable = average <= ceiling;
  const Ampere flat = model_.clamp_to_range(average);
  eval.fuel = model_.stack_current(flat) * task.period;
  return eval;
}

DvsEvaluation DvsPlanner::plan(const PeriodicTask& task,
                               DvsStrategy strategy) const {
  const std::size_t slowest =
      processor_.slowest_feasible(task.work_full_speed_s, task.period);

  if (strategy == DvsStrategy::RaceToIdle) {
    const DvsEvaluation eval =
        evaluate(task, processor_.level_count() - 1);
    FCDPM_EXPECTS(eval.sustainable,
                  "race-to-idle demand exceeds the FC's capability");
    return eval;
  }

  DvsEvaluation best;
  bool have_best = false;
  for (std::size_t k = slowest; k < processor_.level_count(); ++k) {
    const DvsEvaluation eval = evaluate(task, k);
    if (!eval.sustainable) {
      continue;
    }
    const bool better =
        !have_best ||
        (strategy == DvsStrategy::MinDeviceEnergy
             ? eval.device_energy < best.device_energy
             : eval.fuel < best.fuel);
    if (better) {
      best = eval;
      have_best = true;
    }
  }
  FCDPM_EXPECTS(have_best,
                "no deadline-feasible level is sustainable on this FC");
  return best;
}

}  // namespace fcdpm::dvs
