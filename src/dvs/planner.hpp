// DVS level selection strategies over a fuel-cell hybrid source.
//
// Reproduces the insight of the authors' prior work ([10]/[11]) that the
// paper's introduction summarizes: "the FC lifetime is maximized by
// minimizing the energy delivered from the power source and not just
// minimizing the energy consumed by the embedded system." The strategies:
//
//  * RaceToIdle       — run flat out, sleep the slack (no DVS);
//  * MinDeviceEnergy  — classic DVS: the level minimizing device energy
//                       (critical-speed aware: static/idle power can make
//                       the slowest level worse);
//  * MinFuel          — FC-aware DVS: the level minimizing *fuel*, i.e.
//                       the energy drawn from the source, accounting for
//                       the FC's load-following ceiling (peaks above it
//                       round-trip through the lossy buffer) and the
//                       efficiency curve.
//
// Under a flat fuel-optimal FC setting, minimizing fuel is equivalent to
// minimizing the charge the *source* delivers — so MinFuel and
// MinDeviceEnergy agree on which level to pick, and both beat RaceToIdle
// decisively: racing peaks beyond the FC's load-following ceiling, pays
// buffer round trips for the excess, and raises the operating point on
// the convex fuel curve. MinFuel additionally rejects deadline-feasible
// but *unsustainable* levels (average demand beyond the FC ceiling) —
// Section 1's "FCs have limited power capacity" in executable form.
#pragma once

#include "core/slot_optimizer.hpp"
#include "dvs/processor.hpp"
#include "power/efficiency_model.hpp"

namespace fcdpm::dvs {

enum class DvsStrategy { RaceToIdle, MinDeviceEnergy, MinFuel };

[[nodiscard]] const char* to_string(DvsStrategy strategy);

/// One evaluated schedule for a task period at a given level.
struct DvsEvaluation {
  std::size_t level = 0;
  Seconds run_time{0.0};
  Seconds slack{0.0};
  Joule device_energy{0.0};
  /// Fuel burned over one period under the flat-optimal FC setting,
  /// including buffer round-trip losses for load above the FC ceiling.
  Coulomb fuel{0.0};
  bool exceeds_fc_range = false;
  /// False when the period's *average* demand exceeds the FC ceiling:
  /// the schedule meets its deadline but drains the buffer without
  /// bound — the FC's limited power capacity (Section 1) rules it out.
  bool sustainable = true;
};

class DvsPlanner {
 public:
  /// `buffer_round_trip` models the storage path for load peaks above
  /// the FC's ceiling (1.0 = lossless; supercaps ~0.95-0.99).
  DvsPlanner(DvsProcessor processor, power::LinearEfficiencyModel model,
             double buffer_round_trip = 0.95);

  [[nodiscard]] const DvsProcessor& processor() const noexcept {
    return processor_;
  }

  /// Evaluate one feasible level (throws if the task does not fit).
  [[nodiscard]] DvsEvaluation evaluate(const PeriodicTask& task,
                                       std::size_t level) const;

  /// Choose a level per strategy; only sustainable schedules qualify
  /// (RaceToIdle is pinned to the top level and throws when that level
  /// is unsustainable). Throws when no level is deadline-feasible.
  [[nodiscard]] DvsEvaluation plan(const PeriodicTask& task,
                                   DvsStrategy strategy) const;

 private:
  DvsProcessor processor_;
  power::LinearEfficiencyModel model_;
  double buffer_round_trip_;
};

}  // namespace fcdpm::dvs
