#include "dvs/processor.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::dvs {

DvsProcessor::DvsProcessor(std::vector<DvsLevel> levels, Watt idle_power,
                           Volt bus_voltage)
    : levels_(std::move(levels)),
      idle_power_(idle_power),
      bus_voltage_(bus_voltage) {
  FCDPM_EXPECTS(!levels_.empty(), "need at least one DVS level");
  FCDPM_EXPECTS(idle_power.value() >= 0.0,
                "idle power must be non-negative");
  FCDPM_EXPECTS(bus_voltage.value() > 0.0, "bus voltage must be positive");
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    const DvsLevel& l = levels_[k];
    // 1-based, mirroring wl::Trace's "slot N: ..." validation.
    const auto where = [k] { return "level " + std::to_string(k + 1); };
    FCDPM_EXPECTS(std::isfinite(l.speed) && std::isfinite(l.run_power.value()),
                  where() + ": non-finite value");
    FCDPM_EXPECTS(l.speed > 0.0 && l.speed <= 1.0,
                  where() + ": speed must lie in (0, 1]");
    FCDPM_EXPECTS(l.run_power > idle_power,
                  where() + ": running must cost more than idling");
    if (k > 0) {
      FCDPM_EXPECTS(levels_[k - 1].speed < l.speed,
                    where() + ": speed must be strictly increasing");
      // Non-decreasing, not strict: real tables have plateaus where a
      // faster level costs the same power (and is then always better).
      FCDPM_EXPECTS(levels_[k - 1].run_power <= l.run_power,
                    where() + ": power must not decrease with speed");
    }
  }
}

DvsProcessor DvsProcessor::typical_embedded() {
  // Dynamic power ~ speed * V^2 (plus a 2.2 W board floor): quadratic-ish
  // growth, top level at 18.4 W = 1.53 A on the 12 V bus.
  return DvsProcessor(
      {
          {0.4, Volt(0.95), Watt(5.2)},
          {0.6, Volt(1.10), Watt(8.1)},
          {0.8, Volt(1.25), Watt(12.4)},
          {1.0, Volt(1.40), Watt(18.4)},
      },
      /*idle_power=*/Watt(2.2));
}

const DvsLevel& DvsProcessor::level(std::size_t k) const {
  FCDPM_EXPECTS(k < levels_.size(), "level index out of range");
  return levels_[k];
}

Seconds DvsProcessor::time_for(double full_speed_seconds,
                               std::size_t level) const {
  FCDPM_EXPECTS(full_speed_seconds >= 0.0, "work must be non-negative");
  return Seconds(full_speed_seconds / this->level(level).speed);
}

Joule DvsProcessor::energy_for(double full_speed_seconds,
                               std::size_t level, Seconds period) const {
  const Seconds run_time = time_for(full_speed_seconds, level);
  FCDPM_EXPECTS(run_time <= period, "work does not fit in the period");
  const Seconds slack = period - run_time;
  return this->level(level).run_power * run_time + idle_power_ * slack;
}

Ampere DvsProcessor::run_current(std::size_t level) const {
  return this->level(level).run_power / bus_voltage_;
}

Ampere DvsProcessor::idle_current() const {
  return idle_power_ / bus_voltage_;
}

std::size_t DvsProcessor::slowest_feasible(double full_speed_seconds,
                                           Seconds period) const {
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (time_for(full_speed_seconds, k) <= period) {
      return k;
    }
  }
  FCDPM_EXPECTS(false, "task infeasible even at full speed");
}

}  // namespace fcdpm::dvs
