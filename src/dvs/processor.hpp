// Dynamic voltage/frequency scaling substrate.
//
// The paper builds on the authors' FC-aware DVS work ([10] DAC'06,
// [11] ISLPED'06): a processor with discrete (voltage, frequency)
// levels, where running slower is energy-cheaper per cycle (dynamic
// power ~ V^2 * f and V scales with f) but stretches the active period.
// This module supplies that substrate so the DVS-vs-DPM interaction can
// be reproduced (bench abl_dvs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::dvs {

/// One operating point of the processor.
struct DvsLevel {
  /// Normalized speed in (0, 1]; 1 is the maximum frequency.
  double speed = 1.0;
  /// Supply voltage at this level (scales roughly with speed).
  Volt supply{1.4};
  /// Total board power when running at this level (12 V bus side).
  Watt run_power{14.0};
};

/// A DVS-capable device: sorted levels plus an idle (slack) power.
class DvsProcessor {
 public:
  /// Levels must be non-empty, sorted by ascending speed, with strictly
  /// increasing power; speeds in (0, 1].
  DvsProcessor(std::vector<DvsLevel> levels, Watt idle_power,
               Volt bus_voltage = Volt(12.0));

  /// Four-level embedded core calibrated so the top level's current
  /// (1.53 A) exceeds the paper FC's 1.2 A load-following ceiling while
  /// the lower levels sit inside it — the regime where FC-aware DVS
  /// differs from plain energy-aware DVS.
  [[nodiscard]] static DvsProcessor typical_embedded();

  [[nodiscard]] const std::vector<DvsLevel>& levels() const noexcept {
    return levels_;
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return levels_.size();
  }
  [[nodiscard]] const DvsLevel& level(std::size_t k) const;
  [[nodiscard]] Watt idle_power() const noexcept { return idle_power_; }
  [[nodiscard]] Volt bus_voltage() const noexcept { return bus_voltage_; }

  /// Wall time to retire `cycles` (in units of cycles-at-full-speed
  /// seconds: a workload of W takes W / speed seconds).
  [[nodiscard]] Seconds time_for(double full_speed_seconds,
                                 std::size_t level) const;

  /// Device energy to run the workload at `level` and idle out the rest
  /// of `period` (the classic DVS energy account).
  [[nodiscard]] Joule energy_for(double full_speed_seconds,
                                 std::size_t level, Seconds period) const;

  /// Bus current when running at `level` / when idle.
  [[nodiscard]] Ampere run_current(std::size_t level) const;
  [[nodiscard]] Ampere idle_current() const;

  /// Slowest level that still finishes within `period`; throws
  /// PreconditionError when even full speed cannot.
  [[nodiscard]] std::size_t slowest_feasible(double full_speed_seconds,
                                             Seconds period) const;

 private:
  std::vector<DvsLevel> levels_;
  Watt idle_power_;
  Volt bus_voltage_;
};

/// A periodic task: `work` seconds at full speed, every `period`.
struct PeriodicTask {
  double work_full_speed_s = 1.0;
  Seconds period{3.0};

  /// Utilization at full speed.
  [[nodiscard]] double utilization() const {
    return work_full_speed_s / period.value();
  }
};

}  // namespace fcdpm::dvs
