#include "workload/aggregation.hpp"

#include "common/contracts.hpp"

namespace fcdpm::wl {

Trace aggregate_trace(const Trace& trace, Seconds max_deferral,
                      AggregationReport* report) {
  FCDPM_EXPECTS(max_deferral.value() >= 0.0,
                "deferral budget must be non-negative");
  trace.validate();

  Trace out(trace.name() + " (aggregated)", {});
  AggregationReport stats;
  stats.original_slots = trace.size();

  std::size_t k = 0;
  while (k < trace.size()) {
    // Start a group at slot k and greedily extend it: the group's first
    // burst is deferred by every idle hoisted ahead of it, i.e. the
    // group's idle total minus the first slot's own idle.
    Seconds group_idle = trace[k].idle;
    Seconds group_active = trace[k].active;
    Joule active_energy = trace[k].active_power * trace[k].active;
    const Seconds first_idle = trace[k].idle;

    std::size_t j = k + 1;
    while (j < trace.size()) {
      const Seconds deferral = group_idle + trace[j].idle - first_idle;
      if (deferral > max_deferral) {
        break;
      }
      group_idle += trace[j].idle;
      group_active += trace[j].active;
      active_energy += trace[j].active_power * trace[j].active;
      ++j;
    }

    stats.worst_deferral =
        max(stats.worst_deferral, group_idle - first_idle);
    // Energy-preserving average power over the batched burst.
    const Watt power = active_energy / group_active;
    out.append({group_idle, group_active, power});
    k = j;
  }

  stats.merged_slots = out.size();
  if (report != nullptr) {
    *report = stats;
  }
  out.validate();
  return out;
}

}  // namespace fcdpm::wl
