#include "workload/trace_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/text.hpp"

namespace fcdpm::wl {

void save_trace(std::ostream& out, const Trace& trace) {
  CsvDocument doc;
  doc.header = {"idle_s", "active_s", "active_w"};
  doc.rows.reserve(trace.size());
  for (const TaskSlot& slot : trace.slots()) {
    doc.rows.push_back({format_fixed(slot.idle.value(), 6),
                        format_fixed(slot.active.value(), 6),
                        format_fixed(slot.active_power.value(), 6)});
  }
  write_csv(out, doc);
}

void save_trace_file(const std::string& path, const Trace& trace) {
  // Crash-safe: trace files land via temp + atomic rename.
  std::ostringstream out;
  save_trace(out, trace);
  write_file_atomic(path, out.str());
}

Trace load_trace(std::istream& in, const std::string& name) {
  const CsvDocument doc = read_csv(in, /*has_header=*/true);
  const std::size_t idle_col = doc.column("idle_s");
  const std::size_t active_col = doc.column("active_s");
  const std::size_t power_col = doc.column("active_w");

  // Errors cite the source line of the offending row (read_csv skips
  // blank and comment lines, so the row index alone is not enough).
  const auto where = [&](std::size_t row) {
    const std::size_t line = doc.line_of(row);
    return "trace " + name +
           (line > 0 ? " line " + std::to_string(line)
                     : " row " + std::to_string(row));
  };

  Trace trace(name, {});
  for (std::size_t k = 0; k < doc.rows.size(); ++k) {
    const CsvRow& row = doc.rows[k];
    const std::size_t needed =
        std::max({idle_col, active_col, power_col}) + 1;
    if (row.size() < needed) {
      throw CsvError(where(k) + ": too few fields (need " +
                     std::to_string(needed) + ", got " +
                     std::to_string(row.size()) + ")");
    }
    double idle = 0.0;
    double active = 0.0;
    double power = 0.0;
    if (!parse_double(row[idle_col], idle) ||
        !parse_double(row[active_col], active) ||
        !parse_double(row[power_col], power)) {
      throw CsvError(where(k) + ": non-numeric field");
    }
    if (!std::isfinite(idle) || !std::isfinite(active) ||
        !std::isfinite(power)) {
      throw CsvError(where(k) + ": non-finite field");
    }
    if (idle < 0.0 || active <= 0.0 || power <= 0.0) {
      throw CsvError(where(k) +
                     ": durations must be non-negative (active > 0) and "
                     "active power positive");
    }
    trace.append({Seconds(idle), Seconds(active), Watt(power)});
  }

  trace.validate();
  return trace;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw CsvError("cannot open trace file: " + path);
  }
  return load_trace(in, path);
}

}  // namespace fcdpm::wl
