// DVD-camcorder MPEG encode/write workload (Experiment 1).
//
// The paper's target application: an MPEG encoder fills a 16 MB buffer
// while the DVD writer idles; when the buffer is full the 4X writer
// drains it at 5.28 MB/s (a 3.03 s active burst at 14.65 W). The idle
// (encoding) time varies 8-20 s with the MPEG frame complexity of the
// scene being shot.
//
// The authors used a real measured trace; this reproduction synthesizes a
// deterministic, seeded trace with the same structure: scene complexity
// evolves as a Markov regime process (quiet / normal / action scenes,
// realistic dwell times) plus within-scene jitter, and the encoder
// bitrate — hence the buffer fill time — follows it. The policies only
// observe the resulting (idle, active) slot sequence, so distributional
// fidelity is what the experiment needs.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dpm/power_states.hpp"
#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Generation parameters; defaults reproduce the paper's setup.
struct CamcorderConfig {
  double buffer_mb = 16.0;
  double write_speed_mb_per_s = 5.28;  ///< 4X DVD
  Watt write_power{14.65};
  /// Encoder fill rate bounds: 16 MB / 20 s = 0.8 MB/s (placid scene) to
  /// 16 MB / 8 s = 2.0 MB/s (high-motion scene).
  double min_encode_mb_per_s = 0.8;
  double max_encode_mb_per_s = 2.0;
  Seconds recording_length{28.0 * 60.0};  ///< the paper's 28 min session
  std::uint64_t seed = 20070604;          ///< DAC 2007 opening day

  /// Scene regime dynamics: mean scene length and per-slot jitter of the
  /// encode rate within a scene.
  Seconds mean_scene_length{45.0};
  double within_scene_jitter = 0.08;  ///< relative sigma on encode rate

  /// Active burst length: buffer / write speed (3.03 s by default).
  [[nodiscard]] Seconds write_burst() const;
};

/// Generate the camcorder trace. Deterministic in the config (seed
/// included); slots cover at least `recording_length`.
[[nodiscard]] Trace generate_camcorder_trace(const CamcorderConfig& config);

/// Convenience: the paper's exact Experiment-1 trace.
[[nodiscard]] Trace paper_camcorder_trace();

/// Device model matching Figure 6 (RUN 14.65 W / STANDBY 4.84 W /
/// SLEEP 2.4 W, 0.5 s sleep transitions at 4.84 W).
[[nodiscard]] dpm::DevicePowerModel camcorder_device();

}  // namespace fcdpm::wl
