// Idle aggregation by task procrastination (the paper's related work
// [6] Jejurikar/Gupta and [7] Lu/Benini/De Micheli): deferring task
// bursts within a latency budget merges adjacent task slots, turning
// many short idles into fewer long ones — which helps any DPM policy
// (deeper sleeps, fewer transitions) and FC-DPM in particular (fewer
// optimizer re-plans, flatter profile).
#pragma once

#include "common/units.hpp"
#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Statistics of an aggregation pass.
struct AggregationReport {
  std::size_t original_slots = 0;
  std::size_t merged_slots = 0;
  /// Largest deferral any single burst experienced.
  Seconds worst_deferral{0.0};
};

/// Merge consecutive task slots greedily while no burst in a merged
/// group is deferred by more than `max_deferral`.
///
/// Within a merged group the idles are pulled to the front and the
/// bursts batched at the end, so a burst originally at the start of the
/// group is deferred by the idles (and bursts) that were hoisted ahead
/// of it. The deferral of the group's first burst is the largest; the
/// greedy pass extends a group only while that stays within budget.
/// Total idle and active time are preserved exactly.
[[nodiscard]] Trace aggregate_trace(const Trace& trace,
                                    Seconds max_deferral,
                                    AggregationReport* report = nullptr);

}  // namespace fcdpm::wl
