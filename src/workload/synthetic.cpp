#include "workload/synthetic.hpp"

#include "common/contracts.hpp"
#include "common/random.hpp"

namespace fcdpm::wl {

void SyntheticConfig::validate() const {
  FCDPM_EXPECTS(idle_min.value() >= 0.0 && idle_min <= idle_max,
                "idle bounds are invalid");
  FCDPM_EXPECTS(active_min.value() > 0.0 && active_min <= active_max,
                "active bounds are invalid");
  FCDPM_EXPECTS(power_min.value() > 0.0 && power_min <= power_max,
                "power bounds are invalid");
  FCDPM_EXPECTS(slot_count > 0 || duration.value() > 0.0,
                "either slot_count or duration must be set");
}

Trace generate_synthetic_trace(const SyntheticConfig& config) {
  config.validate();
  Rng rng(config.seed);

  Trace trace("synthetic", {});
  if (config.slot_count > 0) {
    for (std::size_t k = 0; k < config.slot_count; ++k) {
      trace.append(
          {Seconds(rng.uniform(config.idle_min.value(),
                               config.idle_max.value())),
           Seconds(rng.uniform(config.active_min.value(),
                               config.active_max.value())),
           Watt(rng.uniform(config.power_min.value(),
                            config.power_max.value()))});
    }
  } else {
    Seconds elapsed{0.0};
    while (elapsed < config.duration) {
      const TaskSlot slot{
          Seconds(rng.uniform(config.idle_min.value(),
                              config.idle_max.value())),
          Seconds(rng.uniform(config.active_min.value(),
                              config.active_max.value())),
          Watt(rng.uniform(config.power_min.value(),
                           config.power_max.value()))};
      trace.append(slot);
      elapsed += slot.idle + slot.active;
    }
  }

  trace.validate();
  return trace;
}

Trace paper_synthetic_trace() {
  return generate_synthetic_trace(SyntheticConfig{});
}

dpm::DevicePowerModel synthetic_device() {
  return dpm::DevicePowerModel::experiment2_device();
}

}  // namespace fcdpm::wl
