// Load timing profile: a sequence of task slots, each an idle period
// followed by an active period (Section 3.1). The active power may vary
// per slot (Experiment 2); idle power is decided by the DPM policy, not
// by the trace.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::wl {

/// One task slot: idle (no request), then active (task request).
struct TaskSlot {
  Seconds idle;
  Seconds active;
  Watt active_power;
};

/// Aggregate statistics of a trace (used in reports and tests).
struct TraceStats {
  std::size_t slots = 0;
  Seconds total_idle{0.0};
  Seconds total_active{0.0};
  Seconds min_idle{0.0};
  Seconds max_idle{0.0};
  Seconds mean_idle{0.0};
  Seconds min_active{0.0};
  Seconds max_active{0.0};
  Seconds mean_active{0.0};
  Watt min_active_power{0.0};
  Watt max_active_power{0.0};
  Watt mean_active_power{0.0};

  [[nodiscard]] Seconds total_duration() const {
    return total_idle + total_active;
  }
};

/// A named sequence of task slots on a fixed-voltage bus.
class Trace {
 public:
  Trace() = default;
  /// Validates every slot on construction (same contract as validate());
  /// programmatic construction cannot bypass the trace_io checks.
  Trace(std::string name, std::vector<TaskSlot> slots);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<TaskSlot>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }
  [[nodiscard]] const TaskSlot& operator[](std::size_t k) const {
    return slots_[k];
  }

  /// Appends one slot after validating it (1-based index in the error).
  void append(TaskSlot slot);

  /// Slot-wise statistics; requires a non-empty trace.
  [[nodiscard]] TraceStats stats() const;

  /// Prefix of this trace truncated at `duration` of wall time (slots are
  /// kept whole; the slot that crosses the boundary is included).
  [[nodiscard]] Trace truncated(Seconds duration) const;

  /// This trace repeated `count` times back to back (steady-state and
  /// lifetime studies). Requires count >= 1.
  [[nodiscard]] Trace repeated(std::size_t count) const;

  /// Validation: finite fields, non-negative idle, positive active time
  /// and power. Throws PreconditionError naming the first offending slot
  /// (1-based). Construction and append() already enforce this; validate()
  /// remains for callers re-checking externally produced traces.
  void validate() const;

 private:
  std::string name_;
  std::vector<TaskSlot> slots_;
};

}  // namespace fcdpm::wl
