// Trace persistence: CSV with columns idle_s, active_s, active_w.
// Lets users replay their own measured traces through the policies.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Serialize a trace (header + one row per slot).
void save_trace(std::ostream& out, const Trace& trace);
void save_trace_file(const std::string& path, const Trace& trace);

/// Parse a trace; validates slot values. The name comes from the caller
/// (streams) or the file path (files). Throws CsvError / PreconditionError
/// on malformed input.
[[nodiscard]] Trace load_trace(std::istream& in, const std::string& name);
[[nodiscard]] Trace load_trace_file(const std::string& path);

}  // namespace fcdpm::wl
