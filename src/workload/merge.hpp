// Multi-device aggregation (the paper's related work [7], Lu et al.,
// "low-power task scheduling for multiple devices"): several devices
// share the hybrid source; their individual request streams merge into
// one aggregate load timeline. Each maximal stretch with a constant set
// of active devices becomes one task slot (consecutive busy stretches
// are slots with zero idle between them), so the single-device DPM/FC
// machinery applies unchanged to the aggregate.
#pragma once

#include <string>
#include <vector>

#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Merge device timelines into one aggregate trace. Each input trace is
/// interpreted as a timeline (idle_0, active_0, idle_1, ...); the output
/// covers the union of busy intervals with the summed active power.
/// Total active energy is preserved exactly; the aggregate's "idle"
/// periods are the stretches where *no* device is active.
[[nodiscard]] Trace merge_traces(const std::vector<Trace>& traces,
                                 const std::string& name);

}  // namespace fcdpm::wl
