#include "workload/camcorder.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/random.hpp"

namespace fcdpm::wl {

Seconds CamcorderConfig::write_burst() const {
  FCDPM_EXPECTS(write_speed_mb_per_s > 0.0, "write speed must be positive");
  return Seconds(buffer_mb / write_speed_mb_per_s);
}

namespace {

/// Scene regimes with their typical encode-rate band (fraction of the
/// [min, max] encode-rate range).
struct SceneRegime {
  double rate_lo;
  double rate_hi;
};

constexpr SceneRegime kRegimes[] = {
    {0.00, 0.30},  // placid: talking heads, static shots
    {0.25, 0.70},  // normal motion
    {0.60, 1.00},  // action: pans, high detail
};
constexpr std::size_t kRegimeCount = std::size(kRegimes);

}  // namespace

Trace generate_camcorder_trace(const CamcorderConfig& config) {
  FCDPM_EXPECTS(config.buffer_mb > 0.0, "buffer size must be positive");
  FCDPM_EXPECTS(config.min_encode_mb_per_s > 0.0 &&
                    config.min_encode_mb_per_s < config.max_encode_mb_per_s,
                "encode-rate band is empty");
  FCDPM_EXPECTS(config.recording_length.value() > 0.0,
                "recording length must be positive");
  FCDPM_EXPECTS(config.mean_scene_length.value() > 0.0,
                "mean scene length must be positive");

  Rng rng(config.seed);
  const Seconds burst = config.write_burst();
  const double rate_span =
      config.max_encode_mb_per_s - config.min_encode_mb_per_s;

  Trace trace("camcorder", {});
  Seconds elapsed{0.0};

  std::size_t regime = 1;  // start in a normal scene
  Seconds scene_left{0.0};
  double scene_rate = 0.0;

  while (elapsed < config.recording_length) {
    if (scene_left.value() <= 0.0) {
      // New scene: pick a regime (never repeat deterministically; a
      // uniform choice keeps the mix rich) and a base rate within it.
      regime = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kRegimeCount) - 1));
      const SceneRegime& r = kRegimes[regime];
      scene_rate = config.min_encode_mb_per_s +
                   rate_span * rng.uniform(r.rate_lo, r.rate_hi);
      // Exponential scene lengths give the bursty cut structure of real
      // footage; floor at 5 s so scenes hold a few slots.
      scene_left = Seconds(
          std::max(5.0, rng.exponential(1.0 / config.mean_scene_length
                                                  .value())));
    }

    // Per-slot jitter on the encode rate, clamped to the legal band.
    const double rate = std::clamp(
        scene_rate * (1.0 + rng.normal(0.0, config.within_scene_jitter)),
        config.min_encode_mb_per_s, config.max_encode_mb_per_s);

    const Seconds idle(config.buffer_mb / rate);
    trace.append({idle, burst, config.write_power});

    const Seconds slot_length = idle + burst;
    elapsed += slot_length;
    scene_left -= slot_length;
  }

  trace.validate();
  return trace;
}

Trace paper_camcorder_trace() {
  return generate_camcorder_trace(CamcorderConfig{});
}

dpm::DevicePowerModel camcorder_device() {
  return dpm::DevicePowerModel::dvd_camcorder();
}

}  // namespace fcdpm::wl
