#include "workload/merge.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm::wl {

namespace {

struct PowerEvent {
  double time = 0.0;
  double delta_w = 0.0;
};

}  // namespace

Trace merge_traces(const std::vector<Trace>& traces,
                   const std::string& name) {
  FCDPM_EXPECTS(!traces.empty(), "need at least one trace to merge");

  std::vector<PowerEvent> events;
  for (const Trace& trace : traces) {
    trace.validate();
    double clock = 0.0;
    for (const TaskSlot& slot : trace.slots()) {
      clock += slot.idle.value();
      events.push_back({clock, slot.active_power.value()});
      clock += slot.active.value();
      events.push_back({clock, -slot.active_power.value()});
    }
  }
  FCDPM_EXPECTS(!events.empty(), "all traces are empty");

  std::sort(events.begin(), events.end(),
            [](const PowerEvent& a, const PowerEvent& b) {
              return a.time < b.time;
            });

  Trace out(name, {});
  double cursor = 0.0;       // current sweep time
  double power = 0.0;        // current total active power
  double idle_accrued = 0.0; // zero-power time since the last busy slot

  std::size_t k = 0;
  while (k < events.size()) {
    // Coalesce events at (numerically) the same instant.
    const double t = events[k].time;
    const double span = t - cursor;
    if (span > 0.0) {
      if (power > 1e-9) {
        out.append({Seconds(idle_accrued), Seconds(span), Watt(power)});
        idle_accrued = 0.0;
      } else {
        idle_accrued += span;
      }
    }
    while (k < events.size() && events[k].time <= t + 1e-12) {
      power += events[k].delta_w;
      ++k;
    }
    power = std::max(power, 0.0);  // guard accumulated rounding
    cursor = t;
  }
  // Trailing idle time (after the last burst) is dropped: a slot needs
  // an active period by definition.

  out.validate();
  return out;
}

}  // namespace fcdpm::wl
