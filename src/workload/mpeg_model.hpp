// Frame-level MPEG encoder model: a finer-grained synthesis of the
// camcorder workload than the rate-based generator in camcorder.hpp.
//
// The paper's idle periods are "varied from 8 s to 20 s, depending on
// the characteristics of the MPEG frames". This model produces those
// idle periods mechanistically: the encoder emits a 30 fps stream with a
// classic IBBPBBPBBPBBPBB GOP; frame sizes depend on type (I >> P > B)
// and on a scene-complexity process; the write burst triggers when the
// accumulated stream fills the 16 MB buffer. Idle durations then emerge
// from the data instead of being drawn directly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Frame types of an MPEG GOP.
enum class FrameType { I, P, B };

/// Encoder/GOP parameters. Defaults give a mean fill rate matching the
/// paper's 8-20 s idle band for a 16 MB buffer.
struct MpegEncoderConfig {
  double fps = 30.0;
  /// GOP pattern length (frames) and I/P spacing: IBBPBB... with one I
  /// per GOP and a P every `b_frames + 1` frames.
  int gop_length = 15;
  int b_frames = 2;

  /// Frame sizes at complexity 1.0, in megabytes.
  double i_frame_mb = 0.140;
  double p_frame_mb = 0.055;
  double b_frame_mb = 0.028;

  /// Scene complexity multiplies every frame size; it follows a bounded
  /// random walk between scene cuts (as in camcorder.hpp).
  double min_complexity = 0.62;
  double max_complexity = 1.55;
  Seconds mean_scene_length{45.0};
  double within_scene_jitter = 0.05;

  double buffer_mb = 16.0;
  double write_speed_mb_per_s = 5.28;
  Watt write_power{14.65};
  Seconds recording_length{28.0 * 60.0};
  std::uint64_t seed = 20070604;
};

/// Frame type at position `index` within the GOP (0 = the I frame).
[[nodiscard]] FrameType frame_type_at(const MpegEncoderConfig& config,
                                      int index);

/// Size of one frame (MB) at the given complexity.
[[nodiscard]] double frame_size_mb(const MpegEncoderConfig& config,
                                   FrameType type, double complexity);

/// Mean stream rate (MB/s) at complexity 1.0 — useful for sizing the
/// complexity band against a target idle range.
[[nodiscard]] double nominal_stream_rate(const MpegEncoderConfig& config);

/// Generate the camcorder trace frame by frame. Deterministic in the
/// config. Idle durations are quantized to whole frames (1/fps).
[[nodiscard]] Trace generate_mpeg_trace(const MpegEncoderConfig& config);

}  // namespace fcdpm::wl
