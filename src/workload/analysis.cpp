#include "workload/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm::wl {

std::size_t Histogram::total() const {
  std::size_t sum = 0;
  for (const std::size_t c : counts) {
    sum += c;
  }
  return sum;
}

double Histogram::fraction(std::size_t k) const {
  FCDPM_EXPECTS(k < counts.size(), "bin index out of range");
  const std::size_t n = total();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(counts[k]) / static_cast<double>(n);
}

double Histogram::bin_width() const {
  if (counts.empty()) {
    return 0.0;
  }
  return (hi - lo) / static_cast<double>(counts.size());
}

Histogram histogram(const std::vector<double>& samples, std::size_t bins) {
  FCDPM_EXPECTS(bins >= 1, "need at least one bin");
  FCDPM_EXPECTS(!samples.empty(), "histogram of empty samples");

  Histogram h;
  h.lo = *std::min_element(samples.begin(), samples.end());
  h.hi = *std::max_element(samples.begin(), samples.end());
  h.counts.assign(bins, 0);

  if (h.hi == h.lo) {
    h.counts[0] = samples.size();
    return h;
  }

  const double width = (h.hi - h.lo) / static_cast<double>(bins);
  for (const double s : samples) {
    const auto k = static_cast<std::size_t>(
        std::min(static_cast<double>(bins - 1), (s - h.lo) / width));
    ++h.counts[k];
  }
  return h;
}

std::vector<double> idle_durations(const Trace& trace) {
  std::vector<double> out;
  out.reserve(trace.size());
  for (const TaskSlot& slot : trace.slots()) {
    out.push_back(slot.idle.value());
  }
  return out;
}

std::vector<double> active_durations(const Trace& trace) {
  std::vector<double> out;
  out.reserve(trace.size());
  for (const TaskSlot& slot : trace.slots()) {
    out.push_back(slot.active.value());
  }
  return out;
}

std::vector<double> active_powers(const Trace& trace) {
  std::vector<double> out;
  out.reserve(trace.size());
  for (const TaskSlot& slot : trace.slots()) {
    out.push_back(slot.active_power.value());
  }
  return out;
}

double autocorrelation(const std::vector<double>& samples,
                       std::size_t lag) {
  FCDPM_EXPECTS(lag >= 1, "lag must be >= 1");
  FCDPM_EXPECTS(samples.size() > lag, "need more samples than the lag");

  double mean = 0.0;
  for (const double s : samples) {
    mean += s;
  }
  mean /= static_cast<double>(samples.size());

  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double d = samples[k] - mean;
    denominator += d * d;
    if (k >= lag) {
      numerator += d * (samples[k - lag] - mean);
    }
  }
  FCDPM_EXPECTS(denominator > 0.0,
                "autocorrelation of a constant sequence is undefined");
  return numerator / denominator;
}

double duty_cycle(const Trace& trace) {
  const TraceStats stats = trace.stats();
  return stats.total_active / stats.total_duration();
}

Ampere average_load_current(const Trace& trace, Volt bus,
                            Ampere idle_current) {
  FCDPM_EXPECTS(bus.value() > 0.0, "bus voltage must be positive");
  Coulomb charge{0.0};
  Seconds time{0.0};
  for (const TaskSlot& slot : trace.slots()) {
    charge += idle_current * slot.idle;
    charge += (slot.active_power / bus) * slot.active;
    time += slot.idle + slot.active;
  }
  FCDPM_EXPECTS(time.value() > 0.0, "empty trace");
  return charge / time;
}

}  // namespace fcdpm::wl
