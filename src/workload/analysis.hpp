// Trace analysis utilities: the statistics the paper's workloads are
// characterized by (idle/active distributions, burstiness, scene
// correlation). Used by the generators' tests and by users validating
// that a captured trace matches a synthetic stand-in.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "workload/trace.hpp"

namespace fcdpm::wl {

/// Histogram of a sample set over uniform bins spanning [min, max].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] std::size_t total() const;
  /// Fraction of samples in bin `k`.
  [[nodiscard]] double fraction(std::size_t k) const;
  [[nodiscard]] double bin_width() const;
};

/// Build a histogram with `bins` >= 1 uniform bins over the sample range
/// (degenerate all-equal samples land in one bin).
[[nodiscard]] Histogram histogram(const std::vector<double>& samples,
                                  std::size_t bins);

/// Idle durations / active durations / active powers of a trace.
[[nodiscard]] std::vector<double> idle_durations(const Trace& trace);
[[nodiscard]] std::vector<double> active_durations(const Trace& trace);
[[nodiscard]] std::vector<double> active_powers(const Trace& trace);

/// Lag-k autocorrelation of a sample sequence (k >= 1; requires more
/// than k samples). Near 0 for i.i.d. draws, positive for scene-
/// structured traces like the camcorder's.
[[nodiscard]] double autocorrelation(const std::vector<double>& samples,
                                     std::size_t lag);

/// Duty cycle: active time / total time.
[[nodiscard]] double duty_cycle(const Trace& trace);

/// Time-average device current of a trace on `bus` given the idle-state
/// current (what a DPM policy would pin during idles). This is the load
/// the flat FC setting converges to.
[[nodiscard]] Ampere average_load_current(const Trace& trace, Volt bus,
                                          Ampere idle_current);

}  // namespace fcdpm::wl
