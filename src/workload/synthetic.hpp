// Synthetic uniform-random workload (Experiment 2): idle U[5 s, 25 s],
// active U[2 s, 4 s], active power U[12 W, 16 W].
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "dpm/power_states.hpp"
#include "workload/trace.hpp"

namespace fcdpm::wl {

struct SyntheticConfig {
  Seconds idle_min{5.0};
  Seconds idle_max{25.0};
  Seconds active_min{2.0};
  Seconds active_max{4.0};
  Watt power_min{12.0};
  Watt power_max{16.0};
  /// Either a fixed slot count...
  std::size_t slot_count = 0;
  /// ...or a target duration (used when slot_count == 0).
  Seconds duration{28.0 * 60.0};
  std::uint64_t seed = 424242;

  void validate() const;
};

/// Generate the synthetic trace; deterministic in the config.
[[nodiscard]] Trace generate_synthetic_trace(const SyntheticConfig& config);

/// The paper's exact Experiment-2 workload.
[[nodiscard]] Trace paper_synthetic_trace();

/// Experiment 2's device model (1 s / 14.4 W sleep transitions,
/// break-even ~10 s).
[[nodiscard]] dpm::DevicePowerModel synthetic_device();

}  // namespace fcdpm::wl
