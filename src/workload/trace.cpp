#include "workload/trace.hpp"

#include <limits>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::wl {

Trace::Trace(std::string name, std::vector<TaskSlot> slots)
    : name_(std::move(name)), slots_(std::move(slots)) {}

void Trace::append(TaskSlot slot) { slots_.push_back(slot); }

TraceStats Trace::stats() const {
  FCDPM_EXPECTS(!slots_.empty(), "stats of an empty trace");

  TraceStats s;
  s.slots = slots_.size();
  s.min_idle = Seconds(std::numeric_limits<double>::infinity());
  s.min_active = Seconds(std::numeric_limits<double>::infinity());
  s.min_active_power = Watt(std::numeric_limits<double>::infinity());

  double power_sum = 0.0;
  for (const TaskSlot& slot : slots_) {
    s.total_idle += slot.idle;
    s.total_active += slot.active;
    s.min_idle = min(s.min_idle, slot.idle);
    s.max_idle = max(s.max_idle, slot.idle);
    s.min_active = min(s.min_active, slot.active);
    s.max_active = max(s.max_active, slot.active);
    s.min_active_power = min(s.min_active_power, slot.active_power);
    s.max_active_power = max(s.max_active_power, slot.active_power);
    power_sum += slot.active_power.value();
  }

  const double n = static_cast<double>(slots_.size());
  s.mean_idle = s.total_idle / n;
  s.mean_active = s.total_active / n;
  s.mean_active_power = Watt(power_sum / n);
  return s;
}

Trace Trace::truncated(Seconds duration) const {
  FCDPM_EXPECTS(duration.value() >= 0.0, "duration must be non-negative");
  Trace out(name_ + " (truncated)", {});
  Seconds elapsed{0.0};
  for (const TaskSlot& slot : slots_) {
    if (elapsed >= duration) {
      break;
    }
    out.append(slot);
    elapsed += slot.idle + slot.active;
  }
  return out;
}

Trace Trace::repeated(std::size_t count) const {
  FCDPM_EXPECTS(count >= 1, "repeat count must be at least 1");
  Trace out(name_ + " (x" + std::to_string(count) + ")", {});
  for (std::size_t pass = 0; pass < count; ++pass) {
    for (const TaskSlot& slot : slots_) {
      out.append(slot);
    }
  }
  return out;
}

void Trace::validate() const {
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    const TaskSlot& slot = slots_[k];
    FCDPM_EXPECTS(slot.idle.value() >= 0.0,
                  "slot " + std::to_string(k) + ": negative idle time");
    FCDPM_EXPECTS(slot.active.value() > 0.0,
                  "slot " + std::to_string(k) + ": active time must be > 0");
    FCDPM_EXPECTS(slot.active_power.value() > 0.0,
                  "slot " + std::to_string(k) +
                      ": active power must be positive");
  }
}

}  // namespace fcdpm::wl
