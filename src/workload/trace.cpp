#include "workload/trace.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::wl {

namespace {

/// Shared slot contract, `trace_io`-style: finite fields, idle >= 0,
/// active > 0, active power > 0. `index` is 1-based, matching the
/// "line N" convention of the CSV loader's diagnostics.
void check_slot(const TaskSlot& slot, std::size_t index) {
  const auto where = [index] { return "slot " + std::to_string(index); };
  FCDPM_EXPECTS(std::isfinite(slot.idle.value()) &&
                    std::isfinite(slot.active.value()) &&
                    std::isfinite(slot.active_power.value()),
                where() + ": non-finite field");
  FCDPM_EXPECTS(slot.idle.value() >= 0.0,
                where() + ": negative idle time");
  FCDPM_EXPECTS(slot.active.value() > 0.0,
                where() + ": active time must be > 0");
  FCDPM_EXPECTS(slot.active_power.value() > 0.0,
                where() + ": active power must be positive");
}

}  // namespace

Trace::Trace(std::string name, std::vector<TaskSlot> slots)
    : name_(std::move(name)), slots_(std::move(slots)) {
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    check_slot(slots_[k], k + 1);
  }
}

void Trace::append(TaskSlot slot) {
  check_slot(slot, slots_.size() + 1);
  slots_.push_back(slot);
}

TraceStats Trace::stats() const {
  FCDPM_EXPECTS(!slots_.empty(), "stats of an empty trace");

  TraceStats s;
  s.slots = slots_.size();
  s.min_idle = Seconds(std::numeric_limits<double>::infinity());
  s.min_active = Seconds(std::numeric_limits<double>::infinity());
  s.min_active_power = Watt(std::numeric_limits<double>::infinity());

  double power_sum = 0.0;
  for (const TaskSlot& slot : slots_) {
    s.total_idle += slot.idle;
    s.total_active += slot.active;
    s.min_idle = min(s.min_idle, slot.idle);
    s.max_idle = max(s.max_idle, slot.idle);
    s.min_active = min(s.min_active, slot.active);
    s.max_active = max(s.max_active, slot.active);
    s.min_active_power = min(s.min_active_power, slot.active_power);
    s.max_active_power = max(s.max_active_power, slot.active_power);
    power_sum += slot.active_power.value();
  }

  const double n = static_cast<double>(slots_.size());
  s.mean_idle = s.total_idle / n;
  s.mean_active = s.total_active / n;
  s.mean_active_power = Watt(power_sum / n);
  return s;
}

Trace Trace::truncated(Seconds duration) const {
  FCDPM_EXPECTS(duration.value() >= 0.0, "duration must be non-negative");
  Trace out(name_ + " (truncated)", {});
  Seconds elapsed{0.0};
  for (const TaskSlot& slot : slots_) {
    if (elapsed >= duration) {
      break;
    }
    out.append(slot);
    elapsed += slot.idle + slot.active;
  }
  return out;
}

Trace Trace::repeated(std::size_t count) const {
  FCDPM_EXPECTS(count >= 1, "repeat count must be at least 1");
  Trace out(name_ + " (x" + std::to_string(count) + ")", {});
  for (std::size_t pass = 0; pass < count; ++pass) {
    for (const TaskSlot& slot : slots_) {
      out.append(slot);
    }
  }
  return out;
}

void Trace::validate() const {
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    check_slot(slots_[k], k + 1);
  }
}

}  // namespace fcdpm::wl
