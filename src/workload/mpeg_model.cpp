#include "workload/mpeg_model.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/random.hpp"

namespace fcdpm::wl {

FrameType frame_type_at(const MpegEncoderConfig& config, int index) {
  FCDPM_EXPECTS(index >= 0 && index < config.gop_length,
                "frame index outside the GOP");
  if (index == 0) {
    return FrameType::I;
  }
  // Anchor (P) frames every b_frames+1 positions after the I frame.
  return (index % (config.b_frames + 1) == 0) ? FrameType::P
                                              : FrameType::B;
}

double frame_size_mb(const MpegEncoderConfig& config, FrameType type,
                     double complexity) {
  FCDPM_EXPECTS(complexity > 0.0, "complexity must be positive");
  switch (type) {
    case FrameType::I:
      return config.i_frame_mb * complexity;
    case FrameType::P:
      return config.p_frame_mb * complexity;
    case FrameType::B:
      return config.b_frame_mb * complexity;
  }
  FCDPM_ENSURES(false, "unknown frame type");
}

double nominal_stream_rate(const MpegEncoderConfig& config) {
  double gop_mb = 0.0;
  for (int k = 0; k < config.gop_length; ++k) {
    gop_mb += frame_size_mb(config, frame_type_at(config, k), 1.0);
  }
  const double gop_seconds = config.gop_length / config.fps;
  return gop_mb / gop_seconds;
}

Trace generate_mpeg_trace(const MpegEncoderConfig& config) {
  FCDPM_EXPECTS(config.fps > 0.0, "fps must be positive");
  FCDPM_EXPECTS(config.gop_length >= 1, "GOP needs at least one frame");
  FCDPM_EXPECTS(config.b_frames >= 0, "b_frames must be non-negative");
  FCDPM_EXPECTS(config.buffer_mb > 0.0, "buffer must be positive");
  FCDPM_EXPECTS(config.write_speed_mb_per_s > 0.0,
                "write speed must be positive");
  FCDPM_EXPECTS(
      config.min_complexity > 0.0 &&
          config.min_complexity < config.max_complexity,
      "complexity band is empty");
  FCDPM_EXPECTS(config.recording_length.value() > 0.0,
                "recording length must be positive");

  Rng rng(config.seed);
  const Seconds burst(config.buffer_mb / config.write_speed_mb_per_s);
  const double frame_time = 1.0 / config.fps;

  Trace trace("camcorder-mpeg", {});
  Seconds elapsed{0.0};

  double buffered_mb = 0.0;
  long frames_since_flush = 0;
  int gop_position = 0;

  double scene_complexity =
      0.5 * (config.min_complexity + config.max_complexity);
  double scene_left = 0.0;

  while (elapsed < config.recording_length) {
    if (scene_left <= 0.0) {
      scene_complexity =
          rng.uniform(config.min_complexity, config.max_complexity);
      scene_left = std::max(
          5.0, rng.exponential(1.0 / config.mean_scene_length.value()));
    }

    const double complexity = std::clamp(
        scene_complexity *
            (1.0 + rng.normal(0.0, config.within_scene_jitter)),
        config.min_complexity, config.max_complexity);

    buffered_mb += frame_size_mb(
        config, frame_type_at(config, gop_position), complexity);
    ++frames_since_flush;
    gop_position = (gop_position + 1) % config.gop_length;
    scene_left -= frame_time;

    if (buffered_mb >= config.buffer_mb) {
      const Seconds idle(frames_since_flush * frame_time);
      trace.append({idle, burst, config.write_power});
      elapsed += idle + burst;
      buffered_mb -= config.buffer_mb;  // carry the overflow
      frames_since_flush = 0;
    }
  }

  trace.validate();
  return trace;
}

}  // namespace fcdpm::wl
