#include "common/contracts.hpp"

#include <sstream>

namespace fcdpm::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& message) {
  std::ostringstream out;
  out << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  return out.str();
}
}  // namespace

void fail_precondition(const char* expr, const char* file, int line,
                       const std::string& message) {
  throw PreconditionError(format("precondition", expr, file, line, message));
}

void fail_invariant(const char* expr, const char* file, int line,
                    const std::string& message) {
  throw InvariantError(format("invariant", expr, file, line, message));
}

}  // namespace fcdpm::detail
