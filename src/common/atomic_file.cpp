#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/csv.hpp"

namespace fcdpm {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw CsvError(what + ": " + path + " (" + std::strerror(errno) + ")");
}

}  // namespace

std::string atomic_temp_path(const std::string& path) {
  return path + ".tmp";
}

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string temp = atomic_temp_path(path);
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    fail("cannot create file", temp);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      fail("cannot write file", temp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    fail("cannot sync file", temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    fail("cannot rename into place", path);
  }
  fsync_parent_dir(path);
}

void commit_file(const std::string& temp_path, const std::string& path) {
  const int fd = ::open(temp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail("cannot open staged file", temp_path);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    fail("cannot sync staged file", temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    fail("cannot rename into place", path);
  }
  fsync_parent_dir(path);
}

void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string dir = (slash == std::string::npos) ? std::string(".")
                                                 : path.substr(0, slash);
  if (dir.empty()) {
    dir = "/";
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    fail("cannot open parent directory", dir);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot sync parent directory", dir);
  }
  if (::close(fd) != 0) {
    fail("cannot close parent directory", dir);
  }
}

}  // namespace fcdpm
