#include "common/solvers.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm {

namespace {
constexpr double kInvPhi = 0.6180339887498949;  // 1/golden ratio
}

ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double x_tolerance,
                                      int max_iterations) {
  FCDPM_EXPECTS(lo < hi, "golden section needs a non-empty bracket");
  FCDPM_EXPECTS(x_tolerance > 0.0, "tolerance must be positive");

  double a = lo;
  double b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c);
  double fd = f(d);

  int iterations = 0;
  while ((b - a) > x_tolerance && iterations < max_iterations) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
    ++iterations;
  }

  ScalarMinimum result;
  result.x = 0.5 * (a + b);
  result.value = f(result.x);
  result.iterations = iterations;
  return result;
}

ScalarRoot bisect(const std::function<double(double)>& f, double lo,
                  double hi, double x_tolerance, int max_iterations) {
  FCDPM_EXPECTS(lo <= hi, "bisection bracket is inverted");

  double fa = f(lo);
  double fb = f(hi);

  ScalarRoot result;
  if (fa == 0.0) {
    result = {lo, 0.0, 0, true};
    return result;
  }
  if (fb == 0.0) {
    result = {hi, 0.0, 0, true};
    return result;
  }
  FCDPM_EXPECTS(std::signbit(fa) != std::signbit(fb),
                "bisection requires a sign change on the bracket");

  double a = lo;
  double b = hi;
  int iterations = 0;
  double mid = 0.5 * (a + b);
  double fm = f(mid);
  while ((b - a) > x_tolerance && iterations < max_iterations &&
         fm != 0.0) {
    if (std::signbit(fm) == std::signbit(fa)) {
      a = mid;
      fa = fm;
    } else {
      b = mid;
    }
    mid = 0.5 * (a + b);
    fm = f(mid);
    ++iterations;
  }

  result.x = mid;
  result.residual = fm;
  result.iterations = iterations;
  result.converged = (b - a) <= x_tolerance || fm == 0.0;
  return result;
}

ScalarMinimum minimize_on_box(const std::function<double(double)>& f,
                              double lo, double hi, double x_tolerance) {
  FCDPM_EXPECTS(lo <= hi, "box is inverted");
  if (lo == hi) {
    return {lo, f(lo), 0};
  }

  ScalarMinimum interior = golden_section_minimize(f, lo, hi, x_tolerance);

  const double f_lo = f(lo);
  const double f_hi = f(hi);
  if (f_lo <= interior.value && f_lo <= f_hi) {
    return {lo, f_lo, interior.iterations};
  }
  if (f_hi <= interior.value) {
    return {hi, f_hi, interior.iterations};
  }
  return interior;
}

}  // namespace fcdpm
