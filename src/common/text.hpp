// String utilities shared by the CSV layer and report renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fcdpm {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Split on a single-character delimiter; adjacent delimiters yield empty
/// fields, and splitting "" yields one empty field (CSV semantics).
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// printf-style "%.*f" with trailing-zero trimming ("1.30" -> "1.3",
/// "2.00" -> "2"). Used for table cells.
[[nodiscard]] std::string format_fixed(double value, int max_decimals);

/// Render a fraction as a percentage string, e.g. 0.308 -> "30.8%".
[[nodiscard]] std::string format_percent(double fraction, int decimals = 1);

/// True when `text` parses fully as a floating-point number.
[[nodiscard]] bool parse_double(std::string_view text, double& out);

/// Left-pad / right-pad to a minimum width with spaces.
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

}  // namespace fcdpm
