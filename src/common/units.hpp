// Strongly-typed physical quantities for the power-management domain.
//
// The paper's math mixes currents, voltages, powers, times, charges and
// energies; silently mixing them up is the classic bug in power simulators.
// Each quantity is a distinct type; only physically meaningful operations
// compile (e.g. Volt * Ampere -> Watt, Ampere * Seconds -> Coulomb).
//
// Quantities are thin wrappers over `double` (SI base units), trivially
// copyable and constexpr-friendly; there is no runtime overhead at -O1+.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <string>

namespace fcdpm {

namespace detail {

/// CRTP-free tagged scalar. `Tag` makes each physical dimension a distinct
/// type; `Tag::symbol()` supplies the SI unit suffix used for printing.
template <typename Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double value) noexcept : value_(value) {}

  /// Magnitude in the SI base unit of this dimension.
  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  friend constexpr auto operator<=>(Quantity, Quantity) noexcept = default;

  constexpr Quantity operator-() const noexcept { return Quantity(-value_); }

  constexpr Quantity& operator+=(Quantity other) noexcept {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) noexcept {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double scale) noexcept {
    value_ *= scale;
    return *this;
  }
  constexpr Quantity& operator/=(double scale) noexcept {
    value_ /= scale;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity(a.value_ / s);
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) noexcept {
    return a.value_ / b.value_;
  }

 private:
  double value_ = 0.0;
};

}  // namespace detail

struct CurrentTag {
  static constexpr const char* symbol() { return "A"; }
};
struct VoltageTag {
  static constexpr const char* symbol() { return "V"; }
};
struct PowerTag {
  static constexpr const char* symbol() { return "W"; }
};
struct TimeTag {
  static constexpr const char* symbol() { return "s"; }
};
struct ChargeTag {
  static constexpr const char* symbol() { return "A-s"; }
};
struct EnergyTag {
  static constexpr const char* symbol() { return "J"; }
};
struct CapacitanceTag {
  static constexpr const char* symbol() { return "F"; }
};

using Ampere = detail::Quantity<CurrentTag>;
using Volt = detail::Quantity<VoltageTag>;
using Watt = detail::Quantity<PowerTag>;
using Seconds = detail::Quantity<TimeTag>;
using Coulomb = detail::Quantity<ChargeTag>;  // printed as A-s per the paper
using Joule = detail::Quantity<EnergyTag>;
using Farad = detail::Quantity<CapacitanceTag>;

// --- physically meaningful cross-dimension operations -----------------------

constexpr Watt operator*(Volt v, Ampere i) noexcept {
  return Watt(v.value() * i.value());
}
constexpr Watt operator*(Ampere i, Volt v) noexcept { return v * i; }
constexpr Ampere operator/(Watt p, Volt v) noexcept {
  return Ampere(p.value() / v.value());
}
constexpr Volt operator/(Watt p, Ampere i) noexcept {
  return Volt(p.value() / i.value());
}

constexpr Coulomb operator*(Ampere i, Seconds t) noexcept {
  return Coulomb(i.value() * t.value());
}
constexpr Coulomb operator*(Seconds t, Ampere i) noexcept { return i * t; }
constexpr Ampere operator/(Coulomb q, Seconds t) noexcept {
  return Ampere(q.value() / t.value());
}
constexpr Seconds operator/(Coulomb q, Ampere i) noexcept {
  return Seconds(q.value() / i.value());
}

constexpr Joule operator*(Watt p, Seconds t) noexcept {
  return Joule(p.value() * t.value());
}
constexpr Joule operator*(Seconds t, Watt p) noexcept { return p * t; }
constexpr Watt operator/(Joule e, Seconds t) noexcept {
  return Watt(e.value() / t.value());
}
constexpr Seconds operator/(Joule e, Watt p) noexcept {
  return Seconds(e.value() / p.value());
}

constexpr Joule operator*(Coulomb q, Volt v) noexcept {
  return Joule(q.value() * v.value());
}
constexpr Joule operator*(Volt v, Coulomb q) noexcept { return q * v; }
constexpr Coulomb operator/(Joule e, Volt v) noexcept {
  return Coulomb(e.value() / v.value());
}

constexpr Coulomb operator*(Farad c, Volt v) noexcept {
  return Coulomb(c.value() * v.value());
}
constexpr Farad operator/(Coulomb q, Volt v) noexcept {
  return Farad(q.value() / v.value());
}

// --- small helpers -----------------------------------------------------------

template <typename Tag>
constexpr detail::Quantity<Tag> abs(detail::Quantity<Tag> q) noexcept {
  return detail::Quantity<Tag>(q.value() < 0 ? -q.value() : q.value());
}

template <typename Tag>
constexpr detail::Quantity<Tag> min(detail::Quantity<Tag> a,
                                    detail::Quantity<Tag> b) noexcept {
  return a < b ? a : b;
}

template <typename Tag>
constexpr detail::Quantity<Tag> max(detail::Quantity<Tag> a,
                                    detail::Quantity<Tag> b) noexcept {
  return a < b ? b : a;
}

template <typename Tag>
constexpr detail::Quantity<Tag> clamp(detail::Quantity<Tag> q,
                                      detail::Quantity<Tag> lo,
                                      detail::Quantity<Tag> hi) noexcept {
  return q < lo ? lo : (hi < q ? hi : q);
}

/// True when |a - b| <= tolerance (both in the quantity's SI base unit).
template <typename Tag>
constexpr bool near(detail::Quantity<Tag> a, detail::Quantity<Tag> b,
                    double tolerance) noexcept {
  const double d = a.value() - b.value();
  return (d < 0 ? -d : d) <= tolerance;
}

/// "1.234 A"-style rendering; used by tables and trace dumps.
template <typename Tag>
std::string to_string(detail::Quantity<Tag> q);

template <typename Tag>
std::ostream& operator<<(std::ostream& out, detail::Quantity<Tag> q);

// --- literals ----------------------------------------------------------------

inline namespace literals {

constexpr Ampere operator""_A(long double v) {
  return Ampere(static_cast<double>(v));
}
constexpr Ampere operator""_mA(long double v) {
  return Ampere(static_cast<double>(v) * 1e-3);
}
constexpr Volt operator""_V(long double v) {
  return Volt(static_cast<double>(v));
}
constexpr Watt operator""_W(long double v) {
  return Watt(static_cast<double>(v));
}
constexpr Seconds operator""_s(long double v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_min(long double v) {
  return Seconds(static_cast<double>(v) * 60.0);
}
constexpr Coulomb operator""_As(long double v) {
  return Coulomb(static_cast<double>(v));
}
constexpr Joule operator""_J(long double v) {
  return Joule(static_cast<double>(v));
}
constexpr Farad operator""_F(long double v) {
  return Farad(static_cast<double>(v));
}

constexpr Ampere operator""_A(unsigned long long v) {
  return Ampere(static_cast<double>(v));
}
constexpr Ampere operator""_mA(unsigned long long v) {
  return Ampere(static_cast<double>(v) * 1e-3);
}
constexpr Volt operator""_V(unsigned long long v) {
  return Volt(static_cast<double>(v));
}
constexpr Watt operator""_W(unsigned long long v) {
  return Watt(static_cast<double>(v));
}
constexpr Seconds operator""_s(unsigned long long v) {
  return Seconds(static_cast<double>(v));
}
constexpr Seconds operator""_min(unsigned long long v) {
  return Seconds(static_cast<double>(v) * 60.0);
}
constexpr Coulomb operator""_As(unsigned long long v) {
  return Coulomb(static_cast<double>(v));
}
constexpr Joule operator""_J(unsigned long long v) {
  return Joule(static_cast<double>(v));
}
constexpr Farad operator""_F(unsigned long long v) {
  return Farad(static_cast<double>(v));
}

}  // namespace literals

}  // namespace fcdpm
