// Deterministic random source for trace generation.
//
// Every stochastic experiment in this reproduction is seeded, so the
// tables/figures regenerate bit-identically run to run.
#pragma once

#include <cstdint>
#include <random>

namespace fcdpm {

/// Seeded pseudo-random generator with the handful of distributions the
/// workload generators need. Wraps std::mt19937_64; copyable so a
/// generator state can be forked for reproducible sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal with the given mean / standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Bernoulli trial; p is clamped to [0, 1].
  [[nodiscard]] bool chance(double p);

  /// Exponential with the given rate (> 0).
  [[nodiscard]] double exponential(double rate);

  /// Derive an independent generator; deterministic in (this state, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt);

 private:
  std::mt19937_64 engine_;
};

}  // namespace fcdpm
