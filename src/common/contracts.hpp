// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that a
// simulation host application can recover and report.
#pragma once

#include <stdexcept>
#include <string>

namespace fcdpm {

/// Thrown when a precondition (argument contract) is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a postcondition or internal invariant is violated.
/// Indicates a bug in this library, not in caller input.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void fail_precondition(const char* expr, const char* file,
                                    int line, const std::string& message);
[[noreturn]] void fail_invariant(const char* expr, const char* file, int line,
                                 const std::string& message);
}  // namespace detail

}  // namespace fcdpm

/// Check a caller-facing precondition; throws fcdpm::PreconditionError.
#define FCDPM_EXPECTS(cond, message)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fcdpm::detail::fail_precondition(#cond, __FILE__, __LINE__,      \
                                         (message));                    \
    }                                                                    \
  } while (false)

/// Check an internal invariant or postcondition; throws
/// fcdpm::InvariantError.
#define FCDPM_ENSURES(cond, message)                                  \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::fcdpm::detail::fail_invariant(#cond, __FILE__, __LINE__,      \
                                      (message));                    \
    }                                                                 \
  } while (false)
