// Scalar optimization / root-finding used to *validate* the paper's
// closed-form Lagrange solution (Section 3.3) against a derivative-free
// numerical optimum, and to solve the constrained variants where the
// closed form is projected onto box/charge constraints.
#pragma once

#include <functional>

namespace fcdpm {

/// A bracketed scalar minimization result.
struct ScalarMinimum {
  double x = 0.0;
  double value = 0.0;
  int iterations = 0;
};

/// Golden-section search for the minimum of a unimodal `f` on [lo, hi].
///
/// Requires lo < hi. Terminates when the bracket is narrower than
/// `x_tolerance`. For non-unimodal functions this returns *a* local
/// minimum inside the bracket.
[[nodiscard]] ScalarMinimum golden_section_minimize(
    const std::function<double(double)>& f, double lo, double hi,
    double x_tolerance = 1e-10, int max_iterations = 200);

/// A bracketed root-finding result.
struct ScalarRoot {
  double x = 0.0;
  double residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Bisection for f(x) = 0 on [lo, hi]; requires f(lo) and f(hi) to have
/// opposite signs (or either endpoint to already be a root).
[[nodiscard]] ScalarRoot bisect(const std::function<double(double)>& f,
                                double lo, double hi,
                                double x_tolerance = 1e-12,
                                int max_iterations = 200);

/// Minimize a convex `f` over the box [lo, hi] by golden section and
/// explicit endpoint comparison; robust when the unconstrained optimum
/// lies outside the box.
[[nodiscard]] ScalarMinimum minimize_on_box(
    const std::function<double(double)>& f, double lo, double hi,
    double x_tolerance = 1e-10);

}  // namespace fcdpm
