#include "common/text.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/contracts.hpp"

namespace fcdpm {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    if (k != 0) {
      out += separator;
    }
    out += parts[k];
  }
  return out;
}

std::string format_fixed(double value, int max_decimals) {
  FCDPM_EXPECTS(max_decimals >= 0 && max_decimals <= 17,
                "decimals out of range");
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", max_decimals, value);
  std::string text(buffer);
  if (text.find('.') != std::string::npos) {
    while (text.back() == '0') {
      text.pop_back();
    }
    if (text.back() == '.') {
      text.pop_back();
    }
  }
  if (text == "-0") {
    text = "0";
  }
  return text;
}

std::string format_percent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", decimals,
                fraction * 100.0);
  return buffer;
}

bool parse_double(std::string_view text, double& out) {
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) {
    return false;
  }
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) {
    out.append(width - out.size(), ' ');
  }
  return out;
}

}  // namespace fcdpm
