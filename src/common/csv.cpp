#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/text.hpp"

namespace fcdpm {

std::size_t CsvDocument::column(std::string_view name) const {
  for (std::size_t k = 0; k < header.size(); ++k) {
    if (header[k] == name) {
      return k;
    }
  }
  throw CsvError("CSV column not found: " + std::string(name));
}

CsvRow parse_csv_line(std::string_view line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;

  for (std::size_t k = 0; k < line.size(); ++k) {
    const char c = line[k];
    if (in_quotes) {
      if (c == '"') {
        if (k + 1 < line.size() && line[k + 1] == '"') {
          current += '"';
          ++k;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    throw CsvError("unterminated quote in CSV line: " + std::string(line));
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvDocument read_csv(std::istream& in, bool has_header) {
  CsvDocument doc;
  std::string line;
  bool header_pending = has_header;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    CsvRow row = parse_csv_line(line);
    if (header_pending) {
      doc.header = std::move(row);
      header_pending = false;
    } else {
      doc.rows.push_back(std::move(row));
      doc.row_lines.push_back(line_number);
    }
  }
  return doc;
}

CsvDocument read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) {
    throw CsvError("cannot open CSV file: " + path);
  }
  return read_csv(in, has_header);
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string format_csv_row(const CsvRow& row) {
  std::string out;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (k != 0) {
      out += ',';
    }
    out += csv_escape(row[k]);
  }
  return out;
}

void write_csv(std::ostream& out, const CsvDocument& doc) {
  if (!doc.header.empty()) {
    out << format_csv_row(doc.header) << '\n';
  }
  for (const CsvRow& row : doc.rows) {
    out << format_csv_row(row) << '\n';
  }
}

void write_csv_file(const std::string& path, const CsvDocument& doc) {
  // Crash-safe: a killed process never leaves a truncated CSV behind.
  std::ostringstream out;
  write_csv(out, doc);
  write_file_atomic(path, out.str());
}

}  // namespace fcdpm
