#include "common/math.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm {

LinearFit linear_least_squares(std::span<const double> xs,
                               std::span<const double> ys) {
  FCDPM_EXPECTS(xs.size() == ys.size(),
                "x and y sample counts must match");
  FCDPM_EXPECTS(xs.size() >= 2, "need at least two samples to fit a line");

  const double x_bar = mean(xs);
  const double y_bar = mean(ys);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double dx = xs[k] - x_bar;
    const double dy = ys[k] - y_bar;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  FCDPM_EXPECTS(sxx > 0.0, "x samples are all identical; line is undefined");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = y_bar - fit.slope * x_bar;
  // All-equal y values are a perfect (horizontal) fit; avoid 0/0.
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double mean(std::span<const double> values) {
  FCDPM_EXPECTS(!values.empty(), "mean of an empty range");
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  const double m = mean(values);
  double sum = 0.0;
  for (const double v : values) {
    const double d = v - m;
    sum += d * d;
  }
  return sum / static_cast<double>(values.size());
}

double standard_deviation(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double rms_error(std::span<const double> a, std::span<const double> b) {
  FCDPM_EXPECTS(a.size() == b.size(), "series sizes must match");
  FCDPM_EXPECTS(!a.empty(), "rms_error of empty series");
  double sum = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  FCDPM_EXPECTS(count >= 2, "linspace needs at least two points");
  std::vector<double> grid(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t k = 0; k < count; ++k) {
    grid[k] = lo + step * static_cast<double>(k);
  }
  grid.back() = hi;  // avoid accumulated rounding at the endpoint
  return grid;
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) {
    return true;
  }
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

double percentile(std::vector<double> values, double q) {
  FCDPM_EXPECTS(!values.empty(), "percentile of an empty sample");
  FCDPM_EXPECTS(q >= 0.0 && q <= 1.0, "q must lie in [0, 1]");
  std::sort(values.begin(), values.end());
  const double position = q * static_cast<double>(values.size() - 1);
  const auto below = static_cast<std::size_t>(position);
  if (below + 1 >= values.size()) {
    return values.back();
  }
  const double fraction = position - static_cast<double>(below);
  return values[below] * (1.0 - fraction) + values[below + 1] * fraction;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> samples,
                                     double level, std::size_t resamples,
                                     std::uint64_t seed) {
  FCDPM_EXPECTS(samples.size() >= 2, "need at least two samples");
  FCDPM_EXPECTS(level > 0.0 && level < 1.0, "level must be in (0, 1)");
  FCDPM_EXPECTS(resamples >= 100, "too few resamples for a stable CI");

  // Local PRNG (seeded; keeps common/math independent of common/random).
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 1;
  const auto next_index = [&state](std::size_t n) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<std::size_t>(state % n);
  };

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t k = 0; k < samples.size(); ++k) {
      sum += samples[next_index(samples.size())];
    }
    means.push_back(sum / static_cast<double>(samples.size()));
  }

  ConfidenceInterval ci;
  ci.mean = mean(samples);
  ci.lo = percentile(means, (1.0 - level) / 2.0);
  ci.hi = percentile(means, (1.0 + level) / 2.0);
  return ci;
}

}  // namespace fcdpm
