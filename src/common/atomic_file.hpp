// Crash-safe whole-file writes: content lands in a sibling temp file,
// is flushed to disk, and is atomically renamed over the destination.
// A process killed at any instant therefore leaves either the previous
// file or the complete new one — never a truncated artifact. Every
// report writer (CSV, JSON, SVG, traces) funnels through here.
#pragma once

#include <string>
#include <string_view>

namespace fcdpm {

/// Name of the temp sibling `write_file_atomic` stages into
/// (`path + ".tmp"`); exposed so callers that stream incrementally
/// (e.g. trace sinks) can stage into the same location and finish with
/// `commit_file`.
[[nodiscard]] std::string atomic_temp_path(const std::string& path);

/// Write `content` to `path` via temp file + fsync + atomic rename.
/// Throws CsvError (the report writers' shared error channel) when the
/// temp file cannot be created, written, synced or renamed.
void write_file_atomic(const std::string& path, std::string_view content);

/// Atomically rename an already-written staging file over `path`,
/// fsyncing it first. Throws CsvError on failure.
void commit_file(const std::string& temp_path, const std::string& path);

/// fsync the directory containing `path` (its dirname; "." when the
/// path has no directory component). A rename is durable only once the
/// parent directory's entry is on disk — POSIX makes the rename itself
/// atomic, but after a power loss the *old* name can still come back
/// unless the directory is synced. Both writers above call this after
/// their rename; exposed for callers doing their own renames. Opens the
/// directory read-only (O_DIRECTORY) and closes it before returning on
/// every path. Throws CsvError on failure.
void fsync_parent_dir(const std::string& path);

}  // namespace fcdpm
