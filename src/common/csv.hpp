// Minimal RFC-4180-ish CSV reader/writer used for trace files and for
// exporting figure series. Handles quoting, embedded commas/quotes and
// blank-line skipping; does not handle embedded newlines inside fields
// (trace files never contain them).
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fcdpm {

/// Thrown on malformed CSV input or file I/O failure.
class CsvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed row; fields are unquoted/unescaped.
using CsvRow = std::vector<std::string>;

/// A fully parsed document: optional header plus data rows.
struct CsvDocument {
  CsvRow header;
  std::vector<CsvRow> rows;
  /// 1-based source line of each data row (blank/comment lines shift
  /// these), parallel to `rows`. Empty for hand-built documents.
  std::vector<std::size_t> row_lines;

  /// Index of a named header column; throws CsvError when absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;

  /// Source line of a data row, or 0 when unknown (hand-built document).
  [[nodiscard]] std::size_t line_of(std::size_t row_index) const noexcept {
    return row_index < row_lines.size() ? row_lines[row_index] : 0;
  }
};

/// Parse one CSV line into fields (handles quotes and escaped quotes).
[[nodiscard]] CsvRow parse_csv_line(std::string_view line);

/// Parse a whole stream; when `has_header` the first non-blank line is the
/// header. Blank lines and lines starting with '#' are skipped.
[[nodiscard]] CsvDocument read_csv(std::istream& in, bool has_header);

/// Parse a file by path; throws CsvError when it cannot be opened.
[[nodiscard]] CsvDocument read_csv_file(const std::string& path,
                                        bool has_header);

/// Quote a field if it contains a comma, quote or leading/trailing space.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Serialize one row (fields escaped as needed), no trailing newline.
[[nodiscard]] std::string format_csv_row(const CsvRow& row);

/// Write a document (header first when non-empty).
void write_csv(std::ostream& out, const CsvDocument& doc);

/// Write a document to a file; throws CsvError when it cannot be created.
void write_csv_file(const std::string& path, const CsvDocument& doc);

}  // namespace fcdpm
