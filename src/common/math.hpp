// Small numeric toolbox: descriptive statistics and linear least squares.
//
// The paper fits the fuel-cell system efficiency to a line (eta = alpha -
// beta * IF); `linear_least_squares` is what "determined by the measured
// efficiency curve" becomes in this reproduction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace fcdpm {

/// Result of fitting y = intercept + slope * x by ordinary least squares.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;

  [[nodiscard]] double operator()(double x) const {
    return intercept + slope * x;
  }
};

/// Ordinary least-squares line fit.
///
/// Preconditions: xs.size() == ys.size(), at least two samples, and the xs
/// are not all identical.
[[nodiscard]] LinearFit linear_least_squares(std::span<const double> xs,
                                             std::span<const double> ys);

[[nodiscard]] double mean(std::span<const double> values);

/// Population variance (divides by N).
[[nodiscard]] double variance(std::span<const double> values);

[[nodiscard]] double standard_deviation(std::span<const double> values);

/// Root-mean-square deviation between two equally sized series.
[[nodiscard]] double rms_error(std::span<const double> a,
                               std::span<const double> b);

/// Evenly spaced grid of `count` points covering [lo, hi] inclusive.
/// Requires count >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

/// Relative closeness test with an absolute floor; symmetric in a and b.
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// q-th percentile (q in [0, 1]) by linear interpolation between order
/// statistics. Requires a non-empty sample.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// A two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Bootstrap percentile CI of the mean: resample with replacement
/// `resamples` times (seeded, deterministic) and take the
/// [(1-level)/2, (1+level)/2] percentiles of the resampled means.
/// Requires >= 2 samples, level in (0, 1), resamples >= 100.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    std::span<const double> samples, double level = 0.95,
    std::size_t resamples = 2000, std::uint64_t seed = 42);

}  // namespace fcdpm
