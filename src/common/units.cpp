#include "common/units.hpp"

#include <ostream>
#include <sstream>

namespace fcdpm {

namespace {
template <typename Tag>
std::string render(detail::Quantity<Tag> q) {
  std::ostringstream out;
  out << q.value() << ' ' << Tag::symbol();
  return out.str();
}
}  // namespace

template <typename Tag>
std::string to_string(detail::Quantity<Tag> q) {
  return render(q);
}

template <typename Tag>
std::ostream& operator<<(std::ostream& out, detail::Quantity<Tag> q) {
  return out << q.value() << ' ' << Tag::symbol();
}

// Explicit instantiations for every dimension used by the library.
#define FCDPM_INSTANTIATE_UNIT(Tag)                                         \
  template std::string to_string<Tag>(detail::Quantity<Tag>);               \
  template std::ostream& operator<< <Tag>(std::ostream&, detail::Quantity<Tag>)

FCDPM_INSTANTIATE_UNIT(CurrentTag);
FCDPM_INSTANTIATE_UNIT(VoltageTag);
FCDPM_INSTANTIATE_UNIT(PowerTag);
FCDPM_INSTANTIATE_UNIT(TimeTag);
FCDPM_INSTANTIATE_UNIT(ChargeTag);
FCDPM_INSTANTIATE_UNIT(EnergyTag);
FCDPM_INSTANTIATE_UNIT(CapacitanceTag);

#undef FCDPM_INSTANTIATE_UNIT

}  // namespace fcdpm
