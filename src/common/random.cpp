#include "common/random.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace fcdpm {

double Rng::uniform(double lo, double hi) {
  FCDPM_EXPECTS(lo <= hi, "uniform bounds are inverted");
  if (lo == hi) {
    return lo;
  }
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FCDPM_EXPECTS(lo <= hi, "uniform_int bounds are inverted");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double sigma) {
  FCDPM_EXPECTS(sigma >= 0.0, "sigma must be non-negative");
  if (sigma == 0.0) {
    return mean;
  }
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

bool Rng::chance(double p) {
  const double clamped = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(clamped)(engine_);
}

double Rng::exponential(double rate) {
  FCDPM_EXPECTS(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

Rng Rng::fork(std::uint64_t salt) {
  // Draw a word from this stream and mix with the salt so forks with
  // different salts (or at different points) are independent.
  const std::uint64_t word = engine_();
  return Rng(word ^ (salt * 0x9E3779B97F4A7C15ULL));
}

}  // namespace fcdpm
