// Fuel-side model of the stack.
//
// The paper expresses fuel consumption in "A-s of stack current": the fuel
// flow rate is proportional to Ifc, so Gibbs free energy per second is
// dEGibbs = zeta * Ifc with a measured zeta ~= 37.5 W/A for the BCS stack.
// Stack efficiency is then Vfc/zeta. This module also converts stack
// charge to physical hydrogen amounts via Faraday's law so lifetimes can
// be quoted against a real tank size.
#pragma once

#include "common/units.hpp"
#include "fuelcell/stack.hpp"

namespace fcdpm::fc {

/// Physical constants for the hydrogen conversion.
struct HydrogenConstants {
  static constexpr double faraday_c_per_mol = 96485.33212;
  static constexpr int electrons_per_h2 = 2;
  /// Molar volume at STP, litres/mol.
  static constexpr double molar_volume_l = 22.414;
  /// Molar mass of H2, grams/mol.
  static constexpr double molar_mass_g = 2.016;
};

/// Gibbs/fuel model of one stack: dEGibbs = zeta * Ifc.
class FuelModel {
 public:
  /// `zeta` in watts per ampere of stack current; > 0.
  FuelModel(double zeta_w_per_a, int cell_count);

  /// The paper's measured value (zeta ~= 37.5) for the 20-cell BCS stack.
  [[nodiscard]] static FuelModel bcs_20w();

  [[nodiscard]] double zeta() const noexcept { return zeta_w_per_a_; }
  [[nodiscard]] int cell_count() const noexcept { return cell_count_; }

  /// Gibbs free-energy rate drawn from the fuel at stack current `ifc`.
  [[nodiscard]] Watt gibbs_power(Ampere ifc) const;

  /// Stack efficiency = stack output power / Gibbs rate = Vfc / zeta.
  [[nodiscard]] double stack_efficiency(Volt vfc) const;

  /// Moles of H2 consumed when `charge` A-s of stack current flows
  /// (Faraday: cells * Q / (2F); every cell in the series stack consumes
  /// fuel for the same charge).
  [[nodiscard]] double hydrogen_mol(Coulomb stack_charge) const;

  /// Same amount in litres at STP and in grams.
  [[nodiscard]] double hydrogen_litres_stp(Coulomb stack_charge) const;
  [[nodiscard]] double hydrogen_grams(Coulomb stack_charge) const;

 private:
  double zeta_w_per_a_;
  int cell_count_;
};

/// A finite fuel tank tracked in stack A-s (the paper's fuel unit).
class FuelGauge {
 public:
  explicit FuelGauge(Coulomb capacity);

  [[nodiscard]] Coulomb capacity() const noexcept { return capacity_; }
  [[nodiscard]] Coulomb consumed() const noexcept { return consumed_; }
  [[nodiscard]] Coulomb remaining() const;
  [[nodiscard]] bool empty() const;

  /// Burn `ifc` for `duration`; returns the duration actually supported
  /// before the tank ran dry (== duration when fuel suffices).
  Seconds consume(Ampere ifc, Seconds duration);

  void reset();

 private:
  Coulomb capacity_;
  Coulomb consumed_{0.0};
};

/// Lifetime of a tank of `fuel` under a constant average stack current.
[[nodiscard]] Seconds lifetime_at(Coulomb fuel, Ampere average_ifc);

}  // namespace fcdpm::fc
