// Single-cell PEM polarization model after Larminie & Dicks, "Fuel Cell
// Systems Explained" (the paper's reference [12]):
//
//   v(i) = E_rev - A·ln((i + i_n)/i0) - r·i - m·exp(n·i)
//
// activation loss (Tafel), ohmic loss, and concentration loss. The default
// parameter set is calibrated so a 20-cell stack reproduces the published
// anchors of the BCS 20 W stack in the paper's Figure 2: open-circuit
// voltage 18.2 V, ~20 W maximum power near 1.5 A, monotonically falling
// voltage.
#pragma once

#include "common/units.hpp"

namespace fcdpm::fc {

/// Electrochemical parameters of one cell. All currents are absolute
/// amperes through the cell (the BCS stack's area is folded in).
struct CellParams {
  /// Reversible (Nernst) cell potential.
  Volt reversible_voltage{0.926};
  /// Tafel slope A of the activation loss term.
  Volt tafel_slope{0.007};
  /// Exchange current i0 (sets where activation loss saturates).
  Ampere exchange_current{1.0e-4};
  /// Internal/crossover current i_n (makes v(0) finite and < E_rev).
  Ampere crossover_current{1.0e-3};
  /// Area-specific ohmic resistance, ohms per cell.
  double ohmic_resistance_ohm = 0.14;
  /// Concentration-loss magnitude m (volts).
  Volt concentration_m{5.0e-8};
  /// Concentration-loss exponent n (per ampere).
  double concentration_n_per_ampere = 9.0;

  /// Defaults above; named for discoverability.
  [[nodiscard]] static CellParams bcs_20w_cell() { return {}; }
};

/// Cell terminal voltage at stack current `i` (>= 0). Never negative:
/// the model floors at 0 V (a real stack would be shut down well before).
[[nodiscard]] Volt cell_voltage(const CellParams& params, Ampere i);

/// d(v)/d(i) by central finite difference; used in tests to assert the
/// curve is monotonically decreasing.
[[nodiscard]] double cell_voltage_slope(const CellParams& params, Ampere i);

}  // namespace fcdpm::fc
