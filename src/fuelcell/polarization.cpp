#include "fuelcell/polarization.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace fcdpm::fc {

Volt cell_voltage(const CellParams& params, Ampere i) {
  FCDPM_EXPECTS(i.value() >= 0.0, "stack current must be non-negative");
  FCDPM_EXPECTS(params.exchange_current.value() > 0.0,
                "exchange current must be positive");
  FCDPM_EXPECTS(params.crossover_current.value() > 0.0,
                "crossover current must be positive");

  const double current = i.value();
  const double activation =
      params.tafel_slope.value() *
      std::log((current + params.crossover_current.value()) /
               params.exchange_current.value());
  const double ohmic = params.ohmic_resistance_ohm * current;
  const double concentration =
      params.concentration_m.value() *
      std::exp(params.concentration_n_per_ampere * current);

  const double v = params.reversible_voltage.value() - activation - ohmic -
                   concentration;
  return Volt(std::max(v, 0.0));
}

double cell_voltage_slope(const CellParams& params, Ampere i) {
  const double h = 1e-6;
  const double lo = std::max(i.value() - h, 0.0);
  const double hi = i.value() + h;
  const double v_lo = cell_voltage(params, Ampere(lo)).value();
  const double v_hi = cell_voltage(params, Ampere(hi)).value();
  return (v_hi - v_lo) / (hi - lo);
}

}  // namespace fcdpm::fc
