#include "fuelcell/stack.hpp"

#include "common/contracts.hpp"
#include "common/math.hpp"
#include "common/solvers.hpp"

namespace fcdpm::fc {

FuelCellStack::FuelCellStack(CellParams cell, int cells)
    : cell_(cell), cells_(cells) {
  FCDPM_EXPECTS(cells >= 1, "a stack needs at least one cell");
}

FuelCellStack FuelCellStack::bcs_20w() {
  return FuelCellStack(CellParams::bcs_20w_cell(), 20);
}

Volt FuelCellStack::voltage(Ampere ifc) const {
  return cell_voltage(cell_, ifc) * static_cast<double>(cells_);
}

Watt FuelCellStack::power(Ampere ifc) const { return voltage(ifc) * ifc; }

Volt FuelCellStack::open_circuit_voltage() const {
  return voltage(Ampere(0.0));
}

StackPoint FuelCellStack::maximum_power_point(Ampere search_limit) const {
  FCDPM_EXPECTS(search_limit.value() > 0.0, "search limit must be positive");
  const ScalarMinimum minimum = golden_section_minimize(
      [this](double i) { return -power(Ampere(i)).value(); }, 0.0,
      search_limit.value(), 1e-9);
  const Ampere i_star(minimum.x);
  return {i_star, voltage(i_star), power(i_star)};
}

Ampere FuelCellStack::current_for_power(Watt demand) const {
  FCDPM_EXPECTS(demand.value() >= 0.0, "power demand must be non-negative");
  if (demand.value() == 0.0) {
    return Ampere(0.0);
  }
  const StackPoint mpp = maximum_power_point();
  FCDPM_EXPECTS(demand <= mpp.power,
                "power demand exceeds the stack's maximum power capacity");

  // The rising branch of P(I) spans [0, I_mpp]; P is strictly increasing
  // there, so bisection on P(I) - demand is well posed.
  const ScalarRoot root = bisect(
      [this, demand](double i) {
        return power(Ampere(i)).value() - demand.value();
      },
      0.0, mpp.current.value(), 1e-12);
  FCDPM_ENSURES(root.converged, "power inversion failed to converge");
  return Ampere(root.x);
}

std::vector<StackPoint> FuelCellStack::sample_curve(Ampere lo, Ampere hi,
                                                    std::size_t count) const {
  FCDPM_EXPECTS(lo.value() >= 0.0 && lo < hi, "bad sampling range");
  std::vector<StackPoint> points;
  points.reserve(count);
  for (const double i : linspace(lo.value(), hi.value(), count)) {
    const Ampere current(i);
    points.push_back({current, voltage(current), power(current)});
  }
  return points;
}

}  // namespace fcdpm::fc
