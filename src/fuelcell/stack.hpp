// Fuel-cell stack model: N series cells sharing one current.
//
// Reproduces the paper's Figure 2 (stack V-I and P-I curves of the BCS
// 20 W, 20-cell stack): voltage falls monotonically from the 18.2 V open
// circuit, power rises to the ~20 W maximum-power point and then falls.
// The maximum-power point bounds the stack's usable ("load following")
// current range.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "fuelcell/polarization.hpp"

namespace fcdpm::fc {

/// One sampled operating point on the stack curve.
struct StackPoint {
  Ampere current;
  Volt voltage;
  Watt power;
};

/// Series stack of identical cells.
class FuelCellStack {
 public:
  /// `cells` >= 1.
  FuelCellStack(CellParams cell, int cells);

  /// The paper's BCS 20 W / 20-cell stack at 2 psig H2.
  [[nodiscard]] static FuelCellStack bcs_20w();

  [[nodiscard]] int cell_count() const noexcept { return cells_; }
  [[nodiscard]] const CellParams& cell() const noexcept { return cell_; }

  /// Stack terminal voltage Vfc at stack current Ifc.
  [[nodiscard]] Volt voltage(Ampere ifc) const;

  /// Stack output power Vfc * Ifc.
  [[nodiscard]] Watt power(Ampere ifc) const;

  /// Open-circuit voltage (at Ifc = 0, i.e. only crossover losses).
  [[nodiscard]] Volt open_circuit_voltage() const;

  /// Maximum-power point, located numerically on [0, search_limit].
  [[nodiscard]] StackPoint maximum_power_point(
      Ampere search_limit = Ampere(3.0)) const;

  /// Smallest stack current whose output power covers `demand`; throws
  /// PreconditionError when demand exceeds the maximum power capacity.
  /// This inverts the rising branch of the P-I curve (the branch a
  /// regulated system operates on).
  [[nodiscard]] Ampere current_for_power(Watt demand) const;

  /// Sample the V-I-P curve on [lo, hi] with `count` points (Figure 2).
  [[nodiscard]] std::vector<StackPoint> sample_curve(Ampere lo, Ampere hi,
                                                     std::size_t count) const;

 private:
  CellParams cell_;
  int cells_;
};

}  // namespace fcdpm::fc
