#include "fuelcell/fuel_model.hpp"

#include "common/contracts.hpp"

namespace fcdpm::fc {

FuelModel::FuelModel(double zeta_w_per_a, int cell_count)
    : zeta_w_per_a_(zeta_w_per_a), cell_count_(cell_count) {
  FCDPM_EXPECTS(zeta_w_per_a > 0.0, "zeta must be positive");
  FCDPM_EXPECTS(cell_count >= 1, "cell count must be positive");
}

FuelModel FuelModel::bcs_20w() { return FuelModel(37.5, 20); }

Watt FuelModel::gibbs_power(Ampere ifc) const {
  FCDPM_EXPECTS(ifc.value() >= 0.0, "stack current must be non-negative");
  return Watt(zeta_w_per_a_ * ifc.value());
}

double FuelModel::stack_efficiency(Volt vfc) const {
  FCDPM_EXPECTS(vfc.value() >= 0.0, "stack voltage must be non-negative");
  return vfc.value() / zeta_w_per_a_;
}

double FuelModel::hydrogen_mol(Coulomb stack_charge) const {
  FCDPM_EXPECTS(stack_charge.value() >= 0.0, "charge must be non-negative");
  return static_cast<double>(cell_count_) * stack_charge.value() /
         (HydrogenConstants::electrons_per_h2 *
          HydrogenConstants::faraday_c_per_mol);
}

double FuelModel::hydrogen_litres_stp(Coulomb stack_charge) const {
  return hydrogen_mol(stack_charge) * HydrogenConstants::molar_volume_l;
}

double FuelModel::hydrogen_grams(Coulomb stack_charge) const {
  return hydrogen_mol(stack_charge) * HydrogenConstants::molar_mass_g;
}

FuelGauge::FuelGauge(Coulomb capacity) : capacity_(capacity) {
  FCDPM_EXPECTS(capacity.value() > 0.0, "tank capacity must be positive");
}

Coulomb FuelGauge::remaining() const { return capacity_ - consumed_; }

bool FuelGauge::empty() const { return remaining().value() <= 0.0; }

Seconds FuelGauge::consume(Ampere ifc, Seconds duration) {
  FCDPM_EXPECTS(ifc.value() >= 0.0, "stack current must be non-negative");
  FCDPM_EXPECTS(duration.value() >= 0.0, "duration must be non-negative");
  if (ifc.value() == 0.0 || duration.value() == 0.0) {
    return duration;
  }
  const Seconds supportable = remaining() / ifc;
  const Seconds actual = min(duration, supportable);
  consumed_ += ifc * actual;
  return actual;
}

void FuelGauge::reset() { consumed_ = Coulomb(0.0); }

Seconds lifetime_at(Coulomb fuel, Ampere average_ifc) {
  FCDPM_EXPECTS(average_ifc.value() > 0.0,
                "average stack current must be positive");
  return fuel / average_ifc;
}

}  // namespace fcdpm::fc
