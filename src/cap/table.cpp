#include "cap/table.hpp"

#include <cmath>
#include <fstream>
#include <utility>

#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/text.hpp"
#include "dvs/processor.hpp"

namespace fcdpm::cap {

CapTable::CapTable(std::vector<CapTableEntry> entries)
    : entries_(std::move(entries)) {
  FCDPM_EXPECTS(!entries_.empty(), "cap table needs at least one entry");
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const CapTableEntry& e = entries_[k];
    const auto where = [k] { return "entry " + std::to_string(k + 1); };
    FCDPM_EXPECTS(std::isfinite(e.min_budget.value()),
                  where() + ": non-finite budget");
    FCDPM_EXPECTS(e.min_budget.value() > 0.0,
                  where() + ": budget must be positive");
    if (k > 0) {
      FCDPM_EXPECTS(entries_[k - 1].min_budget < e.min_budget,
                    where() + ": budgets must be strictly increasing");
      FCDPM_EXPECTS(entries_[k - 1].max_level <= e.max_level,
                    where() + ": levels must be non-decreasing");
    }
  }
}

CapTable CapTable::from_processor(const dvs::DvsProcessor& processor) {
  std::vector<CapTableEntry> entries;
  entries.reserve(processor.level_count());
  for (std::size_t k = 0; k < processor.level_count(); ++k) {
    const Watt budget = processor.level(k).run_power;
    if (!entries.empty() && !(entries.back().min_budget < budget)) {
      // Equal-power neighbours (the processor allows plateaus): keep
      // one entry at the faster level.
      entries.back().max_level = k;
      continue;
    }
    entries.push_back({budget, k});
  }
  return CapTable(std::move(entries));
}

CapTable CapTable::load(std::istream& in, const std::string& name,
                        std::size_t levels) {
  const CsvDocument doc = read_csv(in, /*has_header=*/true);
  const std::size_t budget_col = doc.column("min_budget_w");
  const std::size_t level_col = doc.column("max_level");

  const auto where = [&](std::size_t row) {
    const std::size_t line = doc.line_of(row);
    return name + (line > 0 ? " line " + std::to_string(line)
                            : " row " + std::to_string(row));
  };

  std::vector<CapTableEntry> entries;
  entries.reserve(doc.rows.size());
  for (std::size_t k = 0; k < doc.rows.size(); ++k) {
    const CsvRow& row = doc.rows[k];
    const std::size_t needed = std::max(budget_col, level_col) + 1;
    if (row.size() < needed) {
      throw CsvError(where(k) + ": cap row has too few fields");
    }
    double budget = 0.0;
    double level = 0.0;
    if (!parse_double(row[budget_col], budget) ||
        !parse_double(row[level_col], level)) {
      throw CsvError(where(k) + ": non-numeric cap field");
    }
    if (!std::isfinite(budget) || budget <= 0.0) {
      throw CsvError(where(k) + ": min_budget_w must be finite and > 0");
    }
    if (level < 0.0 || level != std::floor(level) ||
        level >= static_cast<double>(levels)) {
      throw CsvError(where(k) + ": max_level must be an integer in [0, " +
                     std::to_string(levels) + ")");
    }
    entries.push_back({Watt(budget), static_cast<std::size_t>(level)});
  }
  try {
    return CapTable(std::move(entries));
  } catch (const PreconditionError& error) {
    throw CsvError(name + ": " + error.what());
  }
}

CapTable CapTable::load_file(const std::string& path, std::size_t levels) {
  std::ifstream in(path);
  if (!in) {
    throw CsvError("cannot open cap table file: " + path);
  }
  return load(in, path, levels);
}

std::size_t CapTable::level_for(Watt budget) const noexcept {
  std::size_t allowed = entries_.front().max_level;
  for (const CapTableEntry& e : entries_) {
    if (budget < e.min_budget) {
      break;
    }
    allowed = e.max_level;
  }
  return allowed;
}

}  // namespace fcdpm::cap
