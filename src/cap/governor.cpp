#include "cap/governor.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::cap {

Governor::Governor(dvs::DvsPlanner planner, CapTable table, CapConfig config)
    : planner_(std::move(planner)),
      table_(std::move(table)),
      config_(config),
      top_level_(planner_.processor().level_count() - 1),
      held_level_(top_level_) {
  FCDPM_EXPECTS(config_.hysteresis_slots >= 1,
                "hysteresis must be at least one slot");
  FCDPM_EXPECTS(std::isfinite(config_.storage_draw_fraction) &&
                    config_.storage_draw_fraction >= 0.0 &&
                    config_.storage_draw_fraction <= 1.0,
                "storage draw fraction must lie in [0, 1]");
  for (const CapTableEntry& e : table_.entries()) {
    FCDPM_EXPECTS(e.max_level <= top_level_,
                  "cap table names a level the processor does not have");
  }
  stats_.time_at_level_s.assign(top_level_ + 1, 0.0);
}

void Governor::reset() {
  held_level_ = top_level_;
  clear_streak_ = 0;
  stats_ = CapStats{};
  stats_.time_at_level_s.assign(top_level_ + 1, 0.0);
}

SlotPlan Governor::plan_slot_slow(const SlotDemand& demand) {
  FCDPM_EXPECTS(demand.active_s > 0.0, "slot active window must be > 0");
  FCDPM_EXPECTS(demand.bus_v > 0.0, "bus voltage must be positive");
  ++stats_.slots_seen;

  // 1. Deliverable envelope: derated FC ceiling plus a bounded slice of
  //    the buffered charge spread over this slot's active window.
  const double budget_a =
      demand.fc_max_a + demand.storage_charge_as *
                            config_.storage_draw_fraction / demand.active_s;

  // 2. Corecap lookup + hysteresis. The table is consulted only when
  //    the planned draw exceeds the envelope — a healthy slot always
  //    targets the top level, so a healthy run never throttles. Down
  //    immediately, up one level only after `hysteresis_slots`
  //    consecutive slots of headroom.
  const std::size_t target =
      demand.run_current_a <= budget_a
          ? top_level_
          : table_.level_for(Watt(budget_a * demand.bus_v));
  if (target < held_level_) {
    held_level_ = target;
    clear_streak_ = 0;
    ++stats_.level_reductions;
  } else if (target > held_level_) {
    ++clear_streak_;
    if (clear_streak_ >= config_.hysteresis_slots) {
      ++held_level_;
      clear_streak_ = 0;
      ++stats_.level_restorations;
    }
  } else {
    clear_streak_ = 0;
  }

  // 3. Re-plan the slot at the held level: current scales with the
  //    level's power ratio, the window stretches by 1/speed (work is
  //    deferred, not dropped). A deep brownout that outruns even the
  //    held level is hard current-clamped to the envelope.
  SlotPlan plan;
  plan.budget_a = budget_a;
  plan.level = held_level_;
  plan.run_current_a = demand.run_current_a;
  plan.active_s = demand.active_s;
  if (held_level_ < top_level_) {
    const dvs::DvsProcessor& cpu = planner_.processor();
    const double scale = cpu.level(held_level_).run_power.value() /
                         cpu.level(top_level_).run_power.value();
    plan.run_current_a = demand.run_current_a * scale;
    plan.active_s = demand.active_s / cpu.level(held_level_).speed;
  }
  if (plan.run_current_a > budget_a) {
    plan.run_current_a = budget_a;
  }
  plan.capped = plan.run_current_a != demand.run_current_a ||
                plan.active_s != demand.active_s;

  if (plan.capped) {
    ++stats_.slots_capped;
    stats_.energy_deferred +=
        Joule((demand.run_current_a - plan.run_current_a) * demand.bus_v *
              demand.active_s);
    stats_.time_deferred += Seconds(plan.active_s - demand.active_s);
  }
  if (plan.run_current_a > plan.budget_a) {
    ++stats_.budget_violations;  // invariant: unreachable
  }
  stats_.time_at_level_s[plan.level] += plan.active_s;
  return plan;
}

Governor make_governor(const CapSpec& spec,
                       const power::LinearEfficiencyModel& model) {
  const dvs::DvsProcessor cpu = dvs::DvsProcessor::typical_embedded();
  CapTable table = spec.table_csv.empty()
                       ? CapTable::from_processor(cpu)
                       : CapTable::load_file(spec.table_csv,
                                             cpu.level_count());
  CapConfig config;
  config.hysteresis_slots = spec.hysteresis_slots;
  config.storage_draw_fraction = spec.storage_draw_fraction;
  return Governor(dvs::DvsPlanner(cpu, model), std::move(table), config);
}

}  // namespace fcdpm::cap
