// Corecap-style capping table: a sorted list of power budgets, each
// naming the highest DVS level the device may run at while the
// deliverable envelope is at or above that budget (the shape of
// Tegra's sysedp corecaps, mapped onto this repo's DvsProcessor
// levels). The governor consults it once per slot.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::dvs {
class DvsProcessor;
}  // namespace fcdpm::dvs

namespace fcdpm::cap {

/// "With at least `min_budget` deliverable, run up to `max_level`."
struct CapTableEntry {
  Watt min_budget{0.0};
  std::size_t max_level = 0;
};

/// Validated, budget-sorted capping table.
///
/// Construction enforces: non-empty, finite positive budgets, strictly
/// increasing `min_budget`, non-decreasing `max_level`. `level_for`
/// returns the most permissive entry the budget affords; budgets below
/// the first entry fall back to the first (lowest) entry — the
/// governor's hard current clamp covers the remaining gap.
class CapTable {
 public:
  explicit CapTable(std::vector<CapTableEntry> entries);

  /// Default table for a processor: one entry per DVS level at that
  /// level's run power (duplicate-power levels collapse into the
  /// fastest of the tie).
  [[nodiscard]] static CapTable from_processor(
      const dvs::DvsProcessor& processor);

  /// CSV columns `min_budget_w,max_level`; diagnostics carry
  /// "<name> line N" positions via the csv reader's row_lines.
  /// `levels` bounds max_level (the attached processor's level count).
  [[nodiscard]] static CapTable load(std::istream& in,
                                     const std::string& name,
                                     std::size_t levels);
  [[nodiscard]] static CapTable load_file(const std::string& path,
                                          std::size_t levels);

  /// Highest allowed level for a deliverable budget.
  [[nodiscard]] std::size_t level_for(Watt budget) const noexcept;

  [[nodiscard]] const std::vector<CapTableEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<CapTableEntry> entries_;
};

}  // namespace fcdpm::cap
