// Accounting block for the power-capping governor. Split out of
// governor.hpp so result structs (sim/metrics.hpp) can carry a
// `CapStats` without pulling the dvs layer into every translation
// unit that touches a SimulationResult.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"

namespace fcdpm::cap {

/// Every capping decision the governor made during one run. All
/// counters are exact and deterministic: for a fixed trace, config and
/// fault schedule the block is bit-identical across engines and worker
/// counts.
struct CapStats {
  /// Slots the governor planned (== trace slots when attached).
  std::size_t slots_seen = 0;
  /// Slots where the applied plan differs from the request.
  std::size_t slots_capped = 0;
  /// Held-level step-downs (immediate, on budget pressure).
  std::size_t level_reductions = 0;
  /// Held-level step-ups (only after the hysteresis streak).
  std::size_t level_restorations = 0;
  /// Slots whose applied draw exceeded the computed budget. Invariant:
  /// stays 0 — the governor clamps before it ever over-draws.
  std::size_t budget_violations = 0;
  /// Active energy shaved off the nominal window by throttling; the
  /// work is deferred (stretched active phase), not dropped.
  Joule energy_deferred{0.0};
  /// Extra active seconds added by running below full speed.
  Seconds time_deferred{0.0};
  /// Active seconds spent at each applied DVS level (index == level).
  std::vector<double> time_at_level_s;
};

}  // namespace fcdpm::cap
