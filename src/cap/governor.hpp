// Closed-loop dynamic power capping (sysedp-style budget manager).
//
// Once per slot, just before the planners see the slot's demand, the
// attached engine hands the governor the requested active draw plus a
// snapshot of what the hybrid source can currently deliver (derated FC
// ceiling, buffered charge). The governor:
//
//  1. computes the deliverable power envelope
//         budget = fc_max + charge * draw_fraction / active_s
//     (the storage term spreads a configurable slice of the buffered
//     charge over the slot's active window);
//  2. consults the corecap-style CapTable for the highest DVS level
//     that budget affords, holding a level with hysteresis — step-downs
//     apply immediately, step-ups only after `hysteresis_slots`
//     consecutive slots whose budget would afford a higher level, one
//     level at a time, so a single transient cannot thrash;
//  3. re-plans a capped slot at the held level via the DvsPlanner's
//     processor model: active current scales by the level's power
//     ratio, the active window stretches by 1/speed (the work is
//     deferred, not dropped), and — if even the held level exceeds the
//     envelope (deep brownout) — hard-clamps the current to the budget.
//
// The invariant the fuzz suite holds: an applied plan never draws
// above the computed budget; `CapStats::budget_violations` stays 0.
//
// Determinism: plan_slot is pure double arithmetic over its inputs and
// the held state, evaluated in one fixed order — the reference and hot
// engines call it with bit-identical inputs and get bit-identical
// plans. With no governor attached, neither engine touches this file.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cap/stats.hpp"
#include "cap/table.hpp"
#include "common/units.hpp"
#include "dvs/planner.hpp"

namespace fcdpm::cap {

/// Tuning knobs shared by Governor construction and the CLI.
struct CapConfig {
  /// Consecutive uncapped-affordable slots before one step back up.
  std::size_t hysteresis_slots = 4;
  /// Slice of the buffered charge the envelope may spend per slot.
  double storage_draw_fraction = 0.5;
};

/// What the engine asks for: one slot's demand plus the live source
/// snapshot. Plain doubles so both engines hand over identical bits.
struct SlotDemand {
  double run_current_a = 0.0;    ///< requested active draw
  double active_s = 0.0;         ///< requested active window (effective)
  double fc_max_a = 0.0;         ///< derated FC ceiling (0 on dropout)
  double storage_charge_as = 0.0;
  double bus_v = 12.0;
};

/// What the governor answers: the plan the engine must apply.
struct SlotPlan {
  double run_current_a = 0.0;  ///< possibly reduced
  double active_s = 0.0;       ///< possibly stretched
  double budget_a = 0.0;       ///< the computed envelope
  std::size_t level = 0;       ///< applied DVS level
  bool capped = false;
};

/// Per-run capping governor; one instance per simulated device, not
/// shared across threads. Engines reset() it at run start (unless the
/// run preserves source state) and read stats() at run end.
class Governor {
 public:
  Governor(dvs::DvsPlanner planner, CapTable table, CapConfig config);

  /// Plan one slot against the current envelope. Mutates held-level
  /// state and stats. The healthy case — held at the top level, the
  /// demand inside the envelope — stays inline so an attached governor
  /// costs a handful of flops on runs it never throttles; everything
  /// else takes the out-of-line slow path. Both paths compute the
  /// budget with the same expression, so the split cannot change bits.
  [[nodiscard]] SlotPlan plan_slot(const SlotDemand& demand) {
    if (held_level_ == top_level_ && demand.active_s > 0.0 &&
        demand.bus_v > 0.0) {
      // The storage term is non-negative, and IEEE addition is
      // monotone, so run <= fc_max alone proves run <= budget — the
      // envelope division then only feeds the returned budget_a and
      // folds away entirely at call sites that ignore it (the engines).
      if (demand.run_current_a <= demand.fc_max_a) {
        return healthy_plan(demand);
      }
      const double budget_a =
          demand.fc_max_a + demand.storage_charge_as *
                                config_.storage_draw_fraction /
                                demand.active_s;
      if (demand.run_current_a <= budget_a) {
        return healthy_plan(demand);
      }
    }
    return plan_slot_slow(demand);
  }

  /// Clear held state and stats for a fresh run.
  void reset();

  [[nodiscard]] const CapStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CapTable& table() const noexcept { return table_; }
  [[nodiscard]] const CapConfig& config() const noexcept { return config_; }
  [[nodiscard]] const dvs::DvsPlanner& planner() const noexcept {
    return planner_;
  }

 private:
  /// Shared tail of the inline fast path: account the slot and return
  /// the untouched demand with the exact envelope.
  [[nodiscard]] SlotPlan healthy_plan(const SlotDemand& demand) {
    ++stats_.slots_seen;
    stats_.time_at_level_s[top_level_] += demand.active_s;
    SlotPlan plan;
    plan.run_current_a = demand.run_current_a;
    plan.active_s = demand.active_s;
    plan.budget_a =
        demand.fc_max_a + demand.storage_charge_as *
                              config_.storage_draw_fraction /
                              demand.active_s;
    plan.level = top_level_;
    return plan;
  }

  [[nodiscard]] SlotPlan plan_slot_slow(const SlotDemand& demand);

  dvs::DvsPlanner planner_;
  CapTable table_;
  CapConfig config_;
  std::size_t top_level_;
  std::size_t held_level_;
  std::size_t clear_streak_ = 0;
  CapStats stats_;
};

/// CLI/sweep-facing spec: everything needed to build one Governor per
/// simulated point. `table_csv` empty = CapTable::from_processor on
/// the typical embedded processor.
struct CapSpec {
  bool enabled = false;
  std::size_t hysteresis_slots = 4;
  double storage_draw_fraction = 0.5;
  std::string table_csv;  ///< path; loaded once per make_governor call
};

/// Build a governor from a spec (typical_embedded processor, the
/// spec's table or the processor default, the given efficiency model).
[[nodiscard]] Governor make_governor(const CapSpec& spec,
                                     const power::LinearEfficiencyModel& model);

}  // namespace fcdpm::cap
