// Deterministic parallel sweep engine.
//
// A sweep grid (policy x rho x capacity x fault-storm seed) is fanned
// across the worker pool; every worker builds its *own* policies,
// hybrid source and fault injector for each point (nothing mutable is
// shared between points except the solve cache, whose answers are
// deterministic by construction), and stores its result at the point's
// grid index. Results are therefore bit-identical for any job count —
// `--jobs 8` must reproduce `--jobs 1` exactly, and the tests hold it
// to that.
#pragma once

#include <cstdint>
#include <vector>

#include "hot/compiled_trace.hpp"
#include "obs/context.hpp"
#include "par/solve_cache.hpp"
#include "sim/cancellation.hpp"
#include "sim/experiments.hpp"

namespace fcdpm::telemetry {
class SweepTelemetry;
}  // namespace fcdpm::telemetry

namespace fcdpm::par {

/// One point of the sweep grid.
struct SweepPoint {
  sim::PolicyKind policy = sim::PolicyKind::FcDpm;
  double rho = 0.5;
  Coulomb capacity{6.0};
  std::uint64_t storm_seed = 0;  ///< 0 = fault-free
  /// Multi-stack axis: 0 = run the base config's source unchanged;
  /// N >= 1 forces an N-stack source with `distribution`.
  std::size_t stacks = 0;
  stacks::Distribution distribution = stacks::Distribution::Proportional;
};

/// Grid specification. Empty dimensions fall back to a single value
/// from the base config (policies default to the Table-2 trio).
struct SweepGrid {
  std::vector<sim::PolicyKind> policies;
  std::vector<double> rhos;
  std::vector<Coulomb> capacities;
  std::vector<std::uint64_t> storm_seeds;
  /// Events per random storm (seeds != 0).
  std::size_t storm_faults = 12;
  /// Stack-count axis; empty = one entry mirroring the base config
  /// (its configured count when stacks are enabled, else 0).
  std::vector<std::size_t> stack_counts;
  /// Distribution-policy axis; empty = the base config's policy.
  std::vector<stacks::Distribution> distributions;

  /// Cartesian product in deterministic nested order:
  /// policy -> rho -> capacity -> stacks -> distribution -> seed.
  [[nodiscard]] std::vector<SweepPoint> points(
      const sim::ExperimentConfig& base) const;
};

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Optional shared slot-solve memo (hit/miss counters accumulate).
  SharedSolveCache* cache = nullptr;
  /// Post-run stats publication only — never attached to worker runs
  /// (obs::Context is not thread-safe).
  obs::Context* observer = nullptr;
  /// Live per-worker shards + optional lane recording. Must be sized
  /// with >= WorkerPool::resolve(jobs) shards and total_points >= the
  /// grid size. Purely derived observation: results stay bit-identical
  /// with this attached or not.
  telemetry::SweepTelemetry* telemetry = nullptr;
};

struct SweepPointResult {
  SweepPoint point;
  sim::SimulationResult result;
  /// The compiled hot lane actually ran this point (engine == Hot and
  /// the run was lane-eligible; storms/observers fall back to the
  /// reference interpreter inside hot::simulate).
  bool ran_hot = false;
  /// The batched engine actually ran this point (engine == Batched and
  /// the point was batch-eligible — fault-free, single-stack, paper
  /// hybrid). Mutually exclusive with ran_hot.
  bool ran_batched = false;
};

struct SweepRunStats {
  std::size_t points = 0;
  std::size_t jobs = 1;
  double wall_seconds = 0.0;
  /// Cache traffic attributable to this run (delta over the run).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Points executed inside multi-point batch tasks (engine Batched).
  std::size_t points_batched = 0;
  /// Merge accounting aggregated over every batched task: sets formed,
  /// follower-slots served by a leader, followers split back out, and
  /// follower solves answered from a leader's per-slot journal.
  std::size_t batch_merge_sets = 0;
  std::size_t batch_merged_lane_slots = 0;
  std::size_t batch_splits = 0;
  std::uint64_t batch_journal_hits = 0;

  [[nodiscard]] double points_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(points) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double cache_hit_rate() const noexcept {
    const double total =
        static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
    return total > 0.0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
};

struct SweepResult {
  /// One entry per grid point, in grid order (independent of jobs).
  std::vector<SweepPointResult> points;
  SweepRunStats stats;
};

/// Evaluate one grid point serially (what each worker runs). `cancel`
/// and `slot_budget` thread straight into SimulationOptions: the
/// resilience layer uses them for watchdog cancellation and the
/// deterministic per-point deadline; the defaults leave the plain sweep
/// path untouched. When `base.simulation.engine == sim::Engine::Hot`
/// the point runs through hot::simulate (bit-identical), and when it is
/// `sim::Engine::Batched` through batch::simulate (a B = 1 batch, with
/// the same transparent fallback chain); `compiled` is the trace
/// compiled once by run_sweep and shared read-only across points —
/// nullptr makes the point compile its own.
[[nodiscard]] SweepPointResult run_point(
    const sim::ExperimentConfig& base, const SweepPoint& point,
    std::size_t storm_faults, core::SlotSolveCache* cache,
    sim::CancellationToken* cancel = nullptr, std::size_t slot_budget = 0,
    const hot::CompiledTrace* compiled = nullptr);

/// Fan the grid across `options.jobs` workers.
[[nodiscard]] SweepResult run_sweep(const sim::ExperimentConfig& base,
                                    const SweepGrid& grid,
                                    const SweepOptions& options = {});

/// Publish the end-of-sweep gauges — par.sweep.{points,jobs,wall_s,
/// points_per_s} plus, when a cache was attached, par.cache.* via
/// SharedSolveCache::publish — in one place. Both run_sweep and the
/// resilient runner call this exactly once at sweep end, so the
/// par.cache.* gauges always equal the cache's own hits()/misses() at
/// that instant (no ad hoc call sites drifting out of sync). No-op
/// when the observer is inactive.
void publish_sweep_stats(obs::Context& obs, const SweepRunStats& stats,
                         const SharedSolveCache* cache);

}  // namespace fcdpm::par
