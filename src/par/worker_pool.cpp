#include "par/worker_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "common/contracts.hpp"

namespace fcdpm::par {

std::size_t WorkerPool::resolve(std::size_t threads) noexcept {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  return std::max<std::size_t>(threads, 1);
}

WorkerPool::WorkerPool(std::size_t threads)
    : queue_(2 * WorkerPool::resolve(threads)) {
  const std::size_t n = WorkerPool::resolve(threads);
  threads_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    threads_.emplace_back([this, k] {
      while (std::optional<std::function<void(std::size_t)>> task =
                 queue_.pop()) {
        (*task)(k);
      }
    });
  }
}

WorkerPool::~WorkerPool() {
  queue_.close();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void WorkerPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  run_indexed_on_workers(
      count, [&fn](std::size_t /*worker*/, std::size_t index) { fn(index); });
}

void WorkerPool::run_indexed_on_workers(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t done = 0;
  std::exception_ptr first_error;

  for (std::size_t k = 0; k < count; ++k) {
    const bool pushed = queue_.push([&, k](std::size_t worker) {
      try {
        fn(worker, k);
      } catch (...) {
        const std::lock_guard lock(mutex);
        if (first_error == nullptr) {
          first_error = std::current_exception();
        }
      }
      {
        // Notify while holding the lock: the condition variable lives on
        // the caller's stack and is destroyed as soon as the waiter sees
        // done == count, so the signal must complete before the waiter
        // can observe the final increment.
        const std::lock_guard lock(mutex);
        ++done;
        all_done.notify_one();
      }
    });
    FCDPM_ENSURES(pushed, "worker pool queue closed mid-batch");
  }

  std::unique_lock lock(mutex);
  all_done.wait(lock, [&] { return done == count; });
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace fcdpm::par
