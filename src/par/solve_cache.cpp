#include "par/solve_cache.hpp"

#include <bit>
#include <cmath>
#include <mutex>

namespace fcdpm::par {

namespace {

double snap(double value, double quantum) {
  if (quantum <= 0.0) {
    return value;
  }
  return std::round(value / quantum) * quantum;
}

std::uint64_t word(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

}  // namespace

SharedSolveCache::SharedSolveCache(SolveCacheConfig config)
    : config_(config) {}

std::size_t SharedSolveCache::KeyHash::operator()(
    const Key& key) const noexcept {
  // FNV-1a over the key words; cheap and stable.
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::uint64_t w : key) {
    hash ^= w;
    hash *= 1099511628211ull;
  }
  return static_cast<std::size_t>(hash);
}

double SharedSolveCache::hit_rate() const noexcept {
  const double h = static_cast<double>(hits());
  const double total = h + static_cast<double>(misses());
  return total > 0.0 ? h / total : 0.0;
}

std::size_t SharedSolveCache::size() const {
  const std::shared_lock lock(mutex_);
  return entries_.size();
}

void SharedSolveCache::clear() {
  const std::unique_lock lock(mutex_);
  entries_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void SharedSolveCache::publish(obs::Context& obs) const {
  obs.gauge("par.cache.hits", static_cast<double>(hits()));
  obs.gauge("par.cache.misses", static_cast<double>(misses()));
  obs.gauge("par.cache.entries", static_cast<double>(size()));
  obs.gauge("par.cache.hit_rate", hit_rate());
}

core::CheckedSetting SharedSolveCache::solve(
    const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
    const core::StorageBounds& storage) {
  bool hit = false;
  return solve(optimizer, load, storage, hit);
}

core::CheckedSetting SharedSolveCache::solve_active_only(
    const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
    const core::StorageBounds& storage) {
  bool hit = false;
  return solve_active_only(optimizer, duration, charge, storage, hit);
}

core::SlotLoad SharedSolveCache::snap_load(const core::SlotLoad& load) const {
  core::SlotLoad snapped = load;
  snapped.idle = Seconds(snap(load.idle.value(), config_.time_quantum.value()));
  snapped.active =
      Seconds(snap(load.active.value(), config_.time_quantum.value()));
  snapped.idle_current =
      Ampere(snap(load.idle_current.value(), config_.current_quantum.value()));
  snapped.active_current = Ampere(
      snap(load.active_current.value(), config_.current_quantum.value()));
  return snapped;
}

core::StorageBounds SharedSolveCache::snap_bounds(
    const core::StorageBounds& storage) const {
  core::StorageBounds bounds = storage;
  bounds.initial =
      Coulomb(snap(storage.initial.value(), config_.charge_quantum.value()));
  bounds.target_end = Coulomb(
      snap(storage.target_end.value(), config_.charge_quantum.value()));
  bounds.capacity =
      Coulomb(snap(storage.capacity.value(), config_.charge_quantum.value()));
  return bounds;
}

core::CheckedSetting SharedSolveCache::solve_fresh(
    const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
    const core::StorageBounds& storage) const {
  // Same snapped problem as the miss path, straight to the optimizer.
  return optimizer.solve_checked(snap_load(load), snap_bounds(storage));
}

core::CheckedSetting SharedSolveCache::solve_active_only_fresh(
    const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
    const core::StorageBounds& storage) const {
  return optimizer.solve_active_only_checked(
      Seconds(snap(duration.value(), config_.time_quantum.value())),
      Coulomb(snap(charge.value(), config_.charge_quantum.value())),
      snap_bounds(storage));
}

core::CheckedSetting SharedSolveCache::solve(
    const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
    const core::StorageBounds& storage, bool& hit) {
  const core::SlotLoad snapped = snap_load(load);
  const core::StorageBounds bounds = snap_bounds(storage);

  const power::LinearEfficiencyModel& model = optimizer.model();
  const Key key{0ull,
                word(model.bus_voltage().value()),
                word(model.zeta()),
                word(model.alpha()),
                word(model.beta()),
                word(model.min_output().value()),
                word(model.max_output().value()),
                word(snapped.idle.value()),
                word(snapped.idle_current.value()),
                word(snapped.active.value()),
                word(snapped.active_current.value()),
                word(bounds.initial.value()),
                word(bounds.target_end.value()),
                word(bounds.capacity.value())};
  return lookup_or_solve(key, optimizer, snapped, bounds,
                         /*active_only=*/false, Seconds(0.0), Coulomb(0.0),
                         hit);
}

core::CheckedSetting SharedSolveCache::solve_active_only(
    const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
    const core::StorageBounds& storage, bool& hit) {
  const Seconds snapped_duration =
      Seconds(snap(duration.value(), config_.time_quantum.value()));
  const Coulomb snapped_charge =
      Coulomb(snap(charge.value(), config_.charge_quantum.value()));
  const core::StorageBounds bounds = snap_bounds(storage);

  const power::LinearEfficiencyModel& model = optimizer.model();
  const Key key{1ull,
                word(model.bus_voltage().value()),
                word(model.zeta()),
                word(model.alpha()),
                word(model.beta()),
                word(model.min_output().value()),
                word(model.max_output().value()),
                word(snapped_duration.value()),
                word(snapped_charge.value()),
                word(bounds.initial.value()),
                word(bounds.target_end.value()),
                word(bounds.capacity.value()),
                0ull,
                0ull};
  return lookup_or_solve(key, optimizer, core::SlotLoad{}, bounds,
                         /*active_only=*/true, snapped_duration,
                         snapped_charge, hit);
}

core::CheckedSetting SharedSolveCache::lookup_or_solve(
    const Key& key, const core::SlotOptimizer& optimizer,
    const core::SlotLoad& load, const core::StorageBounds& storage,
    bool active_only, Seconds duration, Coulomb charge, bool& hit) {
  {
    const std::shared_lock lock(mutex_);
    const auto found = entries_.find(key);
    if (found != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit = true;
      return found->second;
    }
  }
  hit = false;
  // Miss: solve the snapped problem outside any lock. A concurrent
  // worker racing on the same key computes the identical answer;
  // try_emplace keeps whichever got there first.
  const core::CheckedSetting answer =
      active_only ? optimizer.solve_active_only_checked(duration, charge,
                                                        storage)
                  : optimizer.solve_checked(load, storage);
  misses_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::unique_lock lock(mutex_);
    entries_.try_emplace(key, answer);
  }
  return answer;
}

}  // namespace fcdpm::par
