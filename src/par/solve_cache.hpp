// Thread-safe memo for slot solves, shared read-mostly across sweep
// workers.
//
// Determinism: inputs are snapped to the quantization grid *before*
// solving, so the hit path (lookup) and the miss path (solve + insert)
// answer the identical snapped problem — a cached answer is
// bit-identical to a fresh one on any thread, in any interleaving, and
// a race between two workers solving the same key merely computes the
// same value twice. With all quanta at 0 (the default) no snapping
// happens and keys are the exact input bit patterns: the cache is then
// transparent (results bit-identical to running without it), and only
// genuinely recurring sub-problems hit. Coarser quanta trade a bounded
// input perturbation for hit rate; see docs/ARCHITECTURE.md.
//
// Keys include the optimizer's efficiency model (bus, zeta, alpha,
// beta, range), so policies with different — or adapting — models never
// alias.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <type_traits>
#include <unordered_map>

#include "core/solve_cache.hpp"
#include "obs/context.hpp"

namespace fcdpm::par {

/// Quantization grid for solve inputs; 0 disables snapping for that
/// unit. Snapping rounds to the nearest multiple of the quantum.
struct SolveCacheConfig {
  Seconds time_quantum{0.0};
  Ampere current_quantum{0.0};
  Coulomb charge_quantum{0.0};
};

class SharedSolveCache final : public core::SlotSolveCache {
 public:
  explicit SharedSolveCache(SolveCacheConfig config = {});

  [[nodiscard]] core::CheckedSetting solve(
      const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
      const core::StorageBounds& storage) override;

  [[nodiscard]] core::CheckedSetting solve_active_only(
      const core::SlotOptimizer& optimizer, Seconds duration,
      Coulomb charge, const core::StorageBounds& storage) override;

  /// Attributable variants: `hit` reports whether *this call* was
  /// served from the memo. The global hits()/misses() counters cannot
  /// answer that per caller (deltas race across workers); the tap
  /// (SolveCacheTap) uses these to attribute traffic to one worker.
  [[nodiscard]] core::CheckedSetting solve(
      const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
      const core::StorageBounds& storage, bool& hit);

  [[nodiscard]] core::CheckedSetting solve_active_only(
      const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
      const core::StorageBounds& storage, bool& hit);

  /// Audit seam: solve the *snapped* problem directly — no lookup, no
  /// insert, counters untouched — so a cached answer can be compared
  /// bit-for-bit against a fresh computation of the identical problem.
  [[nodiscard]] core::CheckedSetting solve_fresh(
      const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
      const core::StorageBounds& storage) const;

  [[nodiscard]] core::CheckedSetting solve_active_only_fresh(
      const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
      const core::StorageBounds& storage) const;

  [[nodiscard]] const SolveCacheConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when the cache was never consulted.
  [[nodiscard]] double hit_rate() const noexcept;
  [[nodiscard]] std::size_t size() const;

  void clear();

  /// Publish par.cache.{hits,misses,entries,hit_rate} gauges. Call from
  /// one thread after a run — obs::Context is not thread-safe.
  void publish(obs::Context& obs) const;

 private:
  [[nodiscard]] core::SlotLoad snap_load(const core::SlotLoad& load) const;
  [[nodiscard]] core::StorageBounds snap_bounds(
      const core::StorageBounds& storage) const;

  /// Solve kind tag + 6 model words + up to 7 input words.
  using Key = std::array<std::uint64_t, 14>;
  // The key is hashed and compared as raw bytes, so it must not carry
  // padding: uninitialized pad bytes would make bit-identical problems
  // hash to different buckets (silent miss) or — worse — compare
  // unequal under a byte-wise comparator. std::array<std::uint64_t, N>
  // is guaranteed contiguous, but assert it stays that way if the key
  // is ever widened into a struct.
  static_assert(std::has_unique_object_representations_v<Key>,
                "SolveCache::Key must be padding-free: it is hashed and "
                "compared by value, and pad bytes are indeterminate");

  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& key) const noexcept;
  };

  [[nodiscard]] core::CheckedSetting lookup_or_solve(
      const Key& key, const core::SlotOptimizer& optimizer,
      const core::SlotLoad& load, const core::StorageBounds& storage,
      bool active_only, Seconds duration, Coulomb charge, bool& hit);

  SolveCacheConfig config_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<Key, core::CheckedSetting, KeyHash> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Per-worker counting wrapper around a SharedSolveCache. One tap lives
/// on each worker's stack; it forwards every solve to the shared memo
/// (answers stay bit-identical — it adds no caching of its own) and
/// counts the hits and misses of *this worker only* in plain fields
/// read on the same thread. Telemetry folds the per-point deltas into
/// the worker's shard; the shared cache's global counters are untouched
/// in meaning (they still total all workers).
class SolveCacheTap final : public core::SlotSolveCache {
 public:
  explicit SolveCacheTap(SharedSolveCache& cache) : cache_(&cache) {}

  [[nodiscard]] core::CheckedSetting solve(
      const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
      const core::StorageBounds& storage) override {
    bool hit = false;
    const core::CheckedSetting answer =
        cache_->solve(optimizer, load, storage, hit);
    count(hit);
    return answer;
  }

  [[nodiscard]] core::CheckedSetting solve_active_only(
      const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
      const core::StorageBounds& storage) override {
    bool hit = false;
    const core::CheckedSetting answer =
        cache_->solve_active_only(optimizer, duration, charge, storage, hit);
    count(hit);
    return answer;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// The shared memo this tap forwards to (the audit layer uses it for
  /// fresh-solve comparisons).
  [[nodiscard]] SharedSolveCache& underlying() const noexcept {
    return *cache_;
  }

 private:
  void count(bool hit) noexcept {
    if (hit) {
      ++hits_;
    } else {
      ++misses_;
    }
  }

  SharedSolveCache* cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fcdpm::par
