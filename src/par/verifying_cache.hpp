// Audited view of the solve-cache seam: forwards every solve to the
// inner cache (answers are unchanged — it adds no caching of its own)
// and, for every `sample_period`-th call, re-solves the identical
// snapped problem fresh through the shared memo's bypass and
// bit-compares the answers. A mismatch means the memo served a stale or
// corrupted entry; it is reported to the auditor as a cache violation
// (fail-fast auditors throw, so a poisoned cache can never silently
// shape a strict run's results).
//
// The inner cache is whatever the caller already uses — the shared memo
// itself, or a per-worker SolveCacheTap (attribution is preserved:
// verification adds fresh solves, not cache traffic).
#pragma once

#include <bit>
#include <cstdint>

#include "audit/audit.hpp"
#include "par/solve_cache.hpp"

namespace fcdpm::par {

class VerifyingSolveCache final : public core::SlotSolveCache {
 public:
  VerifyingSolveCache(core::SlotSolveCache& inner,
                      const SharedSolveCache& fresh, audit::Auditor& auditor)
      : inner_(&inner),
        fresh_(&fresh),
        auditor_(&auditor),
        until_check_(auditor.spec().cache_check_period) {}

  [[nodiscard]] core::CheckedSetting solve(
      const core::SlotOptimizer& optimizer, const core::SlotLoad& load,
      const core::StorageBounds& storage) override {
    const core::CheckedSetting answer =
        inner_->solve(optimizer, load, storage);
    if (sample()) {
      check(answer, fresh_->solve_fresh(optimizer, load, storage));
    }
    return answer;
  }

  [[nodiscard]] core::CheckedSetting solve_active_only(
      const core::SlotOptimizer& optimizer, Seconds duration, Coulomb charge,
      const core::StorageBounds& storage) override {
    const core::CheckedSetting answer =
        inner_->solve_active_only(optimizer, duration, charge, storage);
    if (sample()) {
      check(answer, fresh_->solve_active_only_fresh(optimizer, duration,
                                                    charge, storage));
    }
    return answer;
  }

  /// Answers re-solved and compared so far.
  [[nodiscard]] std::uint64_t verified() const noexcept { return verified_; }

 private:
  /// Verification is sampled even in strict mode (the point of the
  /// memo is not solving everything twice); the auditor's
  /// cache_check_period sets the cadence over this caller's solve
  /// sequence.
  /// The first check lands at call `cache_check_period`, not call 0: a
  /// short run skips the re-solve entirely, which keeps the sampled
  /// audit inside its overhead budget on small sweeps (a fresh solve
  /// costs orders of magnitude more than every other sampled check).
  /// Countdown instead of modulo: this sits on the per-solve fast path.
  [[nodiscard]] bool sample() noexcept {
    if (--until_check_ != 0) {
      return false;
    }
    until_check_ = auditor_->spec().cache_check_period;
    return true;
  }

  static bool same_bits(double a, double b) noexcept {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
  }

  void check(const core::CheckedSetting& cached,
             const core::CheckedSetting& fresh) {
    ++verified_;
    const core::SlotSetting& c = cached.setting;
    const core::SlotSetting& f = fresh.setting;
    const bool same =
        cached.status == fresh.status &&
        same_bits(c.if_idle.value(), f.if_idle.value()) &&
        same_bits(c.if_active.value(), f.if_active.value()) &&
        same_bits(c.expected_end.value(), f.expected_end.value()) &&
        same_bits(c.fuel.value(), f.fuel.value()) &&
        same_bits(c.unconstrained.value(), f.unconstrained.value()) &&
        c.range_clamped == f.range_clamped &&
        c.capacity_clamped == f.capacity_clamped &&
        c.floor_clamped == f.floor_clamped &&
        c.bleed_expected == f.bleed_expected;
    if (!same) {
      auditor_->record_cache_mismatch();
    }
  }

  core::SlotSolveCache* inner_;
  const SharedSolveCache* fresh_;
  audit::Auditor* auditor_;
  std::size_t until_check_;
  std::uint64_t verified_ = 0;
};

}  // namespace fcdpm::par
