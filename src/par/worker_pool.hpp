// Fixed-size worker pool over a bounded work queue.
//
// The pool exists for *deterministic* parallelism: run_indexed() hands
// each index to exactly one worker, the caller stores results by index,
// and nothing about scheduling order can leak into the results. The
// bounded queue (capacity 2x the thread count) gives producer
// backpressure instead of materializing the whole batch as closures.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "par/bounded_queue.hpp"

namespace fcdpm::par {

class WorkerPool {
 public:
  /// `threads == 0` resolves to the hardware concurrency (at least 1).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }

  /// The thread count a given `threads` request resolves to (0 -> the
  /// hardware concurrency, floor 1). Lets callers that must size
  /// per-worker state *before* constructing the pool — telemetry
  /// shards, watchdog heartbeat slots — agree exactly with the pool.
  [[nodiscard]] static std::size_t resolve(std::size_t threads) noexcept;

  /// Run fn(0) .. fn(count-1) across the pool and block until all have
  /// finished. The first exception thrown by any invocation is captured
  /// and rethrown here after the batch drains (the remaining tasks still
  /// run — a sweep point must not be silently skipped).
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Like run_indexed, but the task also learns which worker thread runs
  /// it (0 .. thread_count()-1). The resilience watchdog keys its
  /// per-worker heartbeat slots off this index; results must never
  /// depend on it.
  void run_indexed_on_workers(
      std::size_t count,
      const std::function<void(std::size_t worker, std::size_t index)>& fn);

 private:
  /// Queued tasks receive the index of the worker executing them.
  BoundedQueue<std::function<void(std::size_t)>> queue_;
  std::vector<std::thread> threads_;
};

}  // namespace fcdpm::par
