#include "par/sweep.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "audit/audit.hpp"
#include "cap/governor.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "hot/engine.hpp"
#include "par/verifying_cache.hpp"
#include "par/worker_pool.hpp"
#include "telemetry/sweep_telemetry.hpp"

namespace fcdpm::par {

std::vector<SweepPoint> SweepGrid::points(
    const sim::ExperimentConfig& base) const {
  const std::vector<sim::PolicyKind> kinds =
      policies.empty()
          ? std::vector<sim::PolicyKind>{sim::PolicyKind::Conv,
                                         sim::PolicyKind::Asap,
                                         sim::PolicyKind::FcDpm}
          : policies;
  const std::vector<double> rho_values =
      rhos.empty() ? std::vector<double>{base.rho} : rhos;
  const std::vector<Coulomb> capacity_values =
      capacities.empty() ? std::vector<Coulomb>{base.storage_capacity}
                         : capacities;
  const std::vector<std::uint64_t> seeds =
      storm_seeds.empty() ? std::vector<std::uint64_t>{0} : storm_seeds;
  const std::vector<std::size_t> counts =
      stack_counts.empty()
          ? std::vector<std::size_t>{base.stacks.enabled ? base.stacks.count
                                                         : 0}
          : stack_counts;
  const std::vector<stacks::Distribution> dists =
      distributions.empty()
          ? std::vector<stacks::Distribution>{base.stacks.distribution}
          : distributions;

  std::vector<SweepPoint> grid;
  grid.reserve(kinds.size() * rho_values.size() * capacity_values.size() *
               counts.size() * dists.size() * seeds.size());
  for (const sim::PolicyKind kind : kinds) {
    for (const double rho : rho_values) {
      for (const Coulomb capacity : capacity_values) {
        for (const std::size_t count : counts) {
          for (const stacks::Distribution dist : dists) {
            for (const std::uint64_t seed : seeds) {
              grid.push_back({kind, rho, capacity, seed, count, dist});
            }
          }
        }
      }
    }
  }
  return grid;
}

SweepPointResult run_point(const sim::ExperimentConfig& base,
                           const SweepPoint& point,
                           std::size_t storm_faults,
                           core::SlotSolveCache* cache,
                           sim::CancellationToken* cancel,
                           std::size_t slot_budget,
                           const hot::CompiledTrace* compiled) {
  sim::ExperimentConfig config = base;
  config.rho = point.rho;
  config.storage_capacity = point.capacity;
  // A shrunk buffer cannot hold the configured reserve.
  config.initial_storage = min(config.initial_storage, point.capacity);
  if (point.stacks > 0) {
    config.stacks.enabled = true;
    config.stacks.count = point.stacks;
    config.stacks.distribution = point.distribution;
  }
  // Workers own everything they mutate; the run-level observer is
  // published to after the batch, never attached to a worker's run.
  config.simulation.observer = nullptr;

  // Fresh-solve source for audited cache verification. The memo itself
  // qualifies, and so does the telemetry tap wrapping it; any other
  // cache implementation simply runs unverified.
  const SharedSolveCache* fresh_source = nullptr;
  if (config.audit.enabled() && cache != nullptr) {
    fresh_source = dynamic_cast<const SharedSolveCache*>(cache);
    if (fresh_source == nullptr) {
      if (const auto* tap = dynamic_cast<const SolveCacheTap*>(cache)) {
        fresh_source = &tap->underlying();
      }
    }
  }

  // Everything stateful — policies, hybrid, injector, governor, auditor
  // — is rebuilt per attempt, so the self-heal replay below starts from
  // the same clean state the hot attempt did.
  std::optional<audit::AuditStats> failed_stats;
  const auto run_once = [&](sim::Engine engine, bool tamper_allowed,
                            bool& ran_hot) -> sim::SimulationResult {
    dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);
    const std::unique_ptr<core::FcOutputPolicy> fc_policy =
        sim::make_fc_policy(point.policy, config);
    power::HybridPowerSource hybrid = sim::make_hybrid(config);

    sim::SimulationOptions options = config.simulation;
    options.engine = engine;
    options.initial_storage = config.initial_storage;
    options.cancel = cancel;
    options.slot_budget = slot_budget;
    std::optional<fault::FaultInjector> injector;
    if (point.storm_seed != 0) {
      injector.emplace(fault::FaultSchedule::random_storm(
          point.storm_seed, storm_faults,
          config.trace.stats().total_duration()));
      options.faults = &*injector;
    }
    // Workers own their governor like they own their injector: one
    // fresh instance per point keeps the held-level state
    // thread-private and the results independent of execution order.
    std::optional<cap::Governor> governor;
    if (config.cap.enabled) {
      governor.emplace(cap::make_governor(config.cap, config.efficiency));
      options.governor = &*governor;
    }

    const bool hot_engine = engine == sim::Engine::Hot;
    // The grid varies rho/capacity/seed but never the trace or device,
    // so one compiled trace serves every point. A direct caller without
    // one (the resilience retry path) compiles its own.
    std::optional<hot::CompiledTrace> local;
    const hot::CompiledTrace* trace = compiled;
    if (hot_engine && trace == nullptr) {
      local.emplace(config.trace, config.device);
      trace = &*local;
    }
    // Mirror of hot::simulate's internal dispatch: ineligible runs
    // (storm faults, attached observers) fall back to the reference
    // interpreter inside, so count them as reference dispatches.
    ran_hot = hot_engine && hot::lane_eligible(hybrid, options);

    // The auditor is built after eligibility is known: hot lanes always
    // fail fast (the catch below self-heals them), reference runs fail
    // fast only in strict mode (the escape is the resilience layer's
    // contract_violation). Tamper models a hot-engine defect, so it
    // arms only on a hot lane — and never on the replay.
    std::optional<audit::Auditor> auditor;
    std::optional<VerifyingSolveCache> verifier;
    core::SlotSolveCache* point_cache = cache;
    if (config.audit.enabled()) {
      audit::AuditSpec spec = config.audit;
      if (!(ran_hot && tamper_allowed)) {
        spec.tamper_slot = audit::npos;
      }
      auditor.emplace(spec, ran_hot || spec.mode == audit::Mode::Strict);
      options.auditor = &*auditor;
      if (fresh_source != nullptr) {
        verifier.emplace(*cache, *fresh_source, *auditor);
        point_cache = &*verifier;
      }
    }
    if (point_cache != nullptr) {
      fc_policy->set_solve_cache(point_cache);
    }

    try {
      if (hot_engine) {
        return hot::simulate(*trace, dpm_policy, *fc_policy, hybrid,
                             options);
      }
      return sim::simulate(config.trace, dpm_policy, *fc_policy, hybrid,
                           options);
    } catch (const audit::AuditError&) {
      // The auditor dies with this frame; keep its tally for the
      // fallback record before rethrowing to the dispatcher.
      if (auditor.has_value()) {
        failed_stats = auditor->stats();
      }
      throw;
    }
  };

  SweepPointResult out;
  out.point = point;
  try {
    out.result = run_once(config.simulation.engine, /*tamper_allowed=*/true,
                          out.ran_hot);
  } catch (const audit::AuditError&) {
    if (!out.ran_hot) {
      // Reference-engine violation: nothing trusted to heal onto.
      throw;
    }
    // Self-heal: the hot lane broke an invariant, so replay the point
    // on the reference engine (fresh state, tamper disarmed) and keep
    // that result, recording the hot run's violations as a fallback.
    const audit::AuditStats hot_stats = failed_stats.value_or(
        audit::AuditStats{});
    failed_stats.reset();
    out.result = run_once(sim::Engine::Reference, /*tamper_allowed=*/false,
                          out.ran_hot);
    if (!out.result.audit.has_value()) {
      out.result.audit.emplace();
      out.result.audit->mode = static_cast<int>(config.audit.mode);
    }
    audit::record_engine_fallback(*out.result.audit, hot_stats);
  }
  return out;
}

SweepResult run_sweep(const sim::ExperimentConfig& base,
                      const SweepGrid& grid, const SweepOptions& options) {
  const std::vector<SweepPoint> points = grid.points(base);

  SweepResult out;
  out.points.resize(points.size());
  out.stats.points = points.size();

  const std::uint64_t hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;

  // Compile the trace once, up front, and share it read-only across all
  // workers (CompiledTrace is immutable after construction).
  std::optional<hot::CompiledTrace> compiled;
  if (base.simulation.engine == sim::Engine::Hot) {
    compiled.emplace(base.trace, base.device);
  }
  const hot::CompiledTrace* shared =
      compiled.has_value() ? &*compiled : nullptr;

  const auto started = std::chrono::steady_clock::now();
  {
    WorkerPool pool(options.jobs);
    out.stats.jobs = pool.thread_count();
    telemetry::SweepTelemetry* tel = options.telemetry;
    if (tel == nullptr) {
      pool.run_indexed(points.size(), [&](std::size_t k) {
        out.points[k] = run_point(base, points[k], grid.storm_faults,
                                  options.cache, nullptr, 0, shared);
      });
    } else {
      pool.run_indexed_on_workers(
          points.size(), [&](std::size_t worker, std::size_t k) {
            telemetry::WorkerShard& shard = tel->shards().shard(worker);
            // The tap attributes this point's cache traffic to this
            // worker; it adds no caching, so results are unchanged.
            std::optional<SolveCacheTap> tap;
            if (options.cache != nullptr) {
              tap.emplace(*options.cache);
            }
            const std::uint64_t t0 = tel->now_ns();
            out.points[k] = run_point(
                base, points[k], grid.storm_faults,
                tap.has_value() ? static_cast<core::SlotSolveCache*>(&*tap)
                                : nullptr,
                nullptr, 0, shared);
            const std::uint64_t t1 = tel->now_ns();

            const SweepPointResult& done = out.points[k];
            shard.points_done.fetch_add(1, std::memory_order_relaxed);
            shard.busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
            shard.slots.fetch_add(done.result.slots,
                                  std::memory_order_relaxed);
            if (done.ran_hot) {
              shard.hot_dispatches.fetch_add(1, std::memory_order_relaxed);
            } else {
              shard.reference_dispatches.fetch_add(1,
                                                   std::memory_order_relaxed);
            }
            std::uint64_t point_hits = 0;
            std::uint64_t point_misses = 0;
            if (tap.has_value()) {
              point_hits = tap->hits();
              point_misses = tap->misses();
              shard.cache_hits.fetch_add(point_hits,
                                         std::memory_order_relaxed);
              shard.cache_misses.fetch_add(point_misses,
                                           std::memory_order_relaxed);
            }
            if (done.result.cap.has_value()) {
              shard.capped_slots.fetch_add(done.result.cap->slots_capped,
                                           std::memory_order_relaxed);
            }
            if (done.result.audit.has_value()) {
              const audit::AuditStats& a = *done.result.audit;
              shard.audited_slots.fetch_add(a.slots_audited,
                                            std::memory_order_relaxed);
              shard.audit_violations.fetch_add(a.violations,
                                               std::memory_order_relaxed);
              shard.engine_fallbacks.fetch_add(a.engine_fallbacks,
                                               std::memory_order_relaxed);
            }
            shard.wall_us.observe(static_cast<double>(t1 - t0) * 1e-3);
            shard.sim_s.observe(done.result.totals.duration.value());

            if (telemetry::LaneRecorder* lanes = tel->lanes()) {
              telemetry::PointLane lane;
              lane.start_ns = t0;
              lane.end_ns = t1;
              lane.point_index = static_cast<std::uint32_t>(k);
              lane.attempt = 1;
              lane.cache_hits = static_cast<std::uint32_t>(point_hits);
              lane.cache_misses = static_cast<std::uint32_t>(point_misses);
              lane.ok = true;
              lane.hot = done.ran_hot;
              lanes->record(worker, lane);
            }
          });
    }
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  if (options.cache != nullptr) {
    out.stats.cache_hits = options.cache->hits() - hits_before;
    out.stats.cache_misses = options.cache->misses() - misses_before;
  }

  if (options.observer != nullptr) {
    publish_sweep_stats(*options.observer, out.stats, options.cache);
  }
  return out;
}

void publish_sweep_stats(obs::Context& obs, const SweepRunStats& stats,
                         const SharedSolveCache* cache) {
  if (!obs.active()) {
    return;
  }
  obs.gauge("par.sweep.points", static_cast<double>(stats.points));
  obs.gauge("par.sweep.jobs", static_cast<double>(stats.jobs));
  obs.gauge("par.sweep.wall_s", stats.wall_seconds);
  obs.gauge("par.sweep.points_per_s", stats.points_per_second());
  if (cache != nullptr) {
    cache->publish(obs);
  }
}

}  // namespace fcdpm::par
