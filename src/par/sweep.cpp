#include "par/sweep.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "audit/audit.hpp"
#include "batch/engine.hpp"
#include "cap/governor.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "hot/engine.hpp"
#include "par/verifying_cache.hpp"
#include "par/worker_pool.hpp"
#include "telemetry/sweep_telemetry.hpp"

namespace fcdpm::par {

std::vector<SweepPoint> SweepGrid::points(
    const sim::ExperimentConfig& base) const {
  const std::vector<sim::PolicyKind> kinds =
      policies.empty()
          ? std::vector<sim::PolicyKind>{sim::PolicyKind::Conv,
                                         sim::PolicyKind::Asap,
                                         sim::PolicyKind::FcDpm}
          : policies;
  const std::vector<double> rho_values =
      rhos.empty() ? std::vector<double>{base.rho} : rhos;
  const std::vector<Coulomb> capacity_values =
      capacities.empty() ? std::vector<Coulomb>{base.storage_capacity}
                         : capacities;
  const std::vector<std::uint64_t> seeds =
      storm_seeds.empty() ? std::vector<std::uint64_t>{0} : storm_seeds;
  const std::vector<std::size_t> counts =
      stack_counts.empty()
          ? std::vector<std::size_t>{base.stacks.enabled ? base.stacks.count
                                                         : 0}
          : stack_counts;
  const std::vector<stacks::Distribution> dists =
      distributions.empty()
          ? std::vector<stacks::Distribution>{base.stacks.distribution}
          : distributions;

  std::vector<SweepPoint> grid;
  grid.reserve(kinds.size() * rho_values.size() * capacity_values.size() *
               counts.size() * dists.size() * seeds.size());
  for (const sim::PolicyKind kind : kinds) {
    for (const double rho : rho_values) {
      for (const Coulomb capacity : capacity_values) {
        for (const std::size_t count : counts) {
          for (const stacks::Distribution dist : dists) {
            for (const std::uint64_t seed : seeds) {
              grid.push_back({kind, rho, capacity, seed, count, dist});
            }
          }
        }
      }
    }
  }
  return grid;
}

SweepPointResult run_point(const sim::ExperimentConfig& base,
                           const SweepPoint& point,
                           std::size_t storm_faults,
                           core::SlotSolveCache* cache,
                           sim::CancellationToken* cancel,
                           std::size_t slot_budget,
                           const hot::CompiledTrace* compiled) {
  sim::ExperimentConfig config = base;
  config.rho = point.rho;
  config.storage_capacity = point.capacity;
  // A shrunk buffer cannot hold the configured reserve.
  config.initial_storage = min(config.initial_storage, point.capacity);
  if (point.stacks > 0) {
    config.stacks.enabled = true;
    config.stacks.count = point.stacks;
    config.stacks.distribution = point.distribution;
  }
  // Workers own everything they mutate; the run-level observer is
  // published to after the batch, never attached to a worker's run.
  config.simulation.observer = nullptr;

  // Fresh-solve source for audited cache verification. The memo itself
  // qualifies, and so does the telemetry tap wrapping it; any other
  // cache implementation simply runs unverified.
  const SharedSolveCache* fresh_source = nullptr;
  if (config.audit.enabled() && cache != nullptr) {
    fresh_source = dynamic_cast<const SharedSolveCache*>(cache);
    if (fresh_source == nullptr) {
      if (const auto* tap = dynamic_cast<const SolveCacheTap*>(cache)) {
        fresh_source = &tap->underlying();
      }
    }
  }

  // Everything stateful — policies, hybrid, injector, governor, auditor
  // — is rebuilt per attempt, so the self-heal replay below starts from
  // the same clean state the hot attempt did.
  std::optional<audit::AuditStats> failed_stats;
  const auto run_once = [&](sim::Engine engine, bool tamper_allowed,
                            bool& ran_hot,
                            bool& ran_batched) -> sim::SimulationResult {
    dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);
    const std::unique_ptr<core::FcOutputPolicy> fc_policy =
        sim::make_fc_policy(point.policy, config);
    power::HybridPowerSource hybrid = sim::make_hybrid(config);

    sim::SimulationOptions options = config.simulation;
    options.engine = engine;
    options.initial_storage = config.initial_storage;
    options.cancel = cancel;
    options.slot_budget = slot_budget;
    std::optional<fault::FaultInjector> injector;
    if (point.storm_seed != 0) {
      injector.emplace(fault::FaultSchedule::random_storm(
          point.storm_seed, storm_faults,
          config.trace.stats().total_duration()));
      options.faults = &*injector;
    }
    // Workers own their governor like they own their injector: one
    // fresh instance per point keeps the held-level state
    // thread-private and the results independent of execution order.
    std::optional<cap::Governor> governor;
    if (config.cap.enabled) {
      governor.emplace(cap::make_governor(config.cap, config.efficiency));
      options.governor = &*governor;
    }

    const bool hot_engine = engine == sim::Engine::Hot;
    const bool batched_engine = engine == sim::Engine::Batched;
    // The grid varies rho/capacity/seed but never the trace or device,
    // so one compiled trace serves every point. A direct caller without
    // one (the resilience retry path) compiles its own.
    std::optional<hot::CompiledTrace> local;
    const hot::CompiledTrace* trace = compiled;
    if ((hot_engine || batched_engine) && trace == nullptr) {
      local.emplace(config.trace, config.device);
      trace = &*local;
    }
    // Mirror of the engines' internal dispatch: batch::simulate
    // degrades to hot::simulate for batch-ineligible runs, and hot
    // itself falls back to the reference interpreter (storm faults,
    // attached observers), so count each run where it actually lands.
    const bool batch_lane =
        batched_engine && batch::lane_eligible(hybrid, options);
    ran_batched = batch_lane;
    ran_hot = (hot_engine || (batched_engine && !batch_lane)) &&
              hot::lane_eligible(hybrid, options);

    // The auditor is built after eligibility is known: hot and batched
    // lanes always fail fast (the catch below self-heals them),
    // reference runs fail fast only in strict mode (the escape is the
    // resilience layer's contract_violation). Tamper models a compiled
    // -engine defect, so it arms only on a hot or batched lane — and
    // never on the replay.
    std::optional<audit::Auditor> auditor;
    std::optional<VerifyingSolveCache> verifier;
    core::SlotSolveCache* point_cache = cache;
    if (config.audit.enabled()) {
      audit::AuditSpec spec = config.audit;
      if (!((ran_hot || batch_lane) && tamper_allowed)) {
        spec.tamper_slot = audit::npos;
      }
      auditor.emplace(spec, ran_hot || batch_lane ||
                                spec.mode == audit::Mode::Strict);
      options.auditor = &*auditor;
      if (fresh_source != nullptr) {
        verifier.emplace(*cache, *fresh_source, *auditor);
        point_cache = &*verifier;
      }
    }
    if (point_cache != nullptr) {
      fc_policy->set_solve_cache(point_cache);
    }

    try {
      if (batched_engine) {
        return batch::simulate(*trace, dpm_policy, *fc_policy, hybrid,
                               options);
      }
      if (hot_engine) {
        return hot::simulate(*trace, dpm_policy, *fc_policy, hybrid,
                             options);
      }
      return sim::simulate(config.trace, dpm_policy, *fc_policy, hybrid,
                           options);
    } catch (const audit::AuditError&) {
      // The auditor dies with this frame; keep its tally for the
      // fallback record before rethrowing to the dispatcher.
      if (auditor.has_value()) {
        failed_stats = auditor->stats();
      }
      throw;
    }
  };

  SweepPointResult out;
  out.point = point;
  try {
    out.result = run_once(config.simulation.engine, /*tamper_allowed=*/true,
                          out.ran_hot, out.ran_batched);
  } catch (const audit::AuditError&) {
    if (!out.ran_hot && !out.ran_batched) {
      // Reference-engine violation: nothing trusted to heal onto.
      throw;
    }
    // Self-heal: the compiled lane broke an invariant, so replay the
    // point on the reference engine (fresh state, tamper disarmed) and
    // keep that result, recording the run's violations as a fallback.
    const audit::AuditStats hot_stats = failed_stats.value_or(
        audit::AuditStats{});
    failed_stats.reset();
    out.result = run_once(sim::Engine::Reference, /*tamper_allowed=*/false,
                          out.ran_hot, out.ran_batched);
    if (!out.result.audit.has_value()) {
      out.result.audit.emplace();
      out.result.audit->mode = static_cast<int>(config.audit.mode);
    }
    audit::record_engine_fallback(*out.result.audit, hot_stats);
  }
  return out;
}

namespace {

// Maximum lanes per batched task. Fixed — never derived from the job
// count — so the task list, and therefore every result, is identical
// for any --jobs value.
constexpr std::size_t kBatchMax = 16;

// Points the batch loop can take directly; everything else (fault
// storms, multi-stack sources) runs alone through run_point, which
// still dispatches through batch::simulate's fallback chain.
bool batch_point_eligible(const SweepPoint& point) {
  return point.storm_seed == 0 && point.stacks == 0;
}

struct BatchPlan {
  /// Multi-point tasks: grid indices, equal rho, grid order.
  std::vector<std::vector<std::size_t>> chunks;
  /// Points that run alone (ineligible, or a leftover group of one).
  std::vector<std::size_t> singles;
};

// Group batch-eligible points by rho — one DPM policy and one idle
// plan per task; the batch engine requires nothing more, and merging
// across the capacity axis happens inside run_batch — then cut each
// group into chunks of at most kBatchMax, preserving grid order.
BatchPlan plan_batches(const std::vector<SweepPoint>& points) {
  BatchPlan plan;
  std::vector<std::pair<std::uint64_t, std::vector<std::size_t>>> groups;
  for (std::size_t k = 0; k < points.size(); ++k) {
    if (!batch_point_eligible(points[k])) {
      plan.singles.push_back(k);
      continue;
    }
    const std::uint64_t rho_bits = std::bit_cast<std::uint64_t>(points[k].rho);
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const auto& group) { return group.first == rho_bits; });
    if (it == groups.end()) {
      groups.push_back({rho_bits, {}});
      it = std::prev(groups.end());
    }
    it->second.push_back(k);
  }
  for (auto& [rho_bits, members] : groups) {
    // Merge sets only form within one FC policy, so a chunk cut inside
    // a policy's capacity run strands part of the cascade in a second,
    // shorter-lived set. Pack whole policy runs (contiguous in grid
    // order) into chunks, cutting a run only when it alone exceeds
    // kBatchMax. Deterministic and jobs-independent, like the plain
    // fixed-stride cut it replaces.
    std::vector<std::vector<std::size_t>> runs;
    for (const std::size_t k : members) {
      if (runs.empty() ||
          points[runs.back().back()].policy != points[k].policy) {
        runs.emplace_back();
      }
      runs.back().push_back(k);
    }
    std::vector<std::size_t> chunk;
    const auto flush = [&] {
      if (chunk.size() == 1) {
        plan.singles.push_back(chunk.front());
      } else if (!chunk.empty()) {
        plan.chunks.push_back(std::move(chunk));
      }
      chunk.clear();
    };
    for (const std::vector<std::size_t>& run : runs) {
      for (std::size_t at = 0; at < run.size(); at += kBatchMax) {
        const std::size_t count = std::min(kBatchMax, run.size() - at);
        if (chunk.size() + count > kBatchMax) {
          flush();
        }
        chunk.insert(chunk.end(), run.begin() + at,
                     run.begin() + at + count);
      }
    }
    flush();
  }
  return plan;
}

// Run one multi-point task: every lane shares the compiled trace, one
// DPM policy (rho is constant within a task) and one slot loop. A lane
// whose hybrid turns out batch-ineligible runs alone through run_point
// instead, and a fail-fast audit violation self-heals exactly like
// run_point's hot path: replay that point on the reference engine and
// record the fallback. Writes each point's result at its grid index.
void run_batch_chunk(const sim::ExperimentConfig& base,
                     const std::vector<SweepPoint>& points,
                     const std::vector<std::size_t>& chunk,
                     std::size_t storm_faults,
                     const hot::CompiledTrace& compiled,
                     core::SlotSolveCache* cache,
                     std::vector<SweepPointResult>& results,
                     batch::BatchStats& stats) {
  sim::ExperimentConfig config = base;
  config.rho = points[chunk.front()].rho;
  config.simulation.observer = nullptr;

  dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);

  sim::SimulationOptions options = config.simulation;
  options.engine = sim::Engine::Batched;
  // The engine clamps per lane: min(shared initial, lane capacity)
  // reproduces run_point's per-point initial_storage exactly.
  options.initial_storage = base.initial_storage;

  std::vector<std::unique_ptr<core::FcOutputPolicy>> fcs;
  std::vector<std::unique_ptr<audit::Auditor>> auditors;
  std::vector<power::HybridPowerSource> hybrids;
  std::vector<batch::BatchLaneSpec> lanes;
  std::vector<std::size_t> lane_point;
  // Lane specs hold pointers into these vectors: no reallocation.
  fcs.reserve(chunk.size());
  auditors.reserve(chunk.size());
  hybrids.reserve(chunk.size());
  lanes.reserve(chunk.size());
  lane_point.reserve(chunk.size());

  for (const std::size_t k : chunk) {
    const SweepPoint& point = points[k];
    config.storage_capacity = point.capacity;
    config.initial_storage = min(base.initial_storage, point.capacity);
    power::HybridPowerSource hybrid = sim::make_hybrid(config);
    if (!batch::lane_eligible(hybrid, options)) {
      results[k] = run_point(base, point, storm_faults, cache, nullptr, 0,
                             &compiled);
      continue;
    }
    hybrids.push_back(std::move(hybrid));
    fcs.push_back(sim::make_fc_policy(point.policy, config));
    batch::BatchLaneSpec lane;
    lane.fc = fcs.back().get();
    lane.hybrid = &hybrids.back();
    if (config.audit.enabled()) {
      audit::AuditSpec spec = config.audit;
      // Tamper is a per-point drill; batched sweeps disarm it (the
      // scheduler keeps tampered sweeps on the per-point path anyway).
      spec.tamper_slot = audit::npos;
      auditors.push_back(
          std::make_unique<audit::Auditor>(spec, /*fail_fast=*/true));
      lane.auditor = auditors.back().get();
    }
    lanes.push_back(lane);
    lane_point.push_back(k);
  }
  if (lanes.empty()) {
    return;
  }

  std::vector<batch::LaneOutcome> outcomes =
      batch::run_batch(compiled, dpm_policy, lanes, options, cache, &stats);

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const std::size_t k = lane_point[i];
    batch::LaneOutcome& outcome = outcomes[i];
    if (outcome.end == batch::LaneOutcome::End::Completed) {
      results[k].point = points[k];
      results[k].result = std::move(outcome.result);
      results[k].ran_batched = true;
      continue;
    }
    // AuditFailed (budgets are never set here): heal on the reference
    // engine from fresh state, keeping the failed lane's tally.
    sim::ExperimentConfig ref = base;
    ref.simulation.engine = sim::Engine::Reference;
    SweepPointResult healed = run_point(ref, points[k], storm_faults, cache);
    const audit::AuditStats failed =
        outcome.result.audit.value_or(audit::AuditStats{});
    if (!healed.result.audit.has_value()) {
      healed.result.audit.emplace();
      healed.result.audit->mode = static_cast<int>(base.audit.mode);
    }
    audit::record_engine_fallback(*healed.result.audit, failed);
    results[k] = std::move(healed);
  }
}

}  // namespace

SweepResult run_sweep(const sim::ExperimentConfig& base,
                      const SweepGrid& grid, const SweepOptions& options) {
  const std::vector<SweepPoint> points = grid.points(base);

  SweepResult out;
  out.points.resize(points.size());
  out.stats.points = points.size();

  const std::uint64_t hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;

  // Compile the trace once, up front, and share it read-only across all
  // workers (CompiledTrace is immutable after construction).
  std::optional<hot::CompiledTrace> compiled;
  if (base.simulation.engine == sim::Engine::Hot ||
      base.simulation.engine == sim::Engine::Batched) {
    compiled.emplace(base.trace, base.device);
  }
  const hot::CompiledTrace* shared =
      compiled.has_value() ? &*compiled : nullptr;

  // Batched sweeps fan multi-point tasks instead of single points. The
  // plan depends on the grid alone — never the job count — so results
  // stay bit-identical across --jobs. Base configs the batch loop does
  // not model (cap governors, strict/tampered audits, multi-stack
  // sources) keep the per-point path, where batch::simulate degrades
  // per point.
  const bool batched_sweep =
      base.simulation.engine == sim::Engine::Batched && !base.cap.enabled &&
      base.audit.mode != audit::Mode::Strict &&
      base.audit.tamper_slot == audit::npos && !base.stacks.enabled;
  BatchPlan plan;
  if (batched_sweep) {
    plan = plan_batches(points);
  } else {
    plan.singles.resize(points.size());
    for (std::size_t k = 0; k < points.size(); ++k) {
      plan.singles[k] = k;
    }
  }
  std::vector<batch::BatchStats> chunk_stats(plan.chunks.size());

  const auto started = std::chrono::steady_clock::now();
  {
    WorkerPool pool(options.jobs);
    out.stats.jobs = pool.thread_count();
    telemetry::SweepTelemetry* tel = options.telemetry;

    // Task t is chunk t while t < chunks.size(), else single
    // plan.singles[t - chunks.size()].
    const std::size_t tasks = plan.chunks.size() + plan.singles.size();

    const auto run_single = [&](std::size_t k) {
      out.points[k] = run_point(base, points[k], grid.storm_faults,
                                options.cache, nullptr, 0, shared);
    };
    // Per-point shard accounting shared by the single-point task body
    // and the batched chunk body.
    const auto account_point = [&](telemetry::WorkerShard& shard,
                                   const SweepPointResult& done,
                                   double wall_us) {
      shard.points_done.fetch_add(1, std::memory_order_relaxed);
      shard.slots.fetch_add(done.result.slots, std::memory_order_relaxed);
      if (done.ran_batched) {
        shard.batched_dispatches.fetch_add(1, std::memory_order_relaxed);
      } else if (done.ran_hot) {
        shard.hot_dispatches.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.reference_dispatches.fetch_add(1, std::memory_order_relaxed);
      }
      if (done.result.cap.has_value()) {
        shard.capped_slots.fetch_add(done.result.cap->slots_capped,
                                     std::memory_order_relaxed);
      }
      if (done.result.audit.has_value()) {
        const audit::AuditStats& a = *done.result.audit;
        shard.audited_slots.fetch_add(a.slots_audited,
                                      std::memory_order_relaxed);
        shard.audit_violations.fetch_add(a.violations,
                                         std::memory_order_relaxed);
        shard.engine_fallbacks.fetch_add(a.engine_fallbacks,
                                         std::memory_order_relaxed);
      }
      shard.wall_us.observe(wall_us);
      shard.sim_s.observe(done.result.totals.duration.value());
    };
    const auto run_single_telemetry = [&](std::size_t worker,
                                          std::size_t k) {
      telemetry::WorkerShard& shard = tel->shards().shard(worker);
      // The tap attributes this point's cache traffic to this
      // worker; it adds no caching, so results are unchanged.
      std::optional<SolveCacheTap> tap;
      if (options.cache != nullptr) {
        tap.emplace(*options.cache);
      }
      const std::uint64_t t0 = tel->now_ns();
      out.points[k] = run_point(
          base, points[k], grid.storm_faults,
          tap.has_value() ? static_cast<core::SlotSolveCache*>(&*tap)
                          : nullptr,
          nullptr, 0, shared);
      const std::uint64_t t1 = tel->now_ns();

      const SweepPointResult& done = out.points[k];
      shard.busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
      std::uint64_t point_hits = 0;
      std::uint64_t point_misses = 0;
      if (tap.has_value()) {
        point_hits = tap->hits();
        point_misses = tap->misses();
        shard.cache_hits.fetch_add(point_hits, std::memory_order_relaxed);
        shard.cache_misses.fetch_add(point_misses,
                                     std::memory_order_relaxed);
      }
      account_point(shard, done, static_cast<double>(t1 - t0) * 1e-3);

      if (telemetry::LaneRecorder* lanes = tel->lanes()) {
        telemetry::PointLane lane;
        lane.start_ns = t0;
        lane.end_ns = t1;
        lane.point_index = static_cast<std::uint32_t>(k);
        lane.attempt = 1;
        lane.cache_hits = static_cast<std::uint32_t>(point_hits);
        lane.cache_misses = static_cast<std::uint32_t>(point_misses);
        lane.ok = true;
        lane.hot = done.ran_hot;
        lanes->record(worker, lane);
      }
    };
    const auto run_chunk_telemetry = [&](std::size_t worker,
                                         std::size_t c) {
      const std::vector<std::size_t>& chunk = plan.chunks[c];
      telemetry::WorkerShard& shard = tel->shards().shard(worker);
      std::optional<SolveCacheTap> tap;
      if (options.cache != nullptr) {
        tap.emplace(*options.cache);
      }
      const std::uint64_t t0 = tel->now_ns();
      run_batch_chunk(base, points, chunk, grid.storm_faults, *shared,
                      tap.has_value()
                          ? static_cast<core::SlotSolveCache*>(&*tap)
                          : options.cache,
                      out.points, chunk_stats[c]);
      const std::uint64_t t1 = tel->now_ns();

      shard.busy_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
      std::uint64_t chunk_hits = 0;
      std::uint64_t chunk_misses = 0;
      if (tap.has_value()) {
        chunk_hits = tap->hits();
        chunk_misses = tap->misses();
        shard.cache_hits.fetch_add(chunk_hits, std::memory_order_relaxed);
        shard.cache_misses.fetch_add(chunk_misses,
                                     std::memory_order_relaxed);
      }
      // The slot loop advances all lanes together, so per-point wall
      // time is the chunk's share — the histogram keeps per-point
      // semantics without pretending to per-lane timers.
      const double per_point_us = static_cast<double>(t1 - t0) * 1e-3 /
                                  static_cast<double>(chunk.size());
      for (const std::size_t k : chunk) {
        account_point(shard, out.points[k], per_point_us);
      }

      if (telemetry::LaneRecorder* lanes = tel->lanes()) {
        // One lane per chunk: the span covers every point it carried.
        telemetry::PointLane lane;
        lane.start_ns = t0;
        lane.end_ns = t1;
        lane.point_index = static_cast<std::uint32_t>(chunk.front());
        lane.attempt = 1;
        lane.cache_hits = static_cast<std::uint32_t>(chunk_hits);
        lane.cache_misses = static_cast<std::uint32_t>(chunk_misses);
        lane.ok = true;
        lane.hot = false;
        lanes->record(worker, lane);
      }
    };

    if (tel == nullptr) {
      pool.run_indexed(tasks, [&](std::size_t t) {
        if (t < plan.chunks.size()) {
          run_batch_chunk(base, points, plan.chunks[t], grid.storm_faults,
                          *shared, options.cache, out.points,
                          chunk_stats[t]);
        } else {
          run_single(plan.singles[t - plan.chunks.size()]);
        }
      });
    } else {
      pool.run_indexed_on_workers(
          tasks, [&](std::size_t worker, std::size_t t) {
            if (t < plan.chunks.size()) {
              run_chunk_telemetry(worker, t);
            } else {
              run_single_telemetry(worker,
                                   plan.singles[t - plan.chunks.size()]);
            }
          });
    }
  }

  for (const batch::BatchStats& s : chunk_stats) {
    out.stats.batch_merge_sets += s.merge_sets;
    out.stats.batch_merged_lane_slots += s.merged_lane_slots;
    out.stats.batch_splits += s.splits;
    out.stats.batch_journal_hits += s.journal_hits;
  }
  for (const SweepPointResult& r : out.points) {
    if (r.ran_batched) {
      ++out.stats.points_batched;
    }
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  if (options.cache != nullptr) {
    out.stats.cache_hits = options.cache->hits() - hits_before;
    out.stats.cache_misses = options.cache->misses() - misses_before;
  }

  if (options.observer != nullptr) {
    publish_sweep_stats(*options.observer, out.stats, options.cache);
  }
  return out;
}

void publish_sweep_stats(obs::Context& obs, const SweepRunStats& stats,
                         const SharedSolveCache* cache) {
  if (!obs.active()) {
    return;
  }
  obs.gauge("par.sweep.points", static_cast<double>(stats.points));
  obs.gauge("par.sweep.jobs", static_cast<double>(stats.jobs));
  obs.gauge("par.sweep.wall_s", stats.wall_seconds);
  obs.gauge("par.sweep.points_per_s", stats.points_per_second());
  if (stats.points_batched > 0) {
    obs.gauge("par.sweep.points_batched",
              static_cast<double>(stats.points_batched));
    obs.gauge("par.sweep.batch_merge_sets",
              static_cast<double>(stats.batch_merge_sets));
    obs.gauge("par.sweep.batch_merged_lane_slots",
              static_cast<double>(stats.batch_merged_lane_slots));
    obs.gauge("par.sweep.batch_splits",
              static_cast<double>(stats.batch_splits));
    obs.gauge("par.sweep.batch_journal_hits",
              static_cast<double>(stats.batch_journal_hits));
  }
  if (cache != nullptr) {
    cache->publish(obs);
  }
}

}  // namespace fcdpm::par
