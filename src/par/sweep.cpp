#include "par/sweep.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "hot/engine.hpp"
#include "par/worker_pool.hpp"

namespace fcdpm::par {

std::vector<SweepPoint> SweepGrid::points(
    const sim::ExperimentConfig& base) const {
  const std::vector<sim::PolicyKind> kinds =
      policies.empty()
          ? std::vector<sim::PolicyKind>{sim::PolicyKind::Conv,
                                         sim::PolicyKind::Asap,
                                         sim::PolicyKind::FcDpm}
          : policies;
  const std::vector<double> rho_values =
      rhos.empty() ? std::vector<double>{base.rho} : rhos;
  const std::vector<Coulomb> capacity_values =
      capacities.empty() ? std::vector<Coulomb>{base.storage_capacity}
                         : capacities;
  const std::vector<std::uint64_t> seeds =
      storm_seeds.empty() ? std::vector<std::uint64_t>{0} : storm_seeds;

  std::vector<SweepPoint> grid;
  grid.reserve(kinds.size() * rho_values.size() * capacity_values.size() *
               seeds.size());
  for (const sim::PolicyKind kind : kinds) {
    for (const double rho : rho_values) {
      for (const Coulomb capacity : capacity_values) {
        for (const std::uint64_t seed : seeds) {
          grid.push_back({kind, rho, capacity, seed});
        }
      }
    }
  }
  return grid;
}

SweepPointResult run_point(const sim::ExperimentConfig& base,
                           const SweepPoint& point,
                           std::size_t storm_faults,
                           SharedSolveCache* cache,
                           sim::CancellationToken* cancel,
                           std::size_t slot_budget,
                           const hot::CompiledTrace* compiled) {
  sim::ExperimentConfig config = base;
  config.rho = point.rho;
  config.storage_capacity = point.capacity;
  // A shrunk buffer cannot hold the configured reserve.
  config.initial_storage = min(config.initial_storage, point.capacity);
  // Workers own everything they mutate; the run-level observer is
  // published to after the batch, never attached to a worker's run.
  config.simulation.observer = nullptr;

  dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);
  const std::unique_ptr<core::FcOutputPolicy> fc_policy =
      sim::make_fc_policy(point.policy, config);
  power::HybridPowerSource hybrid = sim::make_hybrid(config);
  if (cache != nullptr) {
    fc_policy->set_solve_cache(cache);
  }

  sim::SimulationOptions options = config.simulation;
  options.initial_storage = config.initial_storage;
  options.cancel = cancel;
  options.slot_budget = slot_budget;
  std::optional<fault::FaultInjector> injector;
  if (point.storm_seed != 0) {
    injector.emplace(fault::FaultSchedule::random_storm(
        point.storm_seed, storm_faults,
        config.trace.stats().total_duration()));
    options.faults = &*injector;
  }

  SweepPointResult out;
  out.point = point;
  if (options.engine == sim::Engine::Hot) {
    // The grid varies rho/capacity/seed but never the trace or device,
    // so one compiled trace serves every point. A direct caller without
    // one (the resilience retry path) compiles its own.
    std::optional<hot::CompiledTrace> local;
    if (compiled == nullptr) {
      local.emplace(config.trace, config.device);
      compiled = &*local;
    }
    out.result =
        hot::simulate(*compiled, dpm_policy, *fc_policy, hybrid, options);
  } else {
    out.result =
        sim::simulate(config.trace, dpm_policy, *fc_policy, hybrid, options);
  }
  return out;
}

SweepResult run_sweep(const sim::ExperimentConfig& base,
                      const SweepGrid& grid, const SweepOptions& options) {
  const std::vector<SweepPoint> points = grid.points(base);

  SweepResult out;
  out.points.resize(points.size());
  out.stats.points = points.size();

  const std::uint64_t hits_before =
      options.cache != nullptr ? options.cache->hits() : 0;
  const std::uint64_t misses_before =
      options.cache != nullptr ? options.cache->misses() : 0;

  // Compile the trace once, up front, and share it read-only across all
  // workers (CompiledTrace is immutable after construction).
  std::optional<hot::CompiledTrace> compiled;
  if (base.simulation.engine == sim::Engine::Hot) {
    compiled.emplace(base.trace, base.device);
  }
  const hot::CompiledTrace* shared =
      compiled.has_value() ? &*compiled : nullptr;

  const auto started = std::chrono::steady_clock::now();
  {
    WorkerPool pool(options.jobs);
    out.stats.jobs = pool.thread_count();
    pool.run_indexed(points.size(), [&](std::size_t k) {
      out.points[k] = run_point(base, points[k], grid.storm_faults,
                                options.cache, nullptr, 0, shared);
    });
  }
  out.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  if (options.cache != nullptr) {
    out.stats.cache_hits = options.cache->hits() - hits_before;
    out.stats.cache_misses = options.cache->misses() - misses_before;
  }

  if (options.observer != nullptr && options.observer->active()) {
    obs::Context& obs = *options.observer;
    obs.gauge("par.sweep.points", static_cast<double>(out.stats.points));
    obs.gauge("par.sweep.jobs", static_cast<double>(out.stats.jobs));
    obs.gauge("par.sweep.wall_s", out.stats.wall_seconds);
    obs.gauge("par.sweep.points_per_s", out.stats.points_per_second());
    if (options.cache != nullptr) {
      options.cache->publish(obs);
    }
  }
  return out;
}

}  // namespace fcdpm::par
