// Bounded multi-producer / multi-consumer work queue: the backpressure
// primitive under the worker pool. push() blocks while the queue is
// full, pop() blocks while it is empty, close() wakes everyone — pops
// drain the remaining items and then return nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/contracts.hpp"

namespace fcdpm::par {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    FCDPM_EXPECTS(capacity >= 1, "queue capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false when the queue was closed before
  /// the item could be taken (the item is dropped).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns nullopt once the queue is closed and
  /// drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    std::optional<T> item{std::move(items_.front())};
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fcdpm::par
