// Explore the physical fuel-cell system model: sample the stack's V-I-P
// curve (Figure 2), both FC-system efficiency configurations (Figure 3)
// and the linear characterization eta_s = alpha - beta*IF the optimizer
// consumes (Eq. (2)). Optionally writes the curves as CSV for plotting.
//
// Usage: efficiency_explorer [output_dir]
#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/text.hpp"
#include "power/fc_system.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;

  const fc::FuelCellStack stack = fc::FuelCellStack::bcs_20w();
  const fc::StackPoint mpp = stack.maximum_power_point();

  std::printf("BCS 20 W stack model (20 cells):\n");
  std::printf("  open-circuit voltage : %.2f V (paper: 18.2 V)\n",
              stack.open_circuit_voltage().value());
  std::printf("  maximum power        : %.2f W at %.2f A\n",
              mpp.power.value(), mpp.current.value());

  std::printf("\nStack V-I-P curve (Figure 2):\n");
  std::printf("  %8s %10s %9s\n", "Ifc (A)", "Vfc (V)", "P (W)");
  for (const fc::StackPoint& p :
       stack.sample_curve(Ampere(0.0), Ampere(1.6), 9)) {
    std::printf("  %8.2f %10.2f %9.2f\n", p.current.value(),
                p.voltage.value(), p.power.value());
  }

  const power::FcSystem paper = power::FcSystem::paper_system();
  const power::FcSystem legacy = power::FcSystem::legacy_system();

  std::printf(
      "\nSystem efficiency vs output current (Figure 3):\n"
      "  %8s %26s %26s\n",
      "IF (A)", "(b) PWM-PFM + var. fan", "(c) PWM + on/off fan");
  for (double i = 0.1; i <= 1.2001; i += 0.1) {
    std::printf("  %8.1f %25.1f%% %25.1f%%\n", i,
                100.0 * paper.system_efficiency(Ampere(i)),
                100.0 * legacy.system_efficiency(Ampere(i)));
  }

  const power::LinearEfficiencyModel fit =
      paper.fit_linear_efficiency(Ampere(0.1), Ampere(1.2));
  std::printf(
      "\nLinear characterization over the load-following range:\n"
      "  eta_s ~= %.3f - %.3f * IF   (paper: 0.45 - 0.13 * IF)\n"
      "  -> Ifc = %.2f * IF / eta_s(IF)\n",
      fit.alpha(), fit.beta(), fit.k());

  if (argc >= 2) {
    const std::string dir = argv[1];
    CsvDocument doc;
    doc.header = {"if_a", "eta_paper", "eta_legacy", "eta_fit"};
    for (const auto& s :
         paper.sample_efficiency(Ampere(0.1), Ampere(1.2), 45)) {
      doc.rows.push_back(
          {format_fixed(s.output_current.value(), 4),
           format_fixed(s.system_efficiency, 5),
           format_fixed(legacy.system_efficiency(s.output_current), 5),
           format_fixed(fit.efficiency(s.output_current), 5)});
    }
    const std::string path = dir + "/fig3_efficiency.csv";
    write_csv_file(path, doc);
    std::printf("\nWrote %s\n", path.c_str());
  }
  return 0;
}
