// Explore DVS on the fuel-cell hybrid: for a periodic task, print every
// level's schedule, device energy and fuel, and what each strategy
// picks — the prior-work ([10]/[11]) layer under this paper's DPM.
//
// Usage: dvs_explorer [work_s [period_s]]
#include <cstdio>
#include <cstdlib>

#include "common/contracts.hpp"
#include "dvs/planner.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;
  using dvs::DvsEvaluation;
  using dvs::DvsStrategy;

  dvs::PeriodicTask task{1.0, Seconds(3.0)};
  if (argc >= 2) {
    task.work_full_speed_s = std::atof(argv[1]);
  }
  if (argc >= 3) {
    task.period = Seconds(std::atof(argv[2]));
  }

  const dvs::DvsPlanner planner(
      dvs::DvsProcessor::typical_embedded(),
      power::LinearEfficiencyModel::paper_default(), 0.90);
  const dvs::DvsProcessor& cpu = planner.processor();

  std::printf(
      "Task: %.2f s of full-speed work every %.2f s (utilization "
      "%.0f%%)\n\n",
      task.work_full_speed_s, task.period.value(),
      100.0 * task.utilization());

  std::printf("%5s %6s %9s %9s %11s %10s %12s %13s\n", "level", "speed",
              "P_run (W)", "I_run (A)", "run (s)", "energy (J)",
              "fuel (A-s)", "sustainable?");
  for (std::size_t k = 0; k < cpu.level_count(); ++k) {
    if (cpu.time_for(task.work_full_speed_s, k) > task.period) {
      std::printf("%5zu %6.2f %9.2f %9.3f %11s\n", k, cpu.level(k).speed,
                  cpu.level(k).run_power.value(),
                  cpu.run_current(k).value(), "too slow");
      continue;
    }
    const DvsEvaluation e = planner.evaluate(task, k);
    std::printf("%5zu %6.2f %9.2f %9.3f %11.2f %10.2f %12.3f %13s\n", k,
                cpu.level(k).speed, cpu.level(k).run_power.value(),
                cpu.run_current(k).value(), e.run_time.value(),
                e.device_energy.value(), e.fuel.value(),
                e.sustainable ? "yes" : "NO");
  }

  std::printf("\nStrategy choices:\n");
  for (const DvsStrategy strategy :
       {DvsStrategy::RaceToIdle, DvsStrategy::MinDeviceEnergy,
        DvsStrategy::MinFuel}) {
    try {
      const DvsEvaluation e = planner.plan(task, strategy);
      std::printf("  %-18s -> level %zu (%.2f A-s fuel per period)\n",
                  dvs::to_string(strategy), e.level, e.fuel.value());
    } catch (const PreconditionError& error) {
      std::printf("  %-18s -> infeasible: %s\n", dvs::to_string(strategy),
                  error.what());
    }
  }
  return 0;
}
