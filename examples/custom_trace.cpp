// Replay your own load trace through the policies.
//
// Demonstrates the trace CSV format end to end: generates a sample trace
// file when none is given, loads it back, and compares the policies on
// it with a device model supplied inline.
//
// Usage: custom_trace [trace.csv]
//   trace.csv columns: idle_s, active_s, active_w (header required)
#include <cstdio>
#include <string>

#include "sim/experiments.hpp"
#include "workload/camcorder.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;

  std::string path;
  if (argc >= 2) {
    path = argv[1];
  } else {
    // No input: write a demo trace (a one-minute camcorder snippet) and
    // use it — this doubles as format documentation.
    path = "custom_trace_demo.csv";
    wl::CamcorderConfig config;
    config.recording_length = Seconds(60.0);
    wl::save_trace_file(path, wl::generate_camcorder_trace(config));
    std::printf("No trace given; wrote a demo trace to %s\n\n",
                path.c_str());
  }

  const wl::Trace trace = wl::load_trace_file(path);
  const wl::TraceStats stats = trace.stats();
  std::printf("Loaded %s: %zu slots, %.1f s total\n", path.c_str(),
              stats.slots, stats.total_duration().value());
  std::printf("  idle %.1f-%.1f s (mean %.1f), active %.1f-%.1f s, "
              "power %.1f-%.1f W\n\n",
              stats.min_idle.value(), stats.max_idle.value(),
              stats.mean_idle.value(), stats.min_active.value(),
              stats.max_active.value(), stats.min_active_power.value(),
              stats.max_active_power.value());

  // Device model: edit here to match your hardware. The camcorder's
  // RUN/STANDBY/SLEEP abstraction is the default.
  sim::ExperimentConfig config = sim::experiment1_config();
  config.trace = trace;
  config.device = wl::camcorder_device();

  const sim::PolicyComparison comparison = sim::compare_policies(config);
  std::printf("%-10s %10s %9s\n", "policy", "fuel A-s", "vs Conv");
  for (const sim::SimulationResult* r :
       {&comparison.conv, &comparison.asap, &comparison.fcdpm}) {
    std::printf("%-10s %10.2f %8.1f%%\n", r->fc_policy.c_str(),
                r->fuel().value(),
                100.0 * sim::normalized_fuel(*r, comparison.conv));
  }
  return 0;
}
