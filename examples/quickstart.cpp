// Quickstart: the paper's Section 3.2 example in ~40 lines.
//
// One task slot (20 s idle @ 0.2 A, 10 s active @ 1.2 A) powered by a
// fuel-cell hybrid. Compare three FC output settings and print their
// fuel consumption, then let the slot optimizer find the best setting
// itself.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/slot_optimizer.hpp"
#include "power/hybrid.hpp"

int main() {
  using namespace fcdpm;

  const power::LinearEfficiencyModel model =
      power::LinearEfficiencyModel::paper_default();

  // The load profile of the motivational example.
  const Seconds idle_time(20.0);
  const Seconds active_time(10.0);
  const Ampere idle_load(0.2);
  const Ampere active_load(1.2);

  // Run one slot under a given (IF_idle, IF_active) setting and report
  // the fuel burned (in stack A-s, the paper's unit).
  const auto fuel_for = [&](Ampere if_idle, Ampere if_active) {
    power::HybridPowerSource hybrid(
        std::make_unique<power::LinearFuelSource>(model),
        std::make_unique<power::SuperCapacitor>(Coulomb(200.0), 1.0));
    hybrid.reset(Coulomb(0.0));
    (void)hybrid.run_segment(idle_time, idle_load, if_idle);
    (void)hybrid.run_segment(active_time, active_load, if_active);
    return hybrid.totals().fuel.value();
  };

  std::printf("Fuel for one 30 s task slot (lower is better):\n");
  std::printf("  (a) Conv   - FC pinned at 1.2 A     : %6.2f A-s\n",
              fuel_for(Ampere(1.2), Ampere(1.2)));
  std::printf("  (b) ASAP   - FC follows the load    : %6.2f A-s\n",
              fuel_for(idle_load, active_load));

  // (c) Let the optimizer choose: it lands on the charge-weighted
  // average load (Eq. (11)) because the fuel curve is convex.
  const core::SlotOptimizer optimizer(model);
  const core::SlotSetting best = optimizer.solve(
      {idle_time, idle_load, active_time, active_load},
      {Coulomb(0.0), Coulomb(0.0), Coulomb(200.0)});
  std::printf("  (c) FC-DPM - optimizer's flat %.3f A: %6.2f A-s\n",
              best.if_idle.value(),
              fuel_for(best.if_idle, best.if_active));

  std::printf(
      "\nThe flat setting matches the paper's 13.45 A-s: 15.9%% less fuel\n"
      "than load following, because eta_s falls with output current and\n"
      "the storage buffer absorbs the difference.\n");
  return 0;
}
