// Regenerate the reproduction summary (REPORT.md) from live simulation
// runs — documentation that cannot drift from the code.
//
// Usage: generate_report [output.md]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "report/experiment_report.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;

  std::printf("Running Experiment 1 (camcorder)...\n");
  const sim::PolicyComparison exp1 =
      sim::compare_policies(sim::experiment1_config());
  std::printf("Running Experiment 2 (synthetic)...\n");
  const sim::PolicyComparison exp2 =
      sim::compare_policies(sim::experiment2_config());

  const std::string markdown = report::reproduction_report(exp1, exp2);

  if (argc >= 2) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    out << markdown;
    std::printf("Wrote %s\n", argv[1]);
  } else {
    std::cout << '\n' << markdown;
  }
  return 0;
}
