// fcdpm_cli — command-line front end to the library.
//
//   fcdpm_cli gen      --kind camcorder|synthetic --out trace.csv [--seed N]
//   fcdpm_cli analyze  --trace trace.csv
//   fcdpm_cli run      --policy conv|asap|fcdpm|oracle
//                      [--trace trace.csv | --kind camcorder|synthetic]
//                      [--rho R] [--capacity A-s] [--initial A-s]
//   fcdpm_cli compare  [--trace ... | --kind ...] (all policies, one table)
//   fcdpm_cli lifetime --tank A-s [--policy ...] [--kind ...]
//   fcdpm_cli sweep    [--jobs N] [--policies ...] [--rhos ...]
//                      [--capacities ...] [--storm-seeds ...]
//                      [--out BENCH_sweep.json]
//                      [--journal J] [--resume J] [--max-retries N]
//                      [--point-deadline SLOTS] [--watchdog-stall-ms MS]
//   fcdpm_cli bisect   [--policy ...] [--trace ... | --kind ...]
//                      [--perturb-slot K] [--repro-out prefix]
//
// run/compare/lifetime accept --trace-out / --metrics-out /
// --profile-out to capture a Perfetto trace, a metrics dump and a
// wall-clock profile of the run (see docs/ARCHITECTURE.md,
// "Observability"), and --faults <spec|file|storm:SEED[:N]> to inject a
// fault schedule (see "Fault model & graceful degradation"). sweep's
// resilience flags (see "Crash-safe sweeps & failure quarantine")
// engage the journaling/retry/watchdog runner; without them the plain
// deterministic engine runs untouched.
//
// Exit code 0 on success, 1 on CLI errors, 2 on runtime errors. A
// quarantined grid point is *not* a sweep failure: the point is
// reported with its typed error and the exit code stays 0.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "audit/bisect.hpp"
#include "cap/governor.hpp"
#include "common/atomic_file.hpp"
#include "common/text.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "batch/engine.hpp"
#include "batch/lifetime.hpp"
#include "hot/compiled_trace.hpp"
#include "hot/engine.hpp"
#include "hot/lifetime.hpp"
#include "obs/context.hpp"
#include "par/sweep.hpp"
#include "par/worker_pool.hpp"
#include "report/obs_export.hpp"
#include "resilience/resilient_sweep.hpp"
#include "report/sweep_export.hpp"
#include "telemetry/lanes.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/sweep_telemetry.hpp"
#include "report/table.hpp"
#include "sim/experiments.hpp"
#include "sim/lifetime.hpp"
#include "stacks/multi_stack.hpp"
#include "workload/aggregation.hpp"
#include "workload/analysis.hpp"
#include "workload/camcorder.hpp"
#include "workload/merge.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace fcdpm;

/// "--key value" / "--key=value" pairs after the subcommand.
using Options = std::map<std::string, std::string>;

Options parse_options(int argc, char** argv, int start) {
  Options options;
  for (int k = start; k < argc; ++k) {
    const std::string key = argv[k];
    if (key.rfind("--", 0) != 0) {
      throw std::runtime_error("expected --option, got: " + key);
    }
    const std::size_t equals = key.find('=');
    if (equals != std::string::npos) {
      options[key.substr(2, equals - 2)] = key.substr(equals + 1);
      continue;
    }
    if (k + 1 >= argc) {
      throw std::runtime_error("dangling option: " + key);
    }
    options[key.substr(2)] = argv[++k];
  }
  return options;
}

std::string option_or(const Options& options, const std::string& key,
                      const std::string& fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

double number_or(const Options& options, const std::string& key,
                 double fallback) {
  const auto it = options.find(key);
  return it == options.end() ? fallback : std::atof(it->second.c_str());
}

/// Like number_or but strict: a value that does not parse as a number
/// is a CLI error, not silently 0. New flags use this; pre-existing
/// flags keep number_or so their (permissive) behavior is unchanged.
double checked_number_or(const Options& options, const std::string& key,
                         double fallback) {
  const auto it = options.find(key);
  if (it == options.end()) {
    return fallback;
  }
  double value = 0.0;
  if (!parse_double(it->second, value)) {
    throw std::runtime_error("--" + key + ": invalid number '" +
                             it->second + "'");
  }
  return value;
}

/// Strict non-negative integer option (counts, slot indices).
std::size_t checked_index_or(const Options& options, const std::string& key,
                             std::size_t fallback) {
  const auto it = options.find(key);
  if (it == options.end()) {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long value =
      std::strtoull(it->second.c_str(), &end, 10);
  if (it->second.empty() || it->second[0] == '-' ||
      end != it->second.c_str() + it->second.size()) {
    throw std::runtime_error("--" + key + ": invalid count '" +
                             it->second + "'");
  }
  return static_cast<std::size_t>(value);
}

wl::Trace load_workload(const Options& options) {
  const auto trace_it = options.find("trace");
  if (trace_it != options.end()) {
    return wl::load_trace_file(trace_it->second);
  }
  const std::string kind = option_or(options, "kind", "camcorder");
  const auto seed =
      static_cast<std::uint64_t>(number_or(options, "seed", 0.0));
  if (kind == "camcorder") {
    wl::CamcorderConfig config;
    if (seed != 0) {
      config.seed = seed;
    }
    return wl::generate_camcorder_trace(config);
  }
  if (kind == "synthetic") {
    wl::SyntheticConfig config;
    if (seed != 0) {
      config.seed = seed;
    }
    return wl::generate_synthetic_trace(config);
  }
  throw std::runtime_error("unknown workload kind: " + kind);
}

sim::ExperimentConfig build_config(const Options& options) {
  const std::string kind = option_or(options, "kind", "camcorder");
  sim::ExperimentConfig config = (kind == "synthetic")
                                     ? sim::experiment2_config()
                                     : sim::experiment1_config();
  config.trace = load_workload(options);
  config.rho = number_or(options, "rho", config.rho);
  config.sigma = number_or(options, "sigma", config.sigma);
  config.storage_capacity = Coulomb(
      number_or(options, "capacity", config.storage_capacity.value()));
  config.initial_storage = Coulomb(
      number_or(options, "initial", config.initial_storage.value()));
  config.simulation.initial_storage = config.initial_storage;
  const std::string engine = option_or(options, "engine", "reference");
  if (engine == "hot") {
    config.simulation.engine = sim::Engine::Hot;
  } else if (engine == "batched") {
    config.simulation.engine = sim::Engine::Batched;
  } else if (engine != "reference") {
    throw std::runtime_error("unknown engine: " + engine +
                             " (use reference|hot|batched)");
  }
  const std::string cap = option_or(options, "cap", "off");
  if (cap == "on") {
    config.cap.enabled = true;
  } else if (cap != "off") {
    throw std::runtime_error("unknown --cap value: " + cap +
                             " (use on|off)");
  }
  config.cap.table_csv = option_or(options, "cap-table", "");
  config.cap.hysteresis_slots = static_cast<std::size_t>(number_or(
      options, "cap-hysteresis",
      static_cast<double>(config.cap.hysteresis_slots)));
  config.cap.storage_draw_fraction = checked_number_or(
      options, "cap-draw-fraction", config.cap.storage_draw_fraction);
  if (config.cap.storage_draw_fraction <= 0.0 ||
      config.cap.storage_draw_fraction > 1.0) {
    throw std::runtime_error(
        "--cap-draw-fraction: '" +
        option_or(options, "cap-draw-fraction", "") +
        "' out of range (need a fraction in (0, 1])");
  }
  // Runtime invariant auditing (opt-in; results stay bit-identical).
  const std::string audit_mode = option_or(options, "audit", "off");
  if (!audit::parse_mode(audit_mode, config.audit.mode)) {
    throw std::runtime_error("unknown --audit value: '" + audit_mode +
                             "' (use off|sample|strict)");
  }
  config.audit.sample_period = checked_index_or(
      options, "audit-sample-period", config.audit.sample_period);
  if (config.audit.sample_period == 0) {
    throw std::runtime_error(
        "--audit-sample-period: must be a positive slot count");
  }
  config.audit.tamper_slot = checked_index_or(
      options, "audit-tamper-slot", config.audit.tamper_slot);
  // The batched engine refuses combinations it would otherwise have to
  // silently degrade on, instead of quietly running something else.
  if (config.simulation.engine == sim::Engine::Batched) {
    if (options.find("faults") != options.end()) {
      throw std::runtime_error(
          "--engine batched: incompatible with --faults (fault injection "
          "is not modelled by the batch loop; use --engine hot or "
          "--engine reference)");
    }
    if (config.audit.mode == audit::Mode::Strict) {
      throw std::runtime_error(
          "--engine batched: incompatible with --audit strict (strict "
          "violations must propagate, but batched lanes self-heal onto "
          "the reference engine; use --audit sample or --engine "
          "reference)");
    }
  }
  // Multi-stack source: --stacks N (>= 1) enables it; sweeps may pass a
  // comma list here, in which case atof's first value seeds the base
  // config and the grid axis overrides every point.
  const auto stack_count =
      static_cast<std::size_t>(number_or(options, "stacks", 0.0));
  config.stacks.config_csv = option_or(options, "stacks-config", "");
  if (stack_count > 0 || !config.stacks.config_csv.empty()) {
    config.stacks.enabled = true;
    config.stacks.count = stack_count > 0 ? stack_count : 1;
  }
  const std::string distribution = option_or(options, "distribution", "");
  if (!distribution.empty()) {
    config.stacks.distribution = stacks::parse_distribution(distribution);
  }
  config.stacks.charge_fade_per_as = number_or(
      options, "stack-charge-fade", config.stacks.charge_fade_per_as);
  config.stacks.cycle_fade =
      number_or(options, "stack-cycle-fade", config.stacks.cycle_fade);
  return config;
}

/// sim::run_policy with the engine honoured: `--engine hot` compiles
/// the trace and runs hot::simulate (bit-identical to the reference;
/// ineligible configurations fall back inside hot::simulate), and
/// `--engine batched` runs batch::simulate (a B = 1 batch, same
/// fallback chain). With `--audit` on, the compiled run carries a
/// fail-fast auditor; a violation self-heals by replaying the run on
/// the reference engine (tamper hook cleared — it models a compiled-
/// engine defect) and recording an engine_fallback in the result's
/// AuditStats.
sim::SimulationResult run_policy_with_engine(
    sim::PolicyKind kind, const sim::ExperimentConfig& config) {
  const bool batched = config.simulation.engine == sim::Engine::Batched;
  if (config.simulation.engine != sim::Engine::Hot && !batched) {
    return sim::run_policy(kind, config);
  }
  std::optional<audit::AuditStats> failed_stats;
  const auto run_hot = [&]() {
    dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);
    const std::unique_ptr<core::FcOutputPolicy> fc_policy =
        sim::make_fc_policy(kind, config);
    power::HybridPowerSource hybrid = sim::make_hybrid(config);
    sim::SimulationOptions sim_options = config.simulation;
    sim_options.initial_storage = config.initial_storage;
    std::optional<cap::Governor> governor;
    if (config.cap.enabled && sim_options.governor == nullptr) {
      governor.emplace(cap::make_governor(config.cap, config.efficiency));
      sim_options.governor = &*governor;
    }
    std::optional<audit::Auditor> auditor;
    if (config.audit.enabled() && sim_options.auditor == nullptr) {
      auditor.emplace(config.audit, /*fail_fast=*/true);
      sim_options.auditor = &*auditor;
    }
    const hot::CompiledTrace compiled(config.trace, config.device);
    try {
      if (batched) {
        return batch::simulate(compiled, dpm_policy, *fc_policy, hybrid,
                               sim_options);
      }
      return hot::simulate(compiled, dpm_policy, *fc_policy, hybrid,
                           sim_options);
    } catch (const audit::AuditError&) {
      if (auditor.has_value()) {
        failed_stats = auditor->stats();
      }
      throw;
    }
  };
  try {
    return run_hot();
  } catch (const audit::AuditError&) {
    // Self-heal: replay on the reference engine. The simulators reset
    // any attached fault injector at run start, so the shared pointers
    // in config.simulation replay cleanly.
    sim::ExperimentConfig reference = config;
    reference.simulation.engine = sim::Engine::Reference;
    reference.audit.tamper_slot = audit::npos;
    sim::SimulationResult result = sim::run_policy(kind, reference);
    if (!result.audit.has_value()) {
      result.audit.emplace();
      result.audit->mode = static_cast<int>(config.audit.mode);
    }
    audit::record_engine_fallback(*result.audit,
                                  failed_stats.value_or(audit::AuditStats{}));
    return result;
  }
}

/// Observability wiring behind --trace-out / --metrics-out /
/// --profile-out: owns the sink, registry and profiler for one command
/// and writes the requested files when the command finishes. With none
/// of the flags given, context() is nullptr and the simulation runs the
/// untouched fast path.
class ObsSession {
 public:
  explicit ObsSession(const Options& options)
      : trace_path_(option_or(options, "trace-out", "")),
        metrics_path_(option_or(options, "metrics-out", "")),
        profile_path_(option_or(options, "profile-out", "")) {
    if (!trace_path_.empty()) {
      // Stream into the atomic-write staging sibling; finish() renames
      // it over the destination, so a killed run never leaves a
      // truncated trace behind.
      stream_.open(atomic_temp_path(trace_path_));
      if (!stream_) {
        throw std::runtime_error("cannot create trace file: " + trace_path_);
      }
      const bool jsonl =
          trace_path_.size() >= 6 &&
          trace_path_.compare(trace_path_.size() - 6, 6, ".jsonl") == 0;
      if (jsonl) {
        sink_ = std::make_unique<obs::JsonlTraceSink>(stream_);
      } else {
        sink_ = std::make_unique<obs::ChromeTraceSink>(stream_);
      }
      context_.set_sink(sink_.get());
    }
    if (!metrics_path_.empty()) {
      context_.set_metrics(&metrics_);
    }
    if (!profile_path_.empty()) {
      context_.set_profiler(&profiler_);
    }
  }

  /// nullptr when no observability flag was given.
  [[nodiscard]] obs::Context* context() {
    return enabled() ? &context_ : nullptr;
  }

  /// The attached trace sink (nullptr without --trace-out). Valid until
  /// finish(); the sweep commands drain telemetry lanes into it first.
  [[nodiscard]] obs::TraceSink* sink() { return sink_.get(); }

  /// Rewind the simulated clock and switch tracks; one track per run
  /// keeps sequential runs side by side in the trace viewer.
  void start_run(int track) {
    context_.set_track(track);
    context_.set_now(Seconds(0.0));
  }

  /// Close the sink (Chrome traces need their closing bracket) and
  /// write the metrics / profile files.
  void finish() {
    if (sink_ != nullptr) {
      sink_->flush();
      sink_.reset();
      stream_.close();
      commit_file(atomic_temp_path(trace_path_), trace_path_);
      std::printf("wrote trace to %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      report::write_metrics_file(metrics_path_, metrics_);
      std::printf("wrote metrics to %s\n", metrics_path_.c_str());
    }
    if (!profile_path_.empty()) {
      write_csv_file(profile_path_, report::profile_to_csv(profiler_));
      std::printf("wrote profile to %s\n", profile_path_.c_str());
    }
  }

 private:
  [[nodiscard]] bool enabled() const {
    return !trace_path_.empty() || !metrics_path_.empty() ||
           !profile_path_.empty();
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_path_;
  std::ofstream stream_;
  std::unique_ptr<obs::TraceSink> sink_;
  obs::MetricsRegistry metrics_;
  obs::Profiler profiler_;
  obs::Context context_;
};

/// Sweep telemetry wiring behind --progress / --progress-out /
/// --progress-interval-ms (and lane recording when --trace-out is
/// given). Owns the SweepTelemetry shards, the JSONL progress stream
/// and the background sampler for one sweep; disabled (telemetry() ==
/// nullptr) when none of the flags ask for it, which leaves the sweep
/// hot path byte-for-byte as before.
class TelemetrySession {
 public:
  TelemetrySession(const Options& options, std::size_t jobs,
                   std::size_t total_points, bool record_lanes)
      : progress_path_(option_or(options, "progress-out", "")),
        live_(option_or(options, "progress", "off") == "on"),
        record_lanes_(record_lanes) {
    if (!live_ && progress_path_.empty() && !record_lanes_) {
      return;
    }
    telemetry::TelemetryConfig config;
    config.workers = par::WorkerPool::resolve(jobs);
    config.total_points = total_points;
    config.record_lanes = record_lanes_;
    telemetry_.emplace(config);
    if (!progress_path_.empty()) {
      progress_stream_.open(progress_path_);
      if (!progress_stream_) {
        throw std::runtime_error("cannot create progress file: " +
                                 progress_path_);
      }
    }
    if (live_ || !progress_path_.empty()) {
      auto interval_ms = static_cast<long long>(
          number_or(options, "progress-interval-ms", 200.0));
      if (interval_ms <= 0) {
        interval_ms = 200;
      }
      sampler_.emplace(*telemetry_, std::chrono::milliseconds(interval_ms),
                       [this](const telemetry::SweepSnapshot& snap) {
                         emit(snap);
                       });
    }
  }

  /// nullptr when no telemetry flag was given.
  [[nodiscard]] telemetry::SweepTelemetry* telemetry() {
    return telemetry_.has_value() ? &*telemetry_ : nullptr;
  }

  /// Stop the sampler, take the final authoritative snapshot (its
  /// totals equal the sweep report — the last JSONL line is the whole
  /// run), emit it, drain recorded lanes into the trace sink, and fill
  /// `bench.telemetry`.
  void finish(report::SweepBenchReport& bench, obs::TraceSink* sink) {
    if (!telemetry_.has_value()) {
      return;
    }
    std::uint64_t sampled = 0;
    if (sampler_.has_value()) {
      sampler_->stop();
      sampled = sampler_->emitted();
    }
    const telemetry::SweepSnapshot snap = telemetry_->snapshot();
    emit(snap);
    if (live_) {
      std::fprintf(stderr, "\n");
    }
    if (progress_stream_.is_open()) {
      progress_stream_.flush();
      std::printf("wrote progress stream to %s\n", progress_path_.c_str());
    }
    if (record_lanes_ && sink != nullptr &&
        telemetry_->lanes() != nullptr) {
      telemetry::emit_lanes(*telemetry_->lanes(), telemetry_->total_points(),
                            *sink);
    }

    report::TelemetryReport& t = bench.telemetry;
    t.enabled = true;
    t.snapshots = sampled + 1;
    t.done = snap.done;
    t.retried = snap.retried;
    t.quarantined = snap.quarantined;
    t.cache_hits = snap.cache_hits;
    t.cache_misses = snap.cache_misses;
    t.hot_dispatches = snap.hot_dispatches;
    t.reference_dispatches = snap.reference_dispatches;
    t.batched_dispatches = snap.batched_dispatches;
    t.heartbeats = snap.heartbeats;
    t.slots = snap.slots;
    t.capped_slots = snap.capped_slots;
    t.audited_slots = snap.audited_slots;
    t.audit_violations = snap.audit_violations;
    t.engine_fallbacks = snap.engine_fallbacks;
    t.throughput_points_per_s = snap.throughput_points_per_s;
    t.wall_p50_us = snap.wall_p50_us;
    t.wall_p95_us = snap.wall_p95_us;
    t.wall_p99_us = snap.wall_p99_us;
    t.wall_max_us = snap.wall_max_us;
    t.worker_skew = snap.worker_skew;
    for (const telemetry::WorkerSnapshot& w : snap.workers) {
      report::TelemetryWorkerRow row;
      row.worker = w.worker;
      row.done = w.done;
      row.retried = w.retried;
      row.quarantined = w.quarantined;
      row.cache_hits = w.cache_hits;
      row.cache_misses = w.cache_misses;
      row.hot_dispatches = w.hot_dispatches;
      row.reference_dispatches = w.reference_dispatches;
      row.batched_dispatches = w.batched_dispatches;
      row.heartbeats = w.heartbeats;
      row.slots = w.slots;
      row.capped_slots = w.capped_slots;
      row.audited_slots = w.audited_slots;
      row.audit_violations = w.audit_violations;
      row.engine_fallbacks = w.engine_fallbacks;
      row.busy_seconds = w.busy_seconds;
      t.workers.push_back(row);
    }
  }

 private:
  /// Called from the sampler thread while running and once more from
  /// finish() after stop() — never concurrently.
  void emit(const telemetry::SweepSnapshot& snap) {
    if (progress_stream_.is_open()) {
      progress_stream_ << telemetry::snapshot_to_json(snap) << '\n';
      progress_stream_.flush();
    }
    if (live_) {
      std::fprintf(stderr, "\r%s", telemetry::progress_line(snap).c_str());
      std::fflush(stderr);
    }
  }

  std::string progress_path_;
  bool live_ = false;
  bool record_lanes_ = false;
  std::ofstream progress_stream_;
  std::optional<telemetry::SweepTelemetry> telemetry_;
  std::optional<telemetry::Sampler> sampler_;
};

/// --faults wiring. Three argument forms:
///   spec with '@'        inline schedule, e.g. converter_dropout@120:30
///   storm:SEED[:COUNT]   seeded random storm over the trace duration
///   anything else        CSV schedule file (kind,start_s,duration_s,...)
/// Returns nullptr when --faults was not given.
std::unique_ptr<fault::FaultInjector> make_fault_injector(
    const Options& options, const wl::Trace& trace) {
  const auto it = options.find("faults");
  if (it == options.end()) {
    return nullptr;
  }
  const std::string& value = it->second;
  fault::FaultSchedule schedule;
  if (value.rfind("storm:", 0) == 0) {
    const std::string rest = value.substr(6);
    const std::size_t colon = rest.find(':');
    const auto seed = static_cast<std::uint64_t>(
        std::strtoull(rest.substr(0, colon).c_str(), nullptr, 10));
    const std::size_t count =
        colon == std::string::npos
            ? 12
            : static_cast<std::size_t>(
                  std::atoi(rest.substr(colon + 1).c_str()));
    schedule = fault::FaultSchedule::random_storm(
        seed, count, trace.stats().total_duration());
    std::printf("fault storm (seed %llu): %s\n",
                static_cast<unsigned long long>(seed),
                schedule.to_spec().c_str());
  } else if (value.find('@') != std::string::npos) {
    schedule = fault::FaultSchedule::parse(value);
  } else {
    schedule = fault::FaultSchedule::load_file(value);
  }
  return std::make_unique<fault::FaultInjector>(schedule);
}

void print_robustness(const fault::RobustnessStats& r) {
  std::printf("  robustness: %zu fault windows | %zu dropouts | "
              "%zu brownouts (%.2f A-s lost) | %zu clamped segments\n"
              "              %zu reprojections | %zu fallbacks | "
              "%zu solver failures | degraded %.1f s | recovery %.1f s\n",
              r.activations, r.dropouts, r.brownouts,
              r.brownout_lost.value(), r.fc_clamped_segments,
              r.reprojections, r.fallbacks, r.solver_failures,
              r.degraded_time.value(), r.recovery_time.value());
}

void print_cap(const cap::CapStats& c) {
  std::printf("  power cap : %zu/%zu slots capped | %zu reductions | "
              "%zu restorations | deferred %.1f J (%.1f s) | "
              "%zu budget violations\n",
              c.slots_capped, c.slots_seen, c.level_reductions,
              c.level_restorations, c.energy_deferred.value(),
              c.time_deferred.value(), c.budget_violations);
}

void print_stacks(const stacks::StacksStats& s) {
  std::printf("  stacks    : %zu x %s | startups %zu | max wear %.3g\n",
              s.stacks.size(), stacks::to_string(s.distribution),
              s.total_startups(), s.max_wear());
  for (std::size_t k = 0; k < s.stacks.size(); ++k) {
    const stacks::StackTotals& t = s.stacks[k];
    std::printf("    stack %zu : fuel %9.2f A-s | delivered %9.2f A-s | "
                "startups %zu | wear %.3g\n",
                k, t.fuel_as, t.delivered_as, t.startups, t.wear);
  }
}

void print_audit(const audit::AuditStats& a) {
  std::printf("  audit     : %s | %llu slots + %llu segments audited | "
              "%llu checks | %llu violations | %llu engine fallbacks\n",
              audit::to_string(static_cast<audit::Mode>(a.mode)),
              static_cast<unsigned long long>(a.slots_audited),
              static_cast<unsigned long long>(a.segments_audited),
              static_cast<unsigned long long>(a.checks_run),
              static_cast<unsigned long long>(a.violations),
              static_cast<unsigned long long>(a.engine_fallbacks));
  if (!a.first_violation.empty()) {
    std::printf("    first violation: %s at slot %zu\n",
                a.first_violation.c_str(), a.first_violation_slot);
  }
}

sim::PolicyKind parse_policy(const std::string& name) {
  if (name == "conv") {
    return sim::PolicyKind::Conv;
  }
  if (name == "asap") {
    return sim::PolicyKind::Asap;
  }
  if (name == "fcdpm") {
    return sim::PolicyKind::FcDpm;
  }
  if (name == "oracle") {
    return sim::PolicyKind::Oracle;
  }
  throw std::runtime_error("unknown policy: " + name +
                           " (use conv|asap|fcdpm|oracle)");
}

int cmd_gen(const Options& options) {
  const auto out_it = options.find("out");
  if (out_it == options.end()) {
    throw std::runtime_error("gen requires --out <file>");
  }
  const wl::Trace trace = load_workload(options);
  wl::save_trace_file(out_it->second, trace);
  std::printf("wrote %zu slots (%.1f min) to %s\n", trace.size(),
              trace.stats().total_duration().value() / 60.0,
              out_it->second.c_str());
  return 0;
}

int cmd_analyze(const Options& options) {
  const wl::Trace trace = load_workload(options);
  const wl::TraceStats stats = trace.stats();
  std::printf("trace: %s\n", trace.name().c_str());
  std::printf("  slots          : %zu\n", stats.slots);
  std::printf("  duration       : %.1f s (%.1f min)\n",
              stats.total_duration().value(),
              stats.total_duration().value() / 60.0);
  std::printf("  idle           : %.2f - %.2f s (mean %.2f)\n",
              stats.min_idle.value(), stats.max_idle.value(),
              stats.mean_idle.value());
  std::printf("  active         : %.2f - %.2f s (mean %.2f)\n",
              stats.min_active.value(), stats.max_active.value(),
              stats.mean_active.value());
  std::printf("  active power   : %.2f - %.2f W (mean %.2f)\n",
              stats.min_active_power.value(),
              stats.max_active_power.value(),
              stats.mean_active_power.value());
  std::printf("  duty cycle     : %.1f%%\n",
              100.0 * wl::duty_cycle(trace));
  if (trace.size() > 3) {
    std::printf("  idle lag-1 ac  : %.2f\n",
                wl::autocorrelation(wl::idle_durations(trace), 1));
  }
  std::printf("  avg load (slept idles) : %.3f A on 12 V\n",
              wl::average_load_current(trace, Volt(12.0), Ampere(0.2))
                  .value());
  return 0;
}

void print_result(const sim::SimulationResult& result) {
  std::printf("%-14s fuel %9.2f A-s | avg Ifc %6.3f A | sleeps %zu/%zu | "
              "bled %6.2f | unserved %6.2f\n",
              result.fc_policy.c_str(), result.fuel().value(),
              result.average_fuel_current().value(), result.sleeps,
              result.slots, result.totals.bled.value(),
              result.totals.unserved.value());
}

int cmd_run(const Options& options) {
  sim::ExperimentConfig config = build_config(options);
  const sim::PolicyKind kind =
      parse_policy(option_or(options, "policy", "fcdpm"));
  ObsSession obs(options);
  config.simulation.observer = obs.context();
  const std::unique_ptr<fault::FaultInjector> faults =
      make_fault_injector(options, config.trace);
  config.simulation.faults = faults.get();
  const sim::SimulationResult result = run_policy_with_engine(kind, config);
  print_result(result);
  if (result.robustness.has_value()) {
    print_robustness(*result.robustness);
  }
  if (result.cap.has_value()) {
    print_cap(*result.cap);
  }
  if (result.stacks.has_value()) {
    print_stacks(*result.stacks);
  }
  if (result.audit.has_value()) {
    print_audit(*result.audit);
  }
  obs.finish();
  return 0;
}

int cmd_compare(const Options& options) {
  sim::ExperimentConfig config = build_config(options);
  ObsSession obs(options);
  const std::unique_ptr<fault::FaultInjector> faults =
      make_fault_injector(options, config.trace);
  config.simulation.faults = faults.get();

  sim::PolicyComparison c;
  if (obs.context() != nullptr ||
      config.simulation.engine != sim::Engine::Reference) {
    // Re-run per policy so each lands on its own trace track (and so
    // the hot engine is honoured per run).
    config.simulation.observer = obs.context();
    sim::SimulationResult* const results[] = {&c.conv, &c.asap, &c.fcdpm};
    const sim::PolicyKind kinds[] = {sim::PolicyKind::Conv,
                                     sim::PolicyKind::Asap,
                                     sim::PolicyKind::FcDpm};
    for (int k = 0; k < 3; ++k) {
      obs.start_run(k);
      *results[k] = run_policy_with_engine(kinds[k], config);
    }
  } else {
    c = sim::compare_policies(config);
  }

  report::Table table("normalized fuel consumption",
                      {"DPM policy", "Conv-DPM", "ASAP-DPM", "FC-DPM"});
  table.add_row(
      {"compared to Conv-DPM", "100%",
       report::percent_cell(sim::normalized_fuel(c.asap, c.conv)),
       report::percent_cell(sim::normalized_fuel(c.fcdpm, c.conv))});
  std::printf("%s\n", table.to_ascii().c_str());
  print_result(c.conv);
  print_result(c.asap);
  print_result(c.fcdpm);
  if (c.fcdpm.robustness.has_value()) {
    std::printf("FC-DPM under faults:\n");
    print_robustness(*c.fcdpm.robustness);
  }
  if (c.fcdpm.cap.has_value()) {
    std::printf("FC-DPM under power cap:\n");
    print_cap(*c.fcdpm.cap);
  }
  if (c.fcdpm.stacks.has_value()) {
    std::printf("FC-DPM multi-stack split:\n");
    print_stacks(*c.fcdpm.stacks);
  }
  if (c.fcdpm.audit.has_value()) {
    std::printf("FC-DPM audit:\n");
    print_audit(*c.fcdpm.audit);
  }
  std::printf("\nFC-DPM vs ASAP-DPM: %.1f%% fuel saving, %.2fx lifetime\n",
              100.0 * sim::fuel_saving(c.fcdpm, c.asap),
              sim::lifetime_extension(c.fcdpm, c.asap));
  obs.finish();
  return 0;
}

int cmd_lifetime(const Options& options) {
  sim::ExperimentConfig config = build_config(options);
  const sim::PolicyKind kind =
      parse_policy(option_or(options, "policy", "fcdpm"));
  const Coulomb tank(number_or(options, "tank", 10000.0));

  ObsSession obs(options);
  config.simulation.observer = obs.context();
  const std::unique_ptr<fault::FaultInjector> faults =
      make_fault_injector(options, config.trace);
  config.simulation.faults = faults.get();

  dpm::PredictiveDpmPolicy dpm_policy = sim::make_dpm_policy(config);
  const std::unique_ptr<core::FcOutputPolicy> fc_policy =
      sim::make_fc_policy(kind, config);
  power::HybridPowerSource hybrid = sim::make_hybrid(config);

  sim::LifetimeOptions lifetime_options;
  lifetime_options.tank = tank;
  lifetime_options.simulation = config.simulation;
  sim::LifetimeResult r;
  if (config.simulation.engine == sim::Engine::Batched) {
    const hot::CompiledTrace compiled(config.trace, config.device);
    r = batch::measure_lifetime(compiled, dpm_policy, *fc_policy, hybrid,
                                lifetime_options);
  } else if (config.simulation.engine == sim::Engine::Hot) {
    const hot::CompiledTrace compiled(config.trace, config.device);
    r = hot::measure_lifetime(compiled, dpm_policy, *fc_policy, hybrid,
                              lifetime_options);
  } else {
    r = sim::measure_lifetime(config.trace, dpm_policy, *fc_policy, hybrid,
                              lifetime_options);
  }

  std::printf("%s on a %.0f A-s tank: ", sim::to_string(kind),
              tank.value());
  if (r.tank_emptied) {
    std::printf("%.1f min (%zu workload passes, avg Ifc %.3f A)\n",
                r.lifetime.value() / 60.0, r.passes,
                r.average_fuel_current.value());
  } else {
    std::printf("did not empty within %zu passes (%.1f min simulated)\n",
                r.passes, r.lifetime.value() / 60.0);
  }
  if (faults != nullptr) {
    // The injector accumulates across workload passes (the lifetime
    // loop preserves source state), so this is whole-life accounting.
    print_robustness(faults->stats());
  }
  obs.finish();
  return 0;
}

/// Strict comma-separated list option. Items are trimmed; an empty
/// item ("0.5,,0.7", a trailing comma, or an empty value) and a
/// duplicate item are rejected with the 1-based position — a sweep grid
/// with silently dropped or doubled points reports misleading results.
/// Absent option (or absent with empty fallback semantics) returns {}.
std::vector<std::string> parse_list(const Options& options,
                                    const std::string& key) {
  const auto it = options.find(key);
  if (it == options.end()) {
    return {};
  }
  const std::vector<std::string> raw = split(it->second, ',');
  std::vector<std::string> items;
  items.reserve(raw.size());
  for (std::size_t k = 0; k < raw.size(); ++k) {
    const std::string item{trim(raw[k])};
    if (item.empty()) {
      throw std::runtime_error("--" + key + ": empty value at position " +
                               std::to_string(k + 1));
    }
    items.push_back(item);
  }
  return items;
}

/// Report a duplicate grid value: "--rhos: duplicate value '0.5' at
/// position 2 (first at position 1)".
[[noreturn]] void duplicate_error(const std::string& key,
                                  const std::string& item, std::size_t at,
                                  std::size_t first) {
  throw std::runtime_error("--" + key + ": duplicate value '" + item +
                           "' at position " + std::to_string(at + 1) +
                           " (first at position " +
                           std::to_string(first + 1) + ")");
}

/// Reject duplicates by *parsed* value, so "0.5,0.50" is caught too.
template <typename T>
void check_unique(const std::string& key,
                  const std::vector<std::string>& items,
                  const std::vector<T>& values) {
  for (std::size_t k = 0; k < values.size(); ++k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (values[j] == values[k]) {
        duplicate_error(key, items[k], k, j);
      }
    }
  }
}

std::vector<double> parse_number_list(const Options& options,
                                      const std::string& key) {
  const std::vector<std::string> items = parse_list(options, key);
  std::vector<double> values;
  values.reserve(items.size());
  for (std::size_t k = 0; k < items.size(); ++k) {
    double value = 0.0;
    if (!parse_double(items[k], value)) {
      throw std::runtime_error("--" + key + ": invalid number '" +
                               items[k] + "' at position " +
                               std::to_string(k + 1));
    }
    values.push_back(value);
  }
  check_unique(key, items, values);
  return values;
}

std::vector<std::uint64_t> parse_seed_list(const Options& options,
                                           const std::string& key) {
  const std::vector<std::string> items = parse_list(options, key);
  std::vector<std::uint64_t> values;
  values.reserve(items.size());
  for (std::size_t k = 0; k < items.size(); ++k) {
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(items[k].c_str(), &end, 10);
    if (end == items[k].c_str() || *end != '\0') {
      throw std::runtime_error("--" + key + ": invalid seed '" + items[k] +
                               "' at position " + std::to_string(k + 1));
    }
    values.push_back(static_cast<std::uint64_t>(value));
  }
  check_unique(key, items, values);
  return values;
}

/// Bitwise comparison of two sweeps over the observable result fields —
/// the CLI-side mirror of the tests' expect_same_result.
bool identical_sweeps(const par::SweepResult& a, const par::SweepResult& b) {
  if (a.points.size() != b.points.size()) {
    return false;
  }
  for (std::size_t k = 0; k < a.points.size(); ++k) {
    const sim::SimulationResult& x = a.points[k].result;
    const sim::SimulationResult& y = b.points[k].result;
    if (x.totals.fuel.value() != y.totals.fuel.value() ||
        x.totals.duration.value() != y.totals.duration.value() ||
        x.totals.bled.value() != y.totals.bled.value() ||
        x.totals.unserved.value() != y.totals.unserved.value() ||
        x.storage_end.value() != y.storage_end.value() ||
        x.latency_added.value() != y.latency_added.value() ||
        x.slots != y.slots || x.sleeps != y.sleeps) {
      return false;
    }
    if (x.stacks.has_value() != y.stacks.has_value()) {
      return false;
    }
    if (x.stacks.has_value()) {
      if (x.stacks->stacks.size() != y.stacks->stacks.size()) {
        return false;
      }
      for (std::size_t i = 0; i < x.stacks->stacks.size(); ++i) {
        const stacks::StackTotals& sx = x.stacks->stacks[i];
        const stacks::StackTotals& sy = y.stacks->stacks[i];
        if (sx.fuel_as != sy.fuel_as ||
            sx.delivered_as != sy.delivered_as ||
            sx.startups != sy.startups || sx.wear != sy.wear) {
          return false;
        }
      }
    }
  }
  return true;
}

/// BENCH_sweep.json per-point row from a grid point and (when ok) its
/// observable result.
report::SweepPointRow make_point_row(const par::SweepPoint& point,
                                     const sim::SimulationResult& result) {
  report::SweepPointRow row;
  row.policy = sim::to_string(point.policy);
  row.rho = point.rho;
  row.capacity = point.capacity.value();
  row.storm_seed = point.storm_seed;
  row.fuel = result.totals.fuel.value();
  row.bled = result.totals.bled.value();
  row.unserved = result.totals.unserved.value();
  row.duration = result.totals.duration.value();
  row.storage_end = result.storage_end.value();
  row.latency = result.latency_added.value();
  row.slots = result.slots;
  row.sleeps = result.sleeps;
  if (result.cap.has_value()) {
    row.cap_enabled = true;
    row.capped_slots = result.cap->slots_capped;
    row.cap_violations = result.cap->budget_violations;
    row.cap_deferred_j = result.cap->energy_deferred.value();
    row.cap_deferred_s = result.cap->time_deferred.value();
  }
  if (result.stacks.has_value()) {
    row.stacks_enabled = true;
    row.stacks = result.stacks->stacks.size();
    row.distribution = stacks::to_string(result.stacks->distribution);
    row.stack_startups = result.stacks->total_startups();
    row.stack_max_wear = result.stacks->max_wear();
    row.stack_fuel.reserve(result.stacks->stacks.size());
    for (const stacks::StackTotals& t : result.stacks->stacks) {
      row.stack_fuel.push_back(t.fuel_as);
    }
  }
  if (result.audit.has_value()) {
    row.audit_enabled = true;
    row.audit_slots = result.audit->slots_audited;
    row.audit_checks = result.audit->checks_run;
    row.audit_violations = result.audit->violations;
    row.engine_fallbacks = result.audit->engine_fallbacks;
    row.audit_first = result.audit->first_violation;
  }
  return row;
}

/// Sweep-level cap rollup for BENCH_sweep.json; no-op when the point
/// carried no cap stats (cap off).
void accumulate_cap(report::SweepBenchReport& bench,
                    const sim::SimulationResult& result) {
  if (!result.cap.has_value()) {
    return;
  }
  bench.cap_enabled = true;
  bench.capped_slots += result.cap->slots_capped;
  if (result.cap->slots_capped > 0) {
    ++bench.capped_points;
  }
  bench.cap_violations += result.cap->budget_violations;
  bench.cap_deferred_j += result.cap->energy_deferred.value();
}

/// Sweep-level multi-stack rollup; no-op on single-stack points.
void accumulate_stacks(report::SweepBenchReport& bench,
                       const sim::SimulationResult& result) {
  if (!result.stacks.has_value()) {
    return;
  }
  bench.stacks_enabled = true;
  ++bench.stack_points;
  bench.stack_startups += result.stacks->total_startups();
  const double worst = result.stacks->max_wear();
  if (worst > bench.stack_max_wear) {
    bench.stack_max_wear = worst;
  }
}

/// Sweep-level runtime-audit rollup; no-op on unaudited points.
void accumulate_audit(report::SweepBenchReport& bench,
                      const sim::SimulationResult& result) {
  if (!result.audit.has_value()) {
    return;
  }
  bench.audit_enabled = true;
  bench.audit_mode =
      audit::to_string(static_cast<audit::Mode>(result.audit->mode));
  bench.audited_slots += result.audit->slots_audited;
  bench.audit_checks += result.audit->checks_run;
  bench.audit_violations += result.audit->violations;
  bench.engine_fallbacks += result.audit->engine_fallbacks;
  if (result.audit->engine_fallbacks > 0) {
    ++bench.fallback_points;
  }
}

void print_audit_rollup(const report::SweepBenchReport& bench) {
  if (!bench.audit_enabled) {
    return;
  }
  std::printf("audit (%s): %llu slots audited | %llu checks | "
              "%llu violations | %llu engine fallbacks (%zu points)\n",
              bench.audit_mode.c_str(),
              static_cast<unsigned long long>(bench.audited_slots),
              static_cast<unsigned long long>(bench.audit_checks),
              static_cast<unsigned long long>(bench.audit_violations),
              static_cast<unsigned long long>(bench.engine_fallbacks),
              bench.fallback_points);
}

par::SweepGrid parse_sweep_grid(const Options& options) {
  par::SweepGrid grid;
  const std::vector<std::string> policy_names =
      parse_list(options, "policies");
  for (const std::string& name : policy_names) {
    grid.policies.push_back(parse_policy(name));
  }
  check_unique("policies", policy_names, grid.policies);
  grid.rhos = parse_number_list(options, "rhos");
  for (const double value : parse_number_list(options, "capacities")) {
    grid.capacities.push_back(Coulomb(value));
  }
  grid.storm_seeds = parse_seed_list(options, "storm-seeds");
  grid.storm_faults = static_cast<std::size_t>(number_or(
      options, "storm-faults", static_cast<double>(grid.storm_faults)));
  for (const double value : parse_number_list(options, "stacks")) {
    if (value < 0.0 || value != static_cast<double>(
                                   static_cast<std::size_t>(value))) {
      throw std::runtime_error(
          "--stacks: counts must be non-negative integers (0 = the "
          "single-stack base source)");
    }
    grid.stack_counts.push_back(static_cast<std::size_t>(value));
  }
  const std::vector<std::string> dist_names =
      parse_list(options, "distributions");
  for (const std::string& name : dist_names) {
    grid.distributions.push_back(stacks::parse_distribution(name));
  }
  check_unique("distributions", dist_names, grid.distributions);
  if (!grid.distributions.empty() && grid.stack_counts.empty() &&
      number_or(options, "stacks", 0.0) <= 0.0 &&
      option_or(options, "stacks-config", "").empty()) {
    throw std::runtime_error(
        "--distributions needs a multi-stack source (--stacks N or "
        "--stacks-config FILE)");
  }
  return grid;
}

/// The journaling/retry/watchdog sweep path behind the resilience
/// flags. Quarantined points are reported, not fatal: exit code 0.
int cmd_sweep_resilient(const sim::ExperimentConfig& config,
                        const par::SweepGrid& grid, const Options& options,
                        ObsSession& obs, std::size_t jobs,
                        const par::SolveCacheConfig& cache_config) {
  resilience::ResilienceOptions ropt;
  ropt.contract.max_retries =
      static_cast<std::size_t>(number_or(options, "max-retries", 2.0));
  ropt.contract.point_deadline_slots = static_cast<std::size_t>(
      number_or(options, "point-deadline", 0.0));
  if (options.find("unserved-budget") != options.end()) {
    ropt.contract.unserved_budget_as =
        checked_number_or(options, "unserved-budget", 0.0);
    if (ropt.contract.unserved_budget_as < 0.0) {
      throw std::runtime_error(
          "--unserved-budget: '" +
          option_or(options, "unserved-budget", "") +
          "' out of range (need a non-negative charge in A-s)");
    }
  }
  if (options.find("inject-fail") != options.end()) {
    ropt.contract.inject_fail_index =
        static_cast<std::size_t>(number_or(options, "inject-fail", 0.0));
  }
  ropt.journal_path = option_or(options, "journal", "");
  const std::string resume = option_or(options, "resume", "");
  if (!resume.empty()) {
    if (!ropt.journal_path.empty() && ropt.journal_path != resume) {
      throw std::runtime_error(
          "--journal and --resume name different files");
    }
    ropt.journal_path = resume;
    ropt.resume = true;
  }
  ropt.spot_checks =
      static_cast<std::size_t>(number_or(options, "spot-checks", 1.0));
  ropt.watchdog_stall = std::chrono::milliseconds(static_cast<long long>(
      number_or(options, "watchdog-stall-ms", 0.0)));
  ropt.jobs = jobs;
  par::SharedSolveCache cache(cache_config);
  ropt.cache = &cache;
  ropt.observer = obs.context();

  TelemetrySession tel(options, jobs, grid.points(config).size(),
                       !option_or(options, "trace-out", "").empty());
  ropt.telemetry = tel.telemetry();

  const resilience::ResilientSweepResult sweep =
      resilience::run_resilient_sweep(config, grid, ropt);

  std::vector<std::string> columns = {
      "policy", "rho", "capacity", "storm seed", "fuel (A-s)",
      "bled (A-s)", "unserved (A-s)", "sleeps"};
  if (config.cap.enabled) {
    columns.push_back("capped");
  }
  if (config.stacks.enabled) {
    columns.push_back("stacks");
    columns.push_back("dist");
  }
  columns.push_back("status");
  report::Table table("sweep: " + config.trace.name(), std::move(columns));
  for (const resilience::ResilientPoint& p : sweep.points) {
    const par::SweepPoint& point = p.result.point;
    if (p.ok) {
      std::vector<std::string> cells = {
          sim::to_string(point.policy), report::cell(point.rho, 2),
          report::cell(point.capacity.value(), 1),
          std::to_string(point.storm_seed),
          report::cell(p.result.result.totals.fuel.value(), 2),
          report::cell(p.result.result.totals.bled.value(), 2),
          report::cell(p.result.result.totals.unserved.value(), 2),
          std::to_string(p.result.result.sleeps)};
      if (config.cap.enabled) {
        cells.push_back(p.result.result.cap.has_value()
                            ? std::to_string(
                                  p.result.result.cap->slots_capped)
                            : "-");
      }
      if (config.stacks.enabled) {
        if (p.result.result.stacks.has_value()) {
          cells.push_back(
              std::to_string(p.result.result.stacks->stacks.size()));
          cells.push_back(
              stacks::to_string(p.result.result.stacks->distribution));
        } else {
          cells.push_back("-");
          cells.push_back("-");
        }
      }
      cells.push_back(p.replayed ? "replayed" : "ok");
      table.add_row(std::move(cells));
    } else {
      std::vector<std::string> cells = {
          sim::to_string(point.policy), report::cell(point.rho, 2),
          report::cell(point.capacity.value(), 1),
          std::to_string(point.storm_seed), "-", "-", "-", "-"};
      if (config.cap.enabled) {
        cells.push_back("-");
      }
      if (config.stacks.enabled) {
        cells.push_back("-");
        cells.push_back("-");
      }
      cells.push_back(std::string("quarantined: ") +
                      resilience::to_string(p.error.kind));
      table.add_row(std::move(cells));
    }
  }
  std::printf("%s\n", table.to_ascii().c_str());

  report::SweepBenchReport bench;
  bench.trace_name = config.trace.name();
  bench.points = sweep.stats.points;
  bench.jobs = sweep.stats.jobs;
  bench.wall_seconds = sweep.stats.wall_seconds;
  bench.points_per_second = sweep.stats.points_per_second();
  bench.cache_hits = sweep.stats.cache_hits;
  bench.cache_misses = sweep.stats.cache_misses;
  bench.cache_hit_rate = sweep.stats.cache_hit_rate();
  for (const resilience::ResilientPoint& p : sweep.points) {
    report::SweepPointRow row =
        make_point_row(p.result.point, p.result.result);
    row.ok = p.ok;
    row.attempts = p.attempts;
    row.replayed = p.replayed;
    if (!p.ok) {
      row.error = resilience::to_string(p.error.kind);
      row.fuel = row.bled = row.unserved = 0.0;
      row.duration = row.storage_end = row.latency = 0.0;
      row.slots = row.sleeps = 0;
    } else {
      accumulate_cap(bench, p.result.result);
      accumulate_stacks(bench, p.result.result);
      accumulate_audit(bench, p.result.result);
    }
    bench.results.push_back(std::move(row));
  }
  const resilience::ResilienceStats& rs = sweep.resilience;
  bench.resilience.enabled = true;
  bench.resilience.scheduled = rs.scheduled;
  bench.resilience.replayed = rs.replayed;
  bench.resilience.retries = rs.retries;
  bench.resilience.quarantined = rs.quarantined;
  bench.resilience.rounds = rs.rounds;
  bench.resilience.spot_checks = rs.spot_checks;
  bench.resilience.torn_tail_recovered = rs.torn_tail_recovered;
  bench.resilience.torn_bytes_dropped = rs.torn_bytes_dropped;
  bench.resilience.watchdog_stalls = rs.watchdog_stalls;
  bench.resilience.max_retries = ropt.contract.max_retries;
  bench.resilience.point_deadline_slots =
      ropt.contract.point_deadline_slots;
  bench.resilience.cap_enabled = config.cap.enabled;
  bench.resilience.capped_ok = rs.capped_ok;

  std::printf(
      "%zu points at %zu jobs: %.3f s wall (%.1f points/s), "
      "solve-cache hit rate %.1f %%\n",
      bench.points, bench.jobs, bench.wall_seconds,
      bench.points_per_second, 100.0 * bench.cache_hit_rate);
  std::printf(
      "resilience: %zu scheduled | %zu replayed | %zu retries | "
      "%zu quarantined | %zu rounds | %zu spot-checks | %zu stalls\n",
      rs.scheduled, rs.replayed, rs.retries, rs.quarantined, rs.rounds,
      rs.spot_checks, rs.watchdog_stalls);
  if (config.cap.enabled) {
    std::printf("power cap: %zu points throttled to completion | "
                "%llu capped slots | %llu budget violations\n",
                rs.capped_ok,
                static_cast<unsigned long long>(bench.capped_slots),
                static_cast<unsigned long long>(bench.cap_violations));
  }
  if (bench.stacks_enabled) {
    std::printf("stacks: %zu multi-stack points | %llu stack startups | "
                "max wear %.6g\n",
                bench.stack_points,
                static_cast<unsigned long long>(bench.stack_startups),
                bench.stack_max_wear);
  }
  print_audit_rollup(bench);
  if (rs.torn_tail_recovered) {
    std::printf("journal torn tail recovered (%zu bytes dropped)\n",
                rs.torn_bytes_dropped);
  }
  for (std::size_t k = 0; k < sweep.points.size(); ++k) {
    const resilience::ResilientPoint& p = sweep.points[k];
    if (!p.ok) {
      std::printf("quarantined point %zu after %zu attempts: %s: %s\n", k,
                  p.attempts, resilience::to_string(p.error.kind),
                  p.error.detail.c_str());
    }
  }

  tel.finish(bench, obs.sink());

  const std::string out = option_or(options, "out", "");
  if (!out.empty()) {
    report::write_sweep_bench_file(out, bench);
    std::printf("wrote sweep bench to %s\n", out.c_str());
  }
  obs.finish();
  return 0;
}

int cmd_sweep(const Options& options) {
  const sim::ExperimentConfig config = build_config(options);
  const par::SweepGrid grid = parse_sweep_grid(options);

  const auto jobs =
      static_cast<std::size_t>(number_or(options, "jobs", 1.0));
  // One knob covers all three quanta; 0 (default) keeps the cache
  // transparent (exact keys, results bit-identical to cache-free runs).
  const double quantum = number_or(options, "cache-quantum", 0.0);
  par::SolveCacheConfig cache_config;
  cache_config.time_quantum = Seconds(quantum);
  cache_config.current_quantum = Ampere(quantum);
  cache_config.charge_quantum = Coulomb(quantum);

  ObsSession obs(options);

  // Any resilience flag routes to the journaling/retry/watchdog runner;
  // without them the plain engine below runs byte-for-byte as before.
  for (const char* flag :
       {"journal", "resume", "max-retries", "point-deadline",
        "watchdog-stall-ms", "spot-checks", "inject-fail",
        "unserved-budget"}) {
    if (options.find(flag) != options.end()) {
      return cmd_sweep_resilient(config, grid, options, obs, jobs,
                                 cache_config);
    }
  }

  // Single-job reference first (own cache, same config): it provides
  // the speedup baseline and the bit-identity check.
  par::SweepResult serial;
  bool have_serial = false;
  if (jobs != 1 && option_or(options, "serial-check", "on") != "off") {
    par::SharedSolveCache serial_cache(cache_config);
    par::SweepOptions serial_options;
    serial_options.jobs = 1;
    serial_options.cache = &serial_cache;
    serial = par::run_sweep(config, grid, serial_options);
    have_serial = true;
  }

  // The serial reference above runs without telemetry: shards observe
  // only the measured parallel run, so snapshot totals equal its report.
  TelemetrySession tel(options, jobs, grid.points(config).size(),
                       !option_or(options, "trace-out", "").empty());

  par::SharedSolveCache cache(cache_config);
  par::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.cache = &cache;
  sweep_options.observer = obs.context();
  sweep_options.telemetry = tel.telemetry();
  const par::SweepResult sweep = par::run_sweep(config, grid, sweep_options);

  std::vector<std::string> columns = {
      "policy", "rho", "capacity", "storm seed", "fuel (A-s)",
      "bled (A-s)", "unserved (A-s)", "sleeps"};
  if (config.cap.enabled) {
    columns.push_back("capped");
  }
  if (config.stacks.enabled) {
    columns.push_back("stacks");
    columns.push_back("dist");
  }
  report::Table table("sweep: " + config.trace.name(), std::move(columns));
  for (const par::SweepPointResult& p : sweep.points) {
    std::vector<std::string> cells = {
        sim::to_string(p.point.policy), report::cell(p.point.rho, 2),
        report::cell(p.point.capacity.value(), 1),
        std::to_string(p.point.storm_seed),
        report::cell(p.result.totals.fuel.value(), 2),
        report::cell(p.result.totals.bled.value(), 2),
        report::cell(p.result.totals.unserved.value(), 2),
        std::to_string(p.result.sleeps)};
    if (config.cap.enabled) {
      cells.push_back(p.result.cap.has_value()
                          ? std::to_string(p.result.cap->slots_capped)
                          : "-");
    }
    if (config.stacks.enabled) {
      if (p.result.stacks.has_value()) {
        cells.push_back(std::to_string(p.result.stacks->stacks.size()));
        cells.push_back(stacks::to_string(p.result.stacks->distribution));
      } else {
        cells.push_back("-");
        cells.push_back("-");
      }
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.to_ascii().c_str());

  report::SweepBenchReport bench;
  bench.trace_name = config.trace.name();
  bench.points = sweep.stats.points;
  bench.jobs = sweep.stats.jobs;
  bench.wall_seconds = sweep.stats.wall_seconds;
  bench.points_per_second = sweep.stats.points_per_second();
  bench.cache_hits = sweep.stats.cache_hits;
  bench.cache_misses = sweep.stats.cache_misses;
  bench.cache_hit_rate = sweep.stats.cache_hit_rate();
  bench.batched_points = sweep.stats.points_batched;
  bench.batch_merge_sets = sweep.stats.batch_merge_sets;
  bench.batch_merged_lane_slots = sweep.stats.batch_merged_lane_slots;
  bench.batch_splits = sweep.stats.batch_splits;
  bench.batch_journal_hits = sweep.stats.batch_journal_hits;
  for (const par::SweepPointResult& p : sweep.points) {
    bench.results.push_back(make_point_row(p.point, p.result));
    accumulate_cap(bench, p.result);
    accumulate_stacks(bench, p.result);
    accumulate_audit(bench, p.result);
  }
  std::printf(
      "%zu points at %zu jobs: %.3f s wall (%.1f points/s), "
      "solve-cache hit rate %.1f %%\n",
      bench.points, bench.jobs, bench.wall_seconds,
      bench.points_per_second, 100.0 * bench.cache_hit_rate);
  if (bench.cap_enabled) {
    std::printf("power cap: %zu/%zu points throttled | %llu capped slots | "
                "%llu budget violations | %.1f J deferred\n",
                bench.capped_points, bench.points,
                static_cast<unsigned long long>(bench.capped_slots),
                static_cast<unsigned long long>(bench.cap_violations),
                bench.cap_deferred_j);
  }
  if (bench.stacks_enabled) {
    std::printf("stacks: %zu multi-stack points | %llu stack startups | "
                "max wear %.6g\n",
                bench.stack_points,
                static_cast<unsigned long long>(bench.stack_startups),
                bench.stack_max_wear);
  }
  if (bench.batched_points > 0) {
    std::printf("batched: %zu/%zu points | %zu merge sets | %zu merged "
                "lane-slots | %zu splits | %llu journal hits\n",
                bench.batched_points, bench.points, bench.batch_merge_sets,
                bench.batch_merged_lane_slots, bench.batch_splits,
                static_cast<unsigned long long>(bench.batch_journal_hits));
  }
  print_audit_rollup(bench);

  bool diverged = false;
  if (have_serial) {
    bench.serial_wall_seconds = serial.stats.wall_seconds;
    bench.speedup =
        bench.wall_seconds > 0.0
            ? bench.serial_wall_seconds / bench.wall_seconds
            : 0.0;
    const bool identical = identical_sweeps(serial, sweep);
    bench.bit_identical_to_serial = identical ? 1 : 0;
    diverged = !identical;
    std::printf("vs --jobs 1: %.3f s serial, speedup %.2fx, results %s\n",
                bench.serial_wall_seconds, bench.speedup,
                identical ? "bit-identical" : "DIVERGED");
  }

  tel.finish(bench, obs.sink());

  const std::string out = option_or(options, "out", "");
  if (!out.empty()) {
    report::write_sweep_bench_file(out, bench);
    std::printf("wrote sweep bench to %s\n", out.c_str());
  }
  obs.finish();
  if (diverged) {
    std::fprintf(stderr,
                 "error: parallel sweep diverged from the serial "
                 "reference (determinism bug)\n");
    return 2;
  }
  return 0;
}

/// Divergence bisection: binary-search the first slot where the hot
/// engine disagrees with the reference and dump a minimized repro.
/// Exit 0 either way — finding (or excluding) a divergence is the
/// tool's successful outcome; tests and CI parse the report.
int cmd_bisect(const Options& options) {
  sim::ExperimentConfig config = build_config(options);
  const sim::PolicyKind kind =
      parse_policy(option_or(options, "policy", "fcdpm"));
  audit::BisectOptions bisect_options;
  bisect_options.perturb_slot =
      checked_index_or(options, "perturb-slot", audit::npos);
  const audit::BisectReport report =
      audit::bisect_point(config, kind, bisect_options);
  if (!report.diverged) {
    std::printf("engines agree: %s on %s is bit-identical over all "
                "%zu slots (%zu probe runs)\n",
                sim::to_string(kind), config.trace.name().c_str(),
                config.trace.size(), report.runs);
    return 0;
  }
  std::printf("first divergent slot: %zu of %zu (%zu probe runs)\n",
              report.first_divergent_slot, config.trace.size(),
              report.runs);
  std::printf("  entry state : fuel %.17g A-s | storage %.17g A-s\n",
              report.entry_fuel_as, report.entry_storage_as);
  std::printf("  reference   : fuel %.17g A-s | storage end %.17g A-s\n",
              report.reference.totals.fuel.value(),
              report.reference.storage_end.value());
  std::printf("  hot         : fuel %.17g A-s | storage end %.17g A-s\n",
              report.hot.totals.fuel.value(),
              report.hot.storage_end.value());
  const std::string out = option_or(options, "repro-out", "");
  if (!out.empty()) {
    audit::write_repro(out, config, kind, report);
    std::printf("wrote repro to %s.json and %s_window.csv\n", out.c_str(),
                out.c_str());
  }
  return 0;
}

int cmd_aggregate(const Options& options) {
  const auto out_it = options.find("out");
  if (out_it == options.end()) {
    throw std::runtime_error("aggregate requires --out <file>");
  }
  const wl::Trace trace = load_workload(options);
  const Seconds budget(number_or(options, "defer", 30.0));
  wl::AggregationReport report;
  const wl::Trace merged = wl::aggregate_trace(trace, budget, &report);
  wl::save_trace_file(out_it->second, merged);
  std::printf(
      "aggregated %zu slots into %zu (deferral budget %.1f s, worst "
      "deferral %.1f s) -> %s\n",
      report.original_slots, report.merged_slots, budget.value(),
      report.worst_deferral.value(), out_it->second.c_str());
  return 0;
}

int cmd_merge(int argc, char** argv) {
  // merge out.csv in1.csv in2.csv [...]
  if (argc < 5) {
    throw std::runtime_error(
        "merge requires: merge <out.csv> <in1.csv> <in2.csv> [...]");
  }
  std::vector<wl::Trace> traces;
  for (int k = 3; k < argc; ++k) {
    traces.push_back(wl::load_trace_file(argv[k]));
  }
  const wl::Trace merged = wl::merge_traces(traces, "merged");
  wl::save_trace_file(argv[2], merged);
  std::printf("merged %zu traces into %zu aggregate slots -> %s\n",
              traces.size(), merged.size(), argv[2]);
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fcdpm_cli <command> [--option value | --option=value ...]\n"
      "  gen      --kind camcorder|synthetic --out trace.csv [--seed N]\n"
      "  analyze  [--trace f.csv | --kind camcorder|synthetic]\n"
      "  run      --policy conv|asap|fcdpm|oracle [--trace f.csv |\n"
      "           --kind ...] [--rho R] [--capacity C] [--initial C]\n"
      "  compare  [--trace f.csv | --kind ...] [--rho R] ...\n"
      "  lifetime --tank A-s [--policy ...] [--kind ...]\n"
      "  sweep    [--jobs N] [--policies conv,asap,fcdpm,oracle]\n"
      "           [--rhos R1,R2,...] [--capacities C1,C2,...]\n"
      "           [--storm-seeds S1,S2,...] [--storm-faults N]\n"
      "           [--stacks N1,N2,...]  stack-count axis (0 = the\n"
      "                                 single-stack base source)\n"
      "           [--distributions proportional,waterfill,health]\n"
      "           [--cache-quantum Q] [--out BENCH_sweep.json]\n"
      "           [--serial-check on|off] [--trace f.csv | --kind ...]\n"
      "           (--jobs 0 = all cores; with --jobs != 1 a --jobs 1\n"
      "           reference runs first for speedup and bit-identity)\n"
      "           resilience (any flag engages the crash-safe runner):\n"
      "           [--journal J.fcj]     fsync'd per-point result journal\n"
      "           [--resume J.fcj]      replay J, run only the remainder\n"
      "           [--max-retries N]     retries before quarantine (2)\n"
      "           [--point-deadline S]  per-point simulated-slot budget\n"
      "           [--watchdog-stall-ms MS]  hung-worker watchdog window\n"
      "           [--spot-checks N]     replayed points re-verified (1)\n"
      "           [--inject-fail K]     test hook: grid point K always\n"
      "                                 fails (exercises quarantine)\n"
      "           [--unserved-budget A-s]  quarantine a point whose\n"
      "                                 unserved charge exceeds this\n"
      "                                 (power_undeliverable)\n"
      "           telemetry (derived observation; results unchanged):\n"
      "           [--progress on]       live progress line on stderr\n"
      "           [--progress-out f.jsonl]  snapshot stream, one JSON\n"
      "                                 object per line; the final line\n"
      "                                 totals the whole sweep\n"
      "           [--progress-interval-ms MS]  sampler period (200)\n"
      "  bisect   [--policy ...] [--trace f.csv | --kind ...]\n"
      "           [--perturb-slot K]   synthetic hot-engine defect at\n"
      "                                 slot K (test hook / CI smoke)\n"
      "           [--repro-out prefix] write prefix.json (entry state +\n"
      "                                 bit patterns) and\n"
      "                                 prefix_window.csv (runnable\n"
      "                                 trace window)\n"
      "           binary-search the first slot where the hot engine\n"
      "           diverges from the reference\n"
      "  aggregate --out f.csv [--defer S] [--trace ... | --kind ...]\n"
      "  merge    <out.csv> <in1.csv> <in2.csv> [...]\n"
      "run/compare/lifetime/sweep also accept:\n"
      "  --engine reference|hot|batched\n"
      "                        simulation engine (default reference;\n"
      "                        hot = compiled-trace fast path, batched =\n"
      "                        multi-point SoA batch loop for sweeps with\n"
      "                        prefix-sharing across capacities; both\n"
      "                        bit-identical results). batched rejects\n"
      "                        --faults and --audit strict\n"
      "  --trace-out f.json    Chrome/Perfetto trace (f.jsonl for JSONL)\n"
      "  --metrics-out f.csv   metrics registry dump (f.json for JSON)\n"
      "  --profile-out f.csv   wall-clock hot-path profile\n"
      "  --faults SPEC         inject faults; SPEC is an inline schedule\n"
      "                        (kind@start[:dur][xmag], e.g.\n"
      "                        converter_dropout@120:30,brownout@400x0.5),\n"
      "                        storm:SEED[:COUNT] for a seeded random\n"
      "                        storm, or a CSV schedule file\n"
      "  --cap on|off          closed-loop power capping (default off):\n"
      "                        throttle DVS level when the plan exceeds\n"
      "                        the deliverable envelope instead of\n"
      "                        browning out\n"
      "  --cap-table f.csv     corecap table (min_budget_w,max_level);\n"
      "                        default derived from the DVS processor\n"
      "  --cap-hysteresis N    clean slots before stepping back up (4)\n"
      "  --cap-draw-fraction F storage charge fraction spendable per\n"
      "                        slot when computing the envelope (0.5)\n"
      "  --stacks N            split the fuel cell into N parallel\n"
      "                        stacks (clones of the base curve) with\n"
      "                        per-stack degradation accounting\n"
      "  --distribution proportional|waterfill|health\n"
      "                        power split across stacks: by ceiling,\n"
      "                        efficiency-optimal water-filling, or\n"
      "                        health-aware (rest the most worn stack)\n"
      "  --stacks-config f.csv heterogeneous stacks, one per row\n"
      "                        (alpha,beta,if_min_a,if_max_a,\n"
      "                        charge_fade_per_as,cycle_fade)\n"
      "  --stack-charge-fade F efficiency fade per delivered A-s (0)\n"
      "  --stack-cycle-fade F  efficiency fade per on/off cycle (0)\n"
      "  --audit off|sample|strict\n"
      "                        runtime invariant auditing (default off;\n"
      "                        results stay bit-identical): fuel-burn\n"
      "                        integral reconciliation, storage bounds,\n"
      "                        cap budget, stack wear, solve-cache\n"
      "                        spot checks. A hot-engine violation\n"
      "                        self-heals: the run replays on the\n"
      "                        reference engine and records an\n"
      "                        engine_fallback\n"
      "  --audit-sample-period N\n"
      "                        sample mode checks every Nth slot (16)\n"
      "  --audit-tamper-slot K test hook: corrupt the auditor's observed\n"
      "                        integral at slot K on the hot lane\n"
      "                        (exercises the self-heal path)\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "merge") {
      return cmd_merge(argc, argv);  // positional arguments
    }
    const Options options = parse_options(argc, argv, 2);
    if (command == "gen") {
      return cmd_gen(options);
    }
    if (command == "analyze") {
      return cmd_analyze(options);
    }
    if (command == "run") {
      return cmd_run(options);
    }
    if (command == "compare") {
      return cmd_compare(options);
    }
    if (command == "lifetime") {
      return cmd_lifetime(options);
    }
    if (command == "sweep") {
      return cmd_sweep(options);
    }
    if (command == "bisect") {
      return cmd_bisect(options);
    }
    if (command == "aggregate") {
      return cmd_aggregate(options);
    }
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
}
