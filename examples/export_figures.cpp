// Export every paper figure as SVG (and the profile data as CSV) for
// inclusion in reports — the graphical counterpart of the bench
// harness's textual tables.
//
// Usage: export_figures [output_dir]   (default: current directory)
#include <cstdio>
#include <fstream>
#include <string>

#include "common/csv.hpp"
#include "power/fc_system.hpp"
#include "report/series_export.hpp"
#include "report/svg_export.hpp"
#include "sim/experiments.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;

  const std::string dir = (argc >= 2) ? argv[1] : ".";
  const auto path = [&](const char* file) { return dir + "/" + file; };

  // --- Figure 2: stack V-I and P-I curves --------------------------------
  {
    const fc::FuelCellStack stack = fc::FuelCellStack::bcs_20w();
    report::SvgSeries volts{"Vfc (V)", {}, {}};
    report::SvgSeries watts{"Power (W)", {}, {}};
    for (const fc::StackPoint& p :
         stack.sample_curve(Ampere(0.0), Ampere(1.6), 81)) {
      volts.xs.push_back(p.current.value());
      volts.ys.push_back(p.voltage.value());
      watts.xs.push_back(p.current.value());
      watts.ys.push_back(p.power.value());
    }
    report::SvgOptions options;
    options.title = "Figure 2 - BCS 20 W stack characteristics";
    options.x_label = "fuel cell current Ifc (A)";
    options.y_label = "V / W";
    report::write_svg_file(path("fig2_stack.svg"),
                           report::render_line_svg({volts, watts},
                                                   options));
    std::printf("wrote %s\n", path("fig2_stack.svg").c_str());
  }

  // --- Figure 3: efficiency curves ----------------------------------------
  {
    const power::FcSystem paper = power::FcSystem::paper_system();
    const power::FcSystem legacy = power::FcSystem::legacy_system();
    const fc::FuelModel fuel = fc::FuelModel::bcs_20w();

    report::SvgSeries stack_eta{"(a) stack", {}, {}};
    report::SvgSeries system_eta{"(b) variable fan", {}, {}};
    report::SvgSeries legacy_eta{"(c) on/off fan", {}, {}};
    for (const auto& sample :
         paper.sample_efficiency(Ampere(0.05), Ampere(1.2), 60)) {
      const double i = sample.output_current.value();
      const power::FcOperatingPoint op =
          paper.operating_point(sample.output_current);
      stack_eta.xs.push_back(i);
      stack_eta.ys.push_back(
          100.0 * fuel.stack_efficiency(op.stack_voltage));
      system_eta.xs.push_back(i);
      system_eta.ys.push_back(100.0 * sample.system_efficiency);
      legacy_eta.xs.push_back(i);
      legacy_eta.ys.push_back(
          100.0 * legacy.system_efficiency(sample.output_current));
    }
    report::SvgOptions options;
    options.title = "Figure 3 - efficiency vs FC system output current";
    options.x_label = "IF (A)";
    options.y_label = "efficiency (%)";
    options.y_min = 0.0;
    options.y_max = 60.0;
    options.x_min = 0.0;
    options.x_max = 1.25;
    report::write_svg_file(
        path("fig3_efficiency.svg"),
        report::render_line_svg({stack_eta, system_eta, legacy_eta},
                                options));
    std::printf("wrote %s\n", path("fig3_efficiency.svg").c_str());
  }

  // --- Figure 7: 300 s current profiles -----------------------------------
  {
    sim::ExperimentConfig config = sim::experiment1_config();
    config.simulation.record_profiles = true;
    config.simulation.profile_limit = Seconds(300.0);
    const sim::SimulationResult asap =
        sim::run_policy(sim::PolicyKind::Asap, config);
    const sim::SimulationResult fcdpm =
        sim::run_policy(sim::PolicyKind::FcDpm, config);

    const auto panel = [&](const char* file, const char* title,
                           const sim::StepSeries& series) {
      report::SvgOptions options;
      options.title = title;
      options.x_label = "time (s)";
      options.y_label = "current (A)";
      options.y_min = 0.0;
      options.y_max = 1.5;
      report::write_svg_file(
          path(file), report::render_step_svg({&series}, Seconds(0.0),
                                              Seconds(300.0), options));
      std::printf("wrote %s\n", path(file).c_str());
    };
    panel("fig7a_load.svg", "Figure 7(a) - load current",
          asap.profiles->load_current());
    panel("fig7b_asap.svg", "Figure 7(b) - FC output, ASAP-DPM",
          asap.profiles->fc_output());
    panel("fig7c_fcdpm.svg", "Figure 7(c) - FC output, FC-DPM",
          fcdpm.profiles->fc_output());

    // Raw profile data as CSV for replotting.
    std::ofstream csv(path("fig7_profiles.csv"));
    csv << report::series_to_csv({&asap.profiles->load_current(),
                                  &asap.profiles->fc_output(),
                                  &fcdpm.profiles->fc_output()});
    std::printf("wrote %s\n", path("fig7_profiles.csv").c_str());
  }

  return 0;
}
