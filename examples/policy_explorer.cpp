// Policy design space exploration: sweep the idle-predictor factor rho
// and the storage capacity and watch how FC-DPM's fuel saving responds —
// the knobs Section 4 leaves open ("the value of rho and sigma could be
// different, depending on the pre-known pattern of the load profile").
//
// Run: ./build/examples/policy_explorer
#include <cstdio>

#include "sim/experiments.hpp"

int main() {
  using namespace fcdpm;

  std::printf(
      "Sweep 1: prediction factor rho on the camcorder trace\n"
      "  (rho = 1 freezes the initial estimate; rho = 0 is last-value)\n\n"
      "  %5s %12s %14s %16s\n",
      "rho", "fuel (A-s)", "vs ASAP-DPM", "decision errors");
  {
    sim::ExperimentConfig config = sim::experiment1_config();
    const sim::SimulationResult asap =
        sim::run_policy(sim::PolicyKind::Asap, config);
    for (const double rho : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      config.rho = rho;
      const sim::SimulationResult r =
          sim::run_policy(sim::PolicyKind::FcDpm, config);
      std::size_t errors = 0;
      if (r.idle_accuracy.has_value()) {
        errors = r.idle_accuracy->false_sleeps() +
                 r.idle_accuracy->missed_sleeps();
      }
      std::printf("  %5.2f %12.1f %13.1f%% %16zu\n", rho,
                  r.fuel().value(), 100.0 * sim::fuel_saving(r, asap),
                  errors);
    }
  }

  std::printf(
      "\nSweep 2: storage capacity on the synthetic workload\n"
      "  (the paper's 1 F supercap = 6 A-s; bigger buffers give the\n"
      "   optimizer more room before the capacity constraint binds)\n\n"
      "  %10s %12s %14s %12s\n",
      "cap (A-s)", "fuel (A-s)", "vs ASAP-DPM", "bled (A-s)");
  for (const double capacity : {2.0, 4.0, 6.0, 12.0, 24.0, 48.0}) {
    sim::ExperimentConfig config = sim::experiment2_config();
    config.storage_capacity = Coulomb(capacity);
    config.initial_storage = Coulomb(capacity / 6.0);
    const sim::SimulationResult asap =
        sim::run_policy(sim::PolicyKind::Asap, config);
    const sim::SimulationResult r =
        sim::run_policy(sim::PolicyKind::FcDpm, config);
    std::printf("  %10.1f %12.1f %13.1f%% %12.2f\n", capacity,
                r.fuel().value(), 100.0 * sim::fuel_saving(r, asap),
                r.totals.bled.value());
  }

  std::printf(
      "\nReading: rho barely matters on the regular camcorder load, and\n"
      "FC-DPM's edge grows with buffer headroom until the flat optimum\n"
      "fits unconstrained.\n");
  return 0;
}
