// Experiment 2 with knobs: run the synthetic uniform-random workload
// under all policies, optionally overriding the workload bounds from the
// command line.
//
// Usage: synthetic_workload [idle_min idle_max [active_min active_max
//                            [power_min power_max [seed]]]]
// e.g.   ./build/examples/synthetic_workload 5 25 2 4 12 16 424242
#include <cstdio>
#include <cstdlib>

#include "sim/experiments.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fcdpm;

  wl::SyntheticConfig workload;  // defaults are the paper's Experiment 2
  if (argc >= 3) {
    workload.idle_min = Seconds(std::atof(argv[1]));
    workload.idle_max = Seconds(std::atof(argv[2]));
  }
  if (argc >= 5) {
    workload.active_min = Seconds(std::atof(argv[3]));
    workload.active_max = Seconds(std::atof(argv[4]));
  }
  if (argc >= 7) {
    workload.power_min = Watt(std::atof(argv[5]));
    workload.power_max = Watt(std::atof(argv[6]));
  }
  if (argc >= 8) {
    workload.seed = static_cast<std::uint64_t>(std::atoll(argv[7]));
  }

  sim::ExperimentConfig config = sim::experiment2_config();
  config.trace = wl::generate_synthetic_trace(workload);

  const wl::TraceStats stats = config.trace.stats();
  std::printf(
      "Synthetic workload: %zu slots, %.1f min\n"
      "  idle U[%.1f, %.1f] s, active U[%.1f, %.1f] s, power U[%.1f, "
      "%.1f] W\n"
      "  device break-even time: %.2f s\n\n",
      stats.slots, stats.total_duration().value() / 60.0,
      workload.idle_min.value(), workload.idle_max.value(),
      workload.active_min.value(), workload.active_max.value(),
      workload.power_min.value(), workload.power_max.value(),
      config.device.break_even_time().value());

  const sim::PolicyComparison comparison = sim::compare_policies(config);

  std::printf("%-10s %10s %9s %8s %12s\n", "policy", "fuel A-s", "vs Conv",
              "sleeps", "unserved A-s");
  for (const sim::SimulationResult* r :
       {&comparison.conv, &comparison.asap, &comparison.fcdpm}) {
    std::printf("%-10s %10.1f %8.1f%% %5zu/%zu %12.2f\n",
                r->fc_policy.c_str(), r->fuel().value(),
                100.0 * sim::normalized_fuel(*r, comparison.conv),
                r->sleeps, r->slots, r->totals.unserved.value());
  }

  std::printf("\nFC-DPM saves %.1f%% fuel over ASAP-DPM on this workload\n",
              100.0 * sim::fuel_saving(comparison.fcdpm, comparison.asap));

  if (comparison.fcdpm.idle_accuracy.has_value()) {
    const dpm::PredictionAccuracy& acc = *comparison.fcdpm.idle_accuracy;
    std::printf(
        "Idle predictor: %.0f%% correct sleep decisions "
        "(%zu false sleeps, %zu missed sleeps, MAE %.1f s)\n",
        100.0 * acc.decision_accuracy(), acc.false_sleeps(),
        acc.missed_sleeps(), acc.mean_absolute_error());
  }
  return 0;
}
