// Experiment 1 end-to-end: record 28 minutes of MPEG video on the DVD
// camcorder under each DPM policy and project how long a hydrogen
// cartridge would last — the paper's headline "32 % more lifetime"
// argument, with physical units attached.
//
// Run: ./build/examples/camcorder_lifetime
#include <cstdio>

#include "fuelcell/fuel_model.hpp"
#include "sim/experiments.hpp"

int main() {
  using namespace fcdpm;
  using sim::PolicyKind;

  const sim::ExperimentConfig config = sim::experiment1_config();
  const wl::TraceStats stats = config.trace.stats();
  std::printf("Camcorder trace: %zu slots, %.1f min, idle %.1f-%.1f s\n\n",
              stats.slots, stats.total_duration().value() / 60.0,
              stats.min_idle.value(), stats.max_idle.value());

  // A small consumer hydrogen cartridge: ~10 standard litres.
  const fc::FuelModel fuel = fc::FuelModel::bcs_20w();
  const double cartridge_litres = 10.0;

  const sim::SimulationResult conv =
      sim::run_policy(PolicyKind::Conv, config);

  std::printf("%-14s %10s %8s %12s %12s %10s\n", "policy", "fuel A-s",
              "vs Conv", "avg Ifc (A)", "H2 (L STP)", "lifetime");
  for (const PolicyKind kind :
       {PolicyKind::Conv, PolicyKind::Asap, PolicyKind::FcDpm,
        PolicyKind::Oracle}) {
    const sim::SimulationResult r = sim::run_policy(kind, config);
    const double litres = fuel.hydrogen_litres_stp(r.fuel());
    // Fuel charge equivalent of the cartridge, then lifetime at this
    // policy's average burn rate.
    const double cartridge_charge =
        r.fuel().value() * cartridge_litres / litres;
    const Seconds lifetime =
        r.lifetime_on(Coulomb(cartridge_charge));
    std::printf("%-14s %10.1f %7.1f%% %12.3f %12.3f %8.1f min\n",
                r.fc_policy.c_str(), r.fuel().value(),
                100.0 * sim::normalized_fuel(r, conv),
                r.average_fuel_current().value(), litres,
                lifetime.value() / 60.0);
  }

  const sim::SimulationResult asap =
      sim::run_policy(PolicyKind::Asap, config);
  const sim::SimulationResult fcdpm =
      sim::run_policy(PolicyKind::FcDpm, config);
  std::printf(
      "\nFC-DPM saves %.1f%% fuel over ASAP-DPM -> %.2fx the lifetime\n"
      "(paper reports 24.4%% and 1.32x on the authors' measured trace).\n",
      100.0 * sim::fuel_saving(fcdpm, asap),
      sim::lifetime_extension(fcdpm, asap));
  return 0;
}
